"""TopKHeap ranking semantics and the prefix ring buffer."""

import pytest

from repro.errors import RankingError
from repro.tasm import Match, PrefixRingBuffer, TopKHeap
from repro.trees import Tree

LEAF = Tree.from_bracket("{x}")


def match(distance, root=1):
    return Match(distance=distance, root=root, source=LEAF, source_root=1)


def test_k_must_be_positive():
    for bad in (0, -1, 2.5, True):
        with pytest.raises(RankingError):
            TopKHeap(bad)


def test_max_distance_of_empty_ranking_raises():
    with pytest.raises(RankingError):
        TopKHeap(3).max_distance


def test_negative_distance_rejected():
    with pytest.raises(RankingError):
        TopKHeap(3).accepts(-1)


def test_push_and_evict():
    heap = TopKHeap(2)
    assert heap.push(match(5))
    assert not heap.full
    assert heap.push(match(3))
    assert heap.full
    assert heap.max_distance == 5
    # 4 evicts 5
    assert heap.push(match(4))
    assert heap.max_distance == 4
    # 7 is rejected
    assert not heap.push(match(7))
    assert [m.distance for m in heap.ranking()] == [3, 4]


def test_ties_keep_incumbent():
    heap = TopKHeap(1)
    first = match(2, root=1)
    heap.push(first)
    assert not heap.push(match(2, root=9))
    assert heap.ranking() == [first]


def test_ranking_sorted_best_first():
    heap = TopKHeap(5)
    for d in (4, 1, 3, 0, 2):
        heap.push(match(d))
    assert [m.distance for m in heap.ranking()] == [0, 1, 2, 3, 4]


def test_match_subtree_slicing():
    doc = Tree.from_bracket("{a{b{c}}{d}}")
    m = Match(distance=0, root=2, source=doc, source_root=2)
    assert m.subtree.to_bracket() == "{b{c}}"
    assert m.label == "b"


def test_ring_buffer_fifo_and_peak():
    ring = PrefixRingBuffer(3)
    ring.append((1, "a", 1))
    ring.append((2, "b", 1))
    assert len(ring) == 2
    assert ring[0] == (1, "a", 1)
    assert ring[1] == (2, "b", 1)
    assert ring.popleft() == (1, "a", 1)
    ring.append((3, "c", 1))
    ring.append((4, "d", 1))  # wraps around
    assert ring.peak == 3
    assert [ring[i] for i in range(len(ring))] == [
        (2, "b", 1),
        (3, "c", 1),
        (4, "d", 1),
    ]


def test_ring_buffer_misuse():
    with pytest.raises(RankingError):
        PrefixRingBuffer(0)
    ring = PrefixRingBuffer(1)
    with pytest.raises(RankingError):
        ring.popleft()
    ring.append((1, "a", 1))
    with pytest.raises(RankingError):
        ring.append((2, "b", 1))
    with pytest.raises(IndexError):
        ring[1]
