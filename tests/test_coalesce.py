"""The scan coalescer: concurrency stress, single-flight, freshness.

This battery is the trust story for the one-scan-many-queries serve
refactor.  It proves, under real concurrency:

* 32 parallel clients trigger strictly fewer document scans than
  requests, with every response byte-identical to the sequential
  baseline (the coalescing window plus k-slicing stay exact);
* N identical in-flight requests collapse to exactly one engine
  invocation and one cache fill (single-flight);
* a document version bump mid-flight never serves the stale document
  (the cache key snapshots the version before ranking);
* ``/healthz`` reports the coalescing config so operators (and the
  service smoke) can assert what a server is actually running.
"""

import asyncio
import json
import threading
import time

import pytest

from repro import IntervalStore, Tree, tasm_postorder
from repro.serve import (
    DocumentCatalog,
    QueryRegistry,
    ResultCache,
    ScanCoalescer,
    ServeClient,
    ServerConfig,
    ServerThread,
    TasmExecutor,
    ranking_payload,
)
from repro.errors import ServeError
from repro.trees import random_tree

Q1 = "{a{b}{c}}"
Q2 = "{a{b}}"

DOC_NODES = 600


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("coalesce")
    doc = random_tree(DOC_NODES, seed=11, labels="abcde", max_fanout=5)
    db = str(tmp / "docs.db")
    with IntervalStore(db) as store:
        store.store_tree("doc", doc)
    return {"db": db, "doc": doc}


def canonical(matches) -> str:
    """The byte-identity form (matches the CLI's --json rendering)."""
    return json.dumps(matches, indent=2, sort_keys=True)


def expected_matches(bracket, document, k, cost=None):
    return ranking_payload(
        tasm_postorder(Tree.from_bracket(bracket), document, k, cost)
    )


async def _raw_post(port: int, path: str, payload: dict):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, tail = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(tail)


# ----------------------------------------------------------------------
# Stress: 32 clients, scans < requests, byte-identical responses
# ----------------------------------------------------------------------
def test_stress_32_clients_share_scans_and_stay_byte_identical(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": Q1, "q2": Q2},
        cache_size=0,  # every request is a miss: coalescing only
        engine="stream",  # scan sharing is what this test observes
        request_threads=32,
        coalesce_window_ms=250.0,  # generous: all clients join windows
        slow_request_seconds=None,
    )
    requests = [
        {"query": "q1" if i % 2 == 0 else "q2", "document": "doc",
         "k": 3 if i % 4 < 2 else 4}
        for i in range(32)
    ]
    expected = {
        (spec["query"], spec["k"]): canonical(
            expected_matches(
                Q1 if spec["query"] == "q1" else Q2, corpus["doc"], spec["k"]
            )
        )
        for spec in requests
    }

    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()

        async def drive():
            return await asyncio.gather(
                *(_raw_post(thread.port, "/v1/tasm", spec)
                  for spec in requests)
            )

        responses = asyncio.run(drive())
        metrics = client.metrics()

    for spec, (status, payload) in zip(requests, responses, strict=True):
        assert status == 200
        assert payload["k"] == spec["k"] and payload["cached"] is False
        # Byte identity with the sequential baseline, including the
        # k-slice taken from a shared higher-k pass.
        assert canonical(payload["matches"]) == expected[
            (spec["query"], spec["k"])
        ]

    # Scans are observable: the cache is off, so every dequeued node
    # belongs to a full document scan.
    dequeued = metrics["engine_totals"]["dequeued"]
    assert dequeued % DOC_NODES == 0
    scans = dequeued // DOC_NODES
    assert 1 <= scans < len(requests)
    coalesce = metrics["coalesce"]
    assert coalesce["requests"] == len(requests)
    assert coalesce["queries"] + coalesce["shared_queries"] == len(requests)
    assert coalesce["engine_passes"] == scans
    assert coalesce["scans_saved"] == len(requests) - scans
    assert sum(metrics["coalesce"]["batch_size_histogram"].values()) == scans


# ----------------------------------------------------------------------
# Single-flight: N identical requests, one engine pass, one cache fill
# ----------------------------------------------------------------------
def _gated_executor(corpus, cache_size=64, window_ms=0.0):
    """An executor whose engine passes block until ``release`` is set."""
    registry = QueryRegistry("python")
    catalog = DocumentCatalog(corpus["db"])
    cache = ResultCache(cache_size)
    executor = TasmExecutor(
        registry,
        catalog,
        cache=cache,
        coalesce_window_ms=window_ms,
    )
    registry.register("q1", Q1)
    release = threading.Event()
    real_rank = executor._rank
    calls = []

    def gated(queries, document, k, cost, span=None):
        calls.append([q.bracket for q in queries])
        release.wait(20)
        return real_rank(queries, document, k, cost, span=span)

    executor._rank = gated
    return executor, catalog, cache, release, calls


def _poll(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


def test_single_flight_one_invocation_one_cache_fill(corpus):
    executor, _catalog, cache, release, calls = _gated_executor(corpus)
    request = {"query": "q1", "document": "doc", "k": 3}
    n = 8
    barrier = threading.Barrier(n)
    results = [None] * n
    errors = []

    def worker(i):
        try:
            barrier.wait(10)
            payload, _info = executor.run(dict(request))
            results[i] = payload
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n)
    ]
    for t in threads:
        t.start()
    # All but the leader must have joined the in-flight entry before
    # the engine pass is allowed to finish.
    assert _poll(
        lambda: executor.coalescer.payload()["shared_queries"] == n - 1
    )
    release.set()
    for t in threads:
        t.join(20)
    assert not errors
    assert all(r is not None for r in results)

    # Exactly one engine invocation, for exactly one query...
    assert calls == [[Q1]]
    # ...one cache fill...
    assert cache.stores == 1
    assert cache.misses == n  # every request missed, then single-flighted
    # ...and byte-identical bodies for every waiter.
    baseline = canonical(results[0])
    assert all(canonical(r) == baseline for r in results)
    assert results[0]["cached"] is False
    summary = executor.coalescer.payload()
    assert summary["queries"] == 1
    assert summary["shared_queries"] == n - 1
    assert summary["engine_passes"] == 1
    assert summary["scans_saved"] == n - 1
    assert summary["batch_size_histogram"] == {1: 1}


def test_version_bump_mid_flight_never_serves_stale(corpus):
    executor, catalog, cache, release, calls = _gated_executor(corpus)
    request = {"query": "q1", "document": "doc", "k": 3}
    results = {}

    def worker(tag):
        payload, _info = executor.run(dict(request))
        results[tag] = payload

    first = threading.Thread(target=worker, args=("pre-bump",))
    first.start()
    assert _poll(lambda: len(calls) == 1)  # the version-1 scan is in flight

    catalog.bump_version("doc")
    second = threading.Thread(target=worker, args=("post-bump",))
    second.start()
    # The bumped version is a different cache key, so the second
    # request must NOT single-flight onto the stale scan: it leads a
    # scan of its own.
    assert _poll(lambda: len(calls) == 2)
    release.set()
    first.join(20)
    second.join(20)

    assert results["pre-bump"]["document_version"] == 1
    assert results["post-bump"]["document_version"] == 2
    assert cache.stores == 2
    assert executor.coalescer.payload()["shared_queries"] == 0

    # A fresh request is served from cache — and only ever the
    # post-bump entry.
    payload, info = executor.run(dict(request))
    assert info["engine"] == "cache"
    assert payload["cached"] is True
    assert payload["document_version"] == 2
    assert canonical(
        dict(payload, cached=False)
    ) == canonical(results["post-bump"])


# ----------------------------------------------------------------------
# Config plumbing and validation
# ----------------------------------------------------------------------
def test_healthz_reports_coalescing_config(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": Q1},
        coalesce_window_ms=7.5,
        max_batch_queries=9,
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        health = client.health()
        client.tasm("q1", "doc", k=2)
        health_after = client.health()
    coalesce = health["coalesce"]
    assert coalesce["window_ms"] == 7.5
    assert coalesce["max_batch_queries"] == 9
    assert coalesce["queries"] == 0 and coalesce["engine_passes"] == 0
    after = health_after["coalesce"]
    assert after["queries"] == 1 and after["engine_passes"] == 1


def test_coalescer_rejects_bad_tunables():
    with pytest.raises(ServeError):
        ScanCoalescer(window_ms=-1.0)
    with pytest.raises(ServeError):
        ScanCoalescer(max_batch=0)


def test_batch_request_with_duplicate_queries_single_flights(corpus):
    """One request repeating a query resolves every copy identically."""
    executor, _catalog, cache, release, calls = _gated_executor(corpus)
    release.set()  # no gating needed: duplicates collapse via the key
    payload, info = executor.run_batch(
        {"queries": ["q1", "q1", "q1"], "document": "doc", "k": 3}
    )
    assert calls == [[Q1]]  # one pass, one query
    assert cache.stores == 1
    bodies = [canonical(r) for r in payload["results"]]
    assert len(set(bodies)) == 1
    assert info["coalesce"]["shared"] == 2
