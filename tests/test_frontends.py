"""Workload frontends: differential byte-identity with bracket trees.

The contract every frontend must keep (ISSUE 10): ranking a document
through its streaming ``iterparse_postorder`` — or through the indexed
engine over an ingested copy — is **byte-identical**, tie order
included, to ranking the bracket-notation encoding of the same tree.
That single property is what lets the engine stay workload-agnostic.
"""

import io
import json
import os
import tempfile

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import ks, ranking_triples
from repro.distance import UnitCostModel, WeightedCostModel
from repro.documents import StoreDocument
from repro.errors import (
    HtmlFormatError,
    JsonFormatError,
    PythonSourceError,
)
from repro.frontends import astio, htmlio, jsonio
from repro.frontends.htmlio import TagClassWeightedCostModel
from repro.frontends.jsonio import KeyWeightedCostModel
from repro.postorder import IntervalStore, PostorderQueue
from repro.tasm import TasmOptions, tasm_batch
from repro.trees import Tree
from repro.trees.node import Node


def trees_over(alphabet, max_leaves=5):
    """Query trees over a workload-flavoured label alphabet."""
    label = st.sampled_from(alphabet)
    return st.recursive(
        st.builds(Node, label),
        lambda kids: st.builds(
            Node, label, st.lists(kids, min_size=1, max_size=3)
        ),
        max_leaves=max_leaves,
    ).map(Tree.from_node)


base_costs = st.one_of(
    st.just(UnitCostModel()),
    st.builds(
        WeightedCostModel,
        rename_cost=st.sampled_from([0.5, 1.0, 2.0]),
        delete_cost=st.sampled_from([1.0, 2.0]),
        insert_cost=st.sampled_from([1.0, 1.5]),
    ),
)
json_costs = st.one_of(
    base_costs,
    st.builds(KeyWeightedCostModel, st.sampled_from([1.5, 2.0, 3.0])),
)
html_costs = st.one_of(
    base_costs,
    st.builds(TagClassWeightedCostModel, st.sampled_from([1.5, 2.0])),
)

json_scalars = st.one_of(
    st.integers(-999, 999),
    st.sampled_from([True, False, None, 0.5, -2.25]),
    st.text(alphabet="abxy$", min_size=1, max_size=4),
)
json_values = st.recursive(
    json_scalars,
    lambda kids: st.one_of(
        st.lists(kids, max_size=4),
        st.dictionaries(
            st.text(alphabet="kmn", min_size=1, max_size=3), kids, max_size=4
        ),
    ),
    max_leaves=12,
)
json_queries = trees_over(["object", "array", "$k", "$m", "x", "3"])

_HTML_TEXT = st.sampled_from(["hello", "world", "price: 3", "x + y"])
html_fragments = st.recursive(
    _HTML_TEXT.map(lambda t: ("text", t)),
    lambda kids: st.tuples(
        st.sampled_from(["div", "span", "p", "ul", "li", "em", "table"]),
        st.lists(
            st.tuples(st.sampled_from(["id", "class"]), st.sampled_from(["a", "b"])),
            max_size=2,
            unique_by=lambda kv: kv[0],
        ),
        st.lists(kids, max_size=3),
    ).map(lambda t: ("elem", t[0], t[1], t[2])),
    max_leaves=8,
)
html_queries = trees_over(
    ["#document", "div", "span", "li", "@class", "a", "hello"]
)

ast_queries = trees_over(
    ["Module", "FunctionDef", "Return", "arguments", "arg", "x", "y"]
)


def render_html(fragment):
    kind = fragment[0]
    if kind == "text":
        return fragment[1]
    _, tag, attrs, children = fragment
    attr_text = "".join(f' {name}="{value}"' for name, value in attrs)
    inner = "".join(render_html(child) for child in children)
    return f"<{tag}{attr_text}>{inner}</{tag}>"


@st.composite
def py_modules(draw):
    lines = [f'"""{draw(st.sampled_from(["mod", "pkg helper"]))}."""', ""]
    for i in range(draw(st.integers(1, 3))):
        name = draw(st.sampled_from("fgh"))
        const = draw(st.integers(0, 9))
        lines += [
            f"def {name}{i}(x, y={const}):",
            f"    total = x + y * {const}",
            "    return total",
            "",
        ]
    if draw(st.booleans()):
        lines += ["class Widget:", "    def __init__(self, size):", "        self.size = size", ""]
    return "\n".join(lines)


def assert_differential(pairs, queries, k, cost):
    """Stream + indexed rankings == the bracket-encoded tree's ranking."""
    pairs = list(pairs)
    tree = Tree.from_postorder(iter(pairs))
    bracket_tree = Tree.from_bracket(tree.to_bracket())
    want = [
        ranking_triples(r)
        for r in tasm_batch(queries, PostorderQueue.from_tree(bracket_tree), k, cost)
    ]
    got_stream = [
        ranking_triples(r)
        for r in tasm_batch(queries, PostorderQueue(iter(pairs)), k, cost)
    ]
    assert got_stream == want
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "doc.db")
        with IntervalStore(db) as store:
            doc_id = store.store_tree("doc", tree)
            store.ensure_index(doc_id)
        got_indexed = [
            ranking_triples(r)
            for r in tasm_batch(
                queries,
                StoreDocument(db, doc_id),
                k,
                cost,
                TasmOptions(engine="indexed"),
            )
        ]
    assert got_indexed == want


@given(value=json_values, query=json_queries, k=ks, cost=json_costs)
def test_json_ranking_matches_bracket_encoding(value, query, k, cost):
    pairs = jsonio.iterparse_postorder(io.StringIO(json.dumps(value)))
    assert_differential(pairs, [query], k, cost)


@given(fragment=html_fragments, query=html_queries, k=ks, cost=html_costs)
def test_html_ranking_matches_bracket_encoding(fragment, query, k, cost):
    pairs = htmlio.iterparse_postorder(io.StringIO(render_html(fragment)))
    assert_differential(pairs, [query], k, cost)


@given(source=py_modules(), query=ast_queries, k=ks, cost=base_costs)
def test_ast_ranking_matches_bracket_encoding(source, query, k, cost):
    with tempfile.TemporaryDirectory() as tmp:
        module = os.path.join(tmp, "mod.py")
        with open(module, "w", encoding="utf-8") as fh:
            fh.write(source)
        pairs = list(astio.iterparse_postorder(module))
    assert_differential(pairs, [query], k, cost)


# ---------------------------------------------------------------------------
# Deterministic frontend conventions
# ---------------------------------------------------------------------------


def test_json_conventions():
    doc = '{"b": [1, 2.5, true, null], "a": "x"}'
    pairs = list(jsonio.iterparse_postorder(io.StringIO(doc)))
    tree = Tree.from_postorder(iter(pairs))
    # Keys stay in document order (sorting would force buffering).
    assert tree.to_bracket() == (
        "{object{$b{array{1}{2.5}{true}{null}}}{$a{x}}}"
    )
    assert pairs[-1] == ("object", len(pairs))


def test_json_key_cost_model_classifies_by_content():
    cost = KeyWeightedCostModel(3.0)
    assert cost.delete("$key") == 3.0
    assert cost.delete("value") == 1.0
    assert cost.rename("$a", "$b") == 3.0
    assert cost.rename("$a", "$a") == 0.0
    assert cost.max_cost == 3.0 and cost.min_indel == 1.0


def test_html_conventions():
    doc = "<ul><li class='a'>one<li>two</ul><p>tail"
    tree = Tree.from_postorder(htmlio.iterparse_postorder(io.StringIO(doc)))
    # Unclosed elements nest until an ancestor's end tag closes them
    # (</ul> closes both li's), attrs become @name/Text pairs, and the
    # synthetic #document root makes the fragment one tree.
    assert tree.to_bracket() == (
        "{#document{ul{li{@class{a}}{one}{li{two}}}}{p{tail}}}"
    )


def test_html_tag_cost_model_classifies_by_content():
    cost = TagClassWeightedCostModel(2.0)
    assert cost.delete("div") == 2.0
    assert cost.delete("em") == 1.0
    assert cost.delete("#document") == 2.0
    assert cost.rename("div", "table") == 2.0
    assert cost.rename("em", "b") == 1.0


def test_ast_conventions(tmp_path):
    module = tmp_path / "m.py"
    module.write_text("def f(x):\n    return x\n")
    tree = Tree.from_postorder(astio.iterparse_postorder(str(module)))
    bracket = tree.to_bracket()
    assert bracket.startswith("{m.py{Module{FunctionDef{f}")
    assert "{Return{Name{x}}}" in bracket
    # A snippet query uses the same alphabet, rooted at Module.
    query = astio.tree_from_source("def f(x):\n    return x\n")
    assert query.to_bracket() in bracket


def test_frontend_errors_are_typed(tmp_path):
    with pytest.raises(JsonFormatError):
        list(jsonio.iterparse_postorder(io.StringIO('{"a": }')))
    with pytest.raises(HtmlFormatError):
        list(htmlio.iterparse_postorder(io.StringIO("   ")))
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    with pytest.raises(PythonSourceError):
        list(astio.iterparse_postorder(str(bad)))
    with pytest.raises(PythonSourceError):
        list(astio.iterparse_postorder(str(tmp_path / "nope.txt")))


# ---------------------------------------------------------------------------
# Workload lookalike corpora (repro.datasets.workloads)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", ["apilog", "htmlcat", "pypkg"])
def test_workload_corpora_count_matches_frontend(name, tmp_path):
    from repro.datasets import WORKLOAD_QUERIES, generate

    frontend = {"apilog": jsonio, "htmlcat": htmlio, "pypkg": astio}[name]
    out = str(tmp_path / ("pkg" if name == "pypkg" else f"doc.{name}"))
    reported = generate(name, out, target_nodes=2_000, seed=11)
    parsed = list(frontend.iterparse_postorder(out))
    assert reported == len(parsed)
    # The shipped default query actually matches something.
    query = Tree.from_bracket(WORKLOAD_QUERIES[name])
    matches = tasm_batch([query], PostorderQueue(iter(parsed)), 3)[0]
    assert len(matches) == 3
    assert [m.distance for m in matches] == sorted(m.distance for m in matches)
