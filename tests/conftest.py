"""Shared Hypothesis profiles and strategies for the test suite.

Profiles: ``dev`` (the default) keeps local runs fast; ``ci`` spends
more examples per property.  CI selects with ``HYPOTHESIS_PROFILE=ci``
and caches the ``.hypothesis`` example database between runs so
previously found counterexamples replay first.
"""

import os

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st

from repro.distance import UnitCostModel, WeightedCostModel
from repro.trees import Tree
from repro.trees.node import Node

settings.register_profile(
    "dev",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=150,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

#: Small shared alphabet: collisions between query and document labels
#: are what make distances (and renames) interesting.
LABELS = "abcd"
labels = st.sampled_from(LABELS)


def node_trees(max_leaves: int):
    """Ordered labeled trees as :class:`Node`, arbitrary shape/fanout."""
    return st.recursive(
        st.builds(Node, labels),
        lambda children: st.builds(
            Node, labels, st.lists(children, min_size=1, max_size=4)
        ),
        max_leaves=max_leaves,
    )


#: Document-sized trees (up to a few dozen nodes).
trees = node_trees(20).map(Tree.from_node)
#: Query-sized trees (TASM queries are small relative to documents).
small_trees = node_trees(6).map(Tree.from_node)
#: Ranking sizes.
ks = st.integers(min_value=1, max_value=8)

#: Unit and weighted cost models.  Weighted costs are multiples of 1/4
#: so every edit-script total is exact in binary floating point and the
#: cross-engine equality assertions stay exact.
cost_models = st.one_of(
    st.just(UnitCostModel()),
    st.builds(
        WeightedCostModel,
        rename_cost=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
        delete_cost=st.sampled_from([1.0, 1.5, 2.0]),
        insert_cost=st.sampled_from([1.0, 2.0, 3.0]),
    ),
)


def ranking_triples(ranking):
    """Byte-comparable view of a ranking: (distance, root, subtree)."""
    return [(m.distance, m.root, m.subtree.to_bracket()) for m in ranking]
