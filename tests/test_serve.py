"""The serving layer: registry, catalog, cache, metrics, executor, HTTP.

End-to-end tests drive a real server (``ServerThread`` on a private
event loop) through the stdlib client and through raw asyncio
connections — including the ≥8-parallel-client concurrency check the
service contract requires.
"""

import asyncio
import json

import pytest

from repro import IntervalStore, Tree, tasm_postorder
from repro.errors import (
    BracketSyntaxError,
    ReproError,
    ServeError,
    XmlFormatError,
)
from repro.serve import (
    DocumentCatalog,
    QueryRegistry,
    ResultCache,
    ServeClient,
    ServeHttpError,
    ServeMetrics,
    ServerConfig,
    ServerThread,
    TasmExecutor,
    parse_cost,
    ranking_payload,
    result_key,
)
from repro.distance import UnitCostModel, WeightedCostModel
from repro.trees import random_tree
from repro.xmlio import write_xml

QUERY = "{a{b}{c}}"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """A store file with two documents plus a loose XML file."""
    tmp = tmp_path_factory.mktemp("serve")
    small = random_tree(120, seed=5, labels="abcde", max_fanout=4)
    large = random_tree(600, seed=6, labels="abcde", max_fanout=5)
    db = str(tmp / "docs.db")
    with IntervalStore(db) as store:
        store.store_tree("small", small)
        store.store_tree("large", large)
    xml_doc = Tree.from_bracket("{r{a{b}{c}}{a{b}{d}}{e{a{b}{c}}}}")
    xml_path = str(tmp / "extra.xml")
    write_xml(xml_doc, xml_path)
    return {
        "db": db,
        "small": small,
        "large": large,
        "xml_path": xml_path,
        "xml_doc": xml_doc,
    }


@pytest.fixture(scope="module")
def server(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY, "q2": "{a{b}}"},
        cache_size=64,
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        yield thread, client


def expected_matches(query, document, k, cost=None):
    return ranking_payload(
        tasm_postorder(Tree.from_bracket(query), document, k, cost)
    )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_register_get_and_payload():
    registry = QueryRegistry()
    entry = registry.register("q", " {a{b}{c}} ")
    assert entry.bracket == QUERY  # canonical form
    assert len(entry) == 3
    assert registry.get("q") is entry
    assert "q" in registry and len(registry) == 1
    assert registry.payload()[0]["version"] == 1


def test_registry_reregistration_bumps_version():
    registry = QueryRegistry()
    registry.register("q", QUERY)
    entry = registry.register("q", "{a{b}}")
    assert entry.version == 2
    assert registry.get("q").bracket == "{a{b}}"


def test_registry_kernel_cached_per_cost_model():
    registry = QueryRegistry()
    entry = registry.register("q", QUERY)
    unit = UnitCostModel()
    assert entry.kernel(unit) is entry.kernel(UnitCostModel())
    weighted = WeightedCostModel(2.0, 1.0, 1.0)
    assert entry.kernel(weighted) is not entry.kernel(unit)
    assert entry.threshold(5, unit) == 5 + 2 * 3 - 1


def test_registry_validation_errors():
    registry = QueryRegistry()
    with pytest.raises(ServeError):
        registry.register("bad name!", QUERY)
    with pytest.raises(ServeError):
        registry.register("q", "   ")
    with pytest.raises(BracketSyntaxError):
        registry.register("q", "{a{b}")
    with pytest.raises(XmlFormatError):
        registry.register("q", "<a><b></a>", fmt="xml")
    with pytest.raises(ServeError):
        registry.register("q", QUERY, fmt="nope")
    assert len(registry) == 0  # nothing half-registered


def test_registry_xml_query_and_resolve():
    registry = QueryRegistry()
    registry.register("q", "<a><b/><c/></a>", fmt="xml")
    assert registry.get("q").bracket == QUERY
    inline = registry.resolve("{x{y}}")
    assert inline.version == 0 and inline.bracket == "{x{y}}"
    assert registry.resolve("q").name == "q"
    with pytest.raises(ServeError) as excinfo:
        registry.resolve("unknown")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError):
        registry.resolve(None)


def test_registry_validate_k():
    registry = QueryRegistry()
    assert registry.validate_k(3) == 3
    for bad in (0, -1, True, "5", 2.0, None):
        with pytest.raises(ServeError):
            registry.validate_k(bad)


def test_parse_cost_specs():
    assert isinstance(parse_cost(None), UnitCostModel)
    assert isinstance(parse_cost("unit"), UnitCostModel)
    weighted = parse_cost([2, 1.5, 1])
    assert weighted.rename_cost == 2.0 and weighted.min_indel == 1.0
    assert parse_cost("2,1.5,1").max_cost == 2.0
    for bad in ("2,1", [1, 2, 3, 4], {"rename": 1}, "a,b,c"):
        with pytest.raises(ServeError):
            parse_cost(bad)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_catalog_store_and_xml_documents(corpus):
    catalog = DocumentCatalog(corpus["db"])
    assert catalog.names() == ["large", "small"]
    small = catalog.get("small")
    assert small.kind == "store" and small.n_nodes == 120
    assert small.version == 1
    doc = catalog.register_xml("extra", corpus["xml_path"])
    assert doc.n_nodes == len(corpus["xml_doc"])
    # A fresh queue streams the same postorder as the source tree.
    assert list(doc.queue()) == list(corpus["xml_doc"].postorder())
    assert list(small.queue()) == list(corpus["small"].postorder())


def test_catalog_versioning_and_errors(corpus, tmp_path):
    catalog = DocumentCatalog(corpus["db"])
    with pytest.raises(ServeError) as excinfo:
        catalog.get("missing")
    assert excinfo.value.status == 404
    with pytest.raises(ServeError):
        catalog.bump_version("missing")
    assert catalog.bump_version("small").version == 2
    catalog.register_xml("extra", corpus["xml_path"])
    assert catalog.register_xml("extra", corpus["xml_path"]).version == 2
    with pytest.raises(ServeError) as excinfo:
        catalog.register_xml("nope", str(tmp_path / "missing.xml"))
    assert excinfo.value.status == 404
    empty = str(tmp_path / "empty.db")
    with IntervalStore(empty):
        pass
    with pytest.raises(ServeError):
        DocumentCatalog(empty)
    not_a_store = str(tmp_path / "junk.db")
    with open(not_a_store, "w", encoding="utf-8") as fh:
        fh.write("")  # readable, but holds no IntervalStore schema
    with pytest.raises(ServeError) as excinfo:
        DocumentCatalog(not_a_store)
    assert "not an IntervalStore" in str(excinfo.value)


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_cache_lru_eviction_and_stats():
    cache = ResultCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes a
    cache.put("c", 3)  # evicts b, the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1 and cache.get("c") == 3
    stats = cache.payload()
    assert stats["hits"] == 3 and stats["misses"] == 1
    assert stats["evictions"] == 1 and stats["entries"] == 2
    cache.clear()
    assert len(cache) == 0


def test_cache_capacity_zero_disables():
    cache = ResultCache(capacity=0)
    cache.put("a", 1)
    assert cache.get("a") is None
    assert cache.payload()["hit_rate"] == 0.0
    with pytest.raises(ValueError):
        ResultCache(capacity=-1)


def test_result_key_includes_version_and_cost():
    base = result_key("doc", 1, QUERY, 5, "unit")
    assert result_key("doc", 2, QUERY, 5, "unit") != base
    assert result_key("doc", 1, QUERY, 5, "w:1,2,2") != base


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_metrics_counts_latency_and_high_water():
    metrics = ServeMetrics()
    for seconds in (0.01, 0.02, 0.03):
        metrics.observe(
            "POST /v1/tasm", 200, seconds,
            engine="stream", ring_peak=7, ring_capacity=10,
        )
    metrics.observe("POST /v1/tasm", 404, 0.001)
    metrics.observe("GET /healthz", 200, 0.0005)
    snapshot = metrics.payload()
    assert snapshot["requests_total"] == 5
    assert snapshot["errors_total"] == 1
    assert snapshot["requests_by_route"]["POST /v1/tasm"] == 4
    assert snapshot["responses_by_status_class"] == {"2xx": 4, "4xx": 1}
    latency = snapshot["latency_by_route"]["POST /v1/tasm"]
    assert latency["observations"] == 4
    assert latency["p50_seconds"] <= latency["p95_seconds"] <= latency["max_seconds"]
    assert snapshot["engine_requests"] == {"stream": 3}
    assert snapshot["ring_peak_high_water"] == 7
    assert snapshot["ring_capacity_high_water"] == 10


# ----------------------------------------------------------------------
# Executor (no HTTP)
# ----------------------------------------------------------------------
@pytest.fixture()
def executor(corpus):
    registry = QueryRegistry()
    registry.register("q1", QUERY)
    return TasmExecutor(
        registry, DocumentCatalog(corpus["db"]), cache=ResultCache(16)
    )


def test_executor_matches_streaming_reference(corpus, executor):
    # The store is freshly ingested, so the default engine policy
    # serves from the candidate index — and must still match the
    # streaming reference byte for byte.
    payload, info = executor.run({"query": "q1", "document": "small", "k": 4})
    assert payload["matches"] == expected_matches(QUERY, corpus["small"], 4)
    assert payload["engine"] == "indexed" and payload["cached"] is False
    assert info["ring_peak"] <= info["ring_capacity"]
    # Inline ad-hoc queries work without registration.
    inline, _ = executor.run(
        {"query": "{a{b}}", "document": "small", "k": 2}
    )
    assert inline["matches"] == expected_matches("{a{b}}", corpus["small"], 2)


def test_executor_cache_hit_and_version_invalidation(executor):
    first, _ = executor.run({"query": "q1", "document": "small", "k": 3})
    assert first["cached"] is False
    again, info = executor.run({"query": "q1", "document": "small", "k": 3})
    assert again["cached"] is True
    assert again["matches"] == first["matches"]
    assert info["engine"] == "cache"
    # Bumping the document version must miss the cache.
    executor.catalog.bump_version("small")
    after_bump, _ = executor.run({"query": "q1", "document": "small", "k": 3})
    assert after_bump["cached"] is False
    assert after_bump["document_version"] == 2


def test_executor_weighted_cost_and_batch(corpus, executor):
    cost = WeightedCostModel(2.0, 1.0, 1.0)
    payload, _ = executor.run(
        {"query": "q1", "document": "small", "k": 3, "cost": [2, 1, 1]}
    )
    assert payload["matches"] == expected_matches(QUERY, corpus["small"], 3, cost)
    batch, _ = executor.run_batch(
        {"queries": ["q1", "{a{b}}"], "document": "small", "k": 2}
    )
    assert [r["query"] for r in batch["results"]] == ["q1", "<inline>"]
    assert batch["results"][0]["matches"] == expected_matches(
        QUERY, corpus["small"], 2
    )
    assert batch["results"][1]["matches"] == expected_matches(
        "{a{b}}", corpus["small"], 2
    )


def test_executor_rejects_oversized_k(executor):
    # The ring buffer is preallocated at k + 2|Q| - 1 slots, so an
    # unbounded network-supplied k could OOM the service.
    executor.max_k = 10
    with pytest.raises(ServeError) as excinfo:
        executor.run({"query": "q1", "document": "small", "k": 11})
    assert "limit" in str(excinfo.value)
    payload, _ = executor.run({"query": "q1", "document": "small", "k": 10})
    assert payload["k"] == 10


def test_cache_hit_reports_the_name_this_request_used(executor):
    # The cache is keyed by canonical bracket; the response must still
    # echo the query spec the *current* request used.
    named, _ = executor.run({"query": "q1", "document": "small", "k": 3})
    assert named["query"] == "q1" and named["cached"] is False
    inline, _ = executor.run({"query": QUERY, "document": "small", "k": 3})
    assert inline["cached"] is True  # same bracket, same key
    assert inline["query"] == "<inline>"  # not "q1"
    named_again, _ = executor.run({"query": "q1", "document": "small", "k": 3})
    assert named_again["query"] == "q1"


def test_executor_request_validation(executor):
    with pytest.raises(ServeError):
        executor.run([])
    with pytest.raises(ServeError):
        executor.run({"query": "q1", "document": "small", "k": 0})
    with pytest.raises(ServeError) as excinfo:
        executor.run({"query": "q1", "document": "missing", "k": 2})
    assert excinfo.value.status == 404
    with pytest.raises(ServeError):
        executor.run({"query": "q1", "document": None, "k": 2})
    with pytest.raises(ServeError):
        executor.run_batch({"queries": [], "document": "small"})
    with pytest.raises(ServeError):
        TasmExecutor(executor.registry, executor.catalog, workers=0)


# ----------------------------------------------------------------------
# HTTP end to end
# ----------------------------------------------------------------------
def test_health_documents_and_queries_endpoints(server):
    _, client = server
    health = client.health()
    assert health["status"] == "ok"
    assert health["documents"] == 2 and health["queries"] == 2
    names = [d["name"] for d in client.documents()]
    assert names == ["large", "small"]
    assert [q["name"] for q in client.queries()] == ["q1", "q2"]


def test_tasm_endpoint_matches_reference_and_caches(server, corpus):
    _, client = server
    response = client.tasm("q1", "small", k=4)
    assert response["matches"] == expected_matches(QUERY, corpus["small"], 4)
    assert response["cached"] is False
    assert client.tasm("q1", "small", k=4)["cached"] is True
    batch = client.tasm_batch(["q1", "q2"], "small", k=2)
    assert batch["results"][0]["matches"] == expected_matches(
        QUERY, corpus["small"], 2
    )
    assert batch["results"][1]["matches"] == expected_matches(
        "{a{b}}", corpus["small"], 2
    )


def test_put_query_and_document_registration(server, corpus):
    _, client = server
    registered = client.register_query("put.q", bracket="{e{a{b}{c}}}")
    assert registered["nodes"] == 4
    response = client.tasm("put.q", "small", k=2)
    assert response["matches"] == expected_matches(
        "{e{a{b}{c}}}", corpus["small"], 2
    )
    doc = client.register_document("extra", corpus["xml_path"])
    assert doc["kind"] == "xml"
    response = client.tasm("q1", "extra", k=2)
    assert response["matches"] == expected_matches(QUERY, corpus["xml_doc"], 2)
    # Re-registration bumps the version (cache invalidation handle).
    assert client.register_document("extra", corpus["xml_path"])["version"] == 2
    with pytest.raises(ServeError):
        client.register_query("x", bracket="{a}", xml="<a/>")


def test_http_error_mapping(server):
    _, client = server
    with pytest.raises(ServeHttpError) as excinfo:
        client.tasm("q1", "missing", k=2)
    assert excinfo.value.status == 404
    with pytest.raises(ServeHttpError) as excinfo:
        client.tasm("q1", "small", k=0)
    assert excinfo.value.status == 400
    with pytest.raises(ServeHttpError) as excinfo:
        client.register_query("bad", bracket="{a{b}")
    assert excinfo.value.status == 400
    assert "kind" in excinfo.value.payload
    with pytest.raises(ServeHttpError) as excinfo:
        client.request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServeHttpError) as excinfo:
        client.request("DELETE", "/healthz")
    assert excinfo.value.status == 405
    with pytest.raises(ServeHttpError) as excinfo:
        client.request("POST", "/v1/tasm", {"query": "q1"})  # no document
    assert excinfo.value.status == 400


async def _raw_post(port: int, path: str, payload: dict):
    """One HTTP POST over a raw asyncio connection."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode("utf-8")
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        ).encode("latin-1")
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, tail = raw.partition(b"\r\n\r\n")
    return int(head.split()[1]), json.loads(tail)


def test_concurrent_clients_share_one_document(server, corpus):
    """≥8 parallel asyncio clients hammer one document concurrently."""
    thread, _ = server
    expected = {
        "q1": expected_matches(QUERY, corpus["small"], 3),
        "q2": expected_matches("{a{b}}", corpus["small"], 3),
    }

    async def drive():
        requests = [
            _raw_post(
                thread.port,
                "/v1/tasm",
                {
                    "query": "q1" if i % 2 == 0 else "q2",
                    "document": "small",
                    "k": 3,
                },
            )
            for i in range(10)
        ]
        return await asyncio.gather(*requests)

    results = asyncio.run(drive())
    assert len(results) == 10
    for i, (status, payload) in enumerate(results):
        assert status == 200
        assert payload["matches"] == expected["q1" if i % 2 == 0 else "q2"]


def test_malformed_http_gets_400(server):
    thread, _ = server

    async def bad_json():
        reader, writer = await asyncio.open_connection("127.0.0.1", thread.port)
        body = b"{not json"
        writer.write(
            (
                f"POST /v1/tasm HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        await writer.wait_closed()
        return int(raw.split()[1])

    assert asyncio.run(bad_json()) == 400


def test_metrics_endpoint_counts_served_requests(corpus):
    # A private server so other tests' traffic cannot skew the counts.
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        cache_size=8,
        engine="stream",  # ring high-water metrics come from scans
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        for _ in range(3):
            client.tasm("q1", "small", k=3)
        with pytest.raises(ServeHttpError):
            client.tasm("q1", "missing", k=3)
        metrics = client.metrics()
    assert metrics["requests_by_route"]["POST /v1/tasm"] == 4
    assert metrics["errors_total"] == 1
    assert metrics["responses_by_status_class"]["4xx"] == 1
    # 1 miss computed, 2 cache hits, 1 error.
    assert metrics["engine_requests"]["stream"] == 1
    assert metrics["engine_requests"]["cache"] == 2
    latency = metrics["latency_by_route"]["POST /v1/tasm"]
    assert latency["observations"] == 4
    assert latency["p50_seconds"] <= latency["p95_seconds"]
    bound = 3 + 2 * 3 - 1  # k + 2|Q| - 1
    assert 0 < metrics["ring_peak_high_water"] <= bound


def test_metrics_route_cardinality_is_bounded():
    from repro.serve.server import TasmServer

    route = TasmServer._metrics_route
    assert route("GET", "/healthz") == "GET /healthz"
    assert route("PUT", "/v1/queries/abc") == "PUT /v1/queries/{name}"
    assert route("PUT", "/v1/documents/abc") == "PUT /v1/documents/{name}"
    # Path-scanning traffic must collapse into one bucket, or every
    # probed URL would grow a counter + latency reservoir forever.
    assert route("GET", "/x1") == route("GET", "/x2") == "GET <unknown>"


def test_sharded_routing_identical_to_stream(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        workers=2,
        shard_threshold=300,  # "large" (600 nodes) shards, "small" streams
        cache_size=0,
        engine="stream",  # shard routing applies to the scanning path
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        large = client.tasm("q1", "large", k=5)
        small = client.tasm("q1", "small", k=5)
    assert large["engine"] == "sharded"
    assert small["engine"] == "stream"
    assert large["matches"] == expected_matches(QUERY, corpus["large"], 5)
    assert small["matches"] == expected_matches(QUERY, corpus["small"], 5)


def test_server_thread_reports_startup_failure(tmp_path):
    config = ServerConfig(store=str(tmp_path / "missing.db"), port=0)
    with pytest.raises(ReproError):
        ServerThread(config).start()


# ----------------------------------------------------------------------
# Observability: request ids, Prometheus exposition, slow-request logs
# ----------------------------------------------------------------------
def test_request_id_echoed_and_assigned(server):
    _, client = server
    status, headers, _ = client.raw(
        "GET", "/healthz", headers={"X-Request-Id": "rid-42"}
    )
    assert status == 200 and headers["x-request-id"] == "rid-42"
    _, headers2, _ = client.raw("GET", "/healthz")
    assert headers2["x-request-id"] and headers2["x-request-id"] != "rid-42"


def test_request_id_never_reaches_the_body(server):
    _, client = server
    body = {"query": "q1", "document": "small", "k": 3}
    client.raw("POST", "/v1/tasm", body)  # warm the cache
    _, _, first = client.raw(
        "POST", "/v1/tasm", body, headers={"X-Request-Id": "one"}
    )
    _, _, second = client.raw(
        "POST", "/v1/tasm", body, headers={"X-Request-Id": "two"}
    )
    # Different request ids, byte-identical cached bodies: the id lives
    # in the headers only, so the CLI/server byte-identity contract
    # holds for traced requests too.
    assert first == second
    assert b"one" not in first and b"rid" not in first


def test_healthz_reports_process_fields(server):
    _, client = server
    health = client.health()
    assert health["version"]
    assert health["started_at"] > 0
    assert health["uptime_seconds"] >= 0


def test_prometheus_exposition_endpoint(server):
    from repro.obs import parse_prometheus

    _, client = server
    client.tasm("q1", "small", k=3)
    parsed = parse_prometheus(client.metrics_prometheus())
    assert parsed["repro_requests_total"]["type"] == "counter"
    route_key = 'repro_requests_total{route="POST /v1/tasm"}'
    assert parsed["repro_requests_total"]["samples"][route_key] >= 1
    assert "repro_request_seconds" in parsed
    assert "repro_engine_events_total" in parsed
    build = parsed["repro_build_info"]["samples"]
    assert any("version=" in key for key in build)
    # An unknown format is a client error, not a silent JSON fallback.
    status, _, _ = client.raw("GET", "/metrics?format=xml")
    assert status == 400


def test_metrics_split_4xx_errors(server):
    _, client = server
    before = client.metrics()
    with pytest.raises(ServeHttpError):
        client.request("GET", "/no/such/route")
    after = client.metrics()
    assert after["errors_4xx"] == before["errors_4xx"] + 1
    assert after["errors_5xx"] == before["errors_5xx"]
    assert after["errors_total"] == before["errors_total"] + 1


def test_metrics_json_carries_engine_telemetry(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        cache_size=0,
        engine="stream",  # dequeued/ring telemetry comes from scans
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        client.tasm("q1", "small", k=3)
        metrics = client.metrics()
    totals = metrics["engine_totals"]
    assert totals["dequeued"] == 120  # the whole small document scanned
    assert (
        totals["pruned_static"] + totals["pruned_dynamic"]
        == totals["pruned_large"] + totals["pruned_buffered"]
    )
    assert totals["kernel_invocations"] > 0
    assert metrics["stage_seconds"]["total"] > 0
    assert sum(metrics["ring_occupancy"]) > 0


def test_slow_request_log_carries_stage_breakdown(corpus, capfd):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        cache_size=0,
        engine="stream",  # the asserted span tree is the scan's
        slow_request_seconds=0.0,  # every request is "slow"
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        _, headers, _ = client.raw(
            "POST",
            "/v1/tasm",
            {"query": "q1", "document": "small", "k": 3},
            headers={"X-Request-Id": "slow-rid"},
        )
    err = capfd.readouterr().err
    lines = [
        json.loads(line)
        for line in err.splitlines()
        if '"slow_request"' in line
    ]
    entry = next(e for e in lines if e["route"] == "POST /v1/tasm")
    assert entry["request_id"] == headers["x-request-id"] == "slow-rid"
    assert entry["status"] == 200 and entry["engine"] == "stream"
    assert entry["seconds"] >= 0
    # The stage breakdown is the request's span tree...
    stages = entry["stages"]
    assert stages["name"] == "POST /v1/tasm"
    child_names = [c["name"] for c in stages["children"]]
    assert child_names == ["cache_lookup", "coalesce"]
    coalesce = stages["children"][1]
    # The coalesce span records batch composition...
    assert coalesce["attrs"]["role"] == "leader"
    assert coalesce["attrs"]["batch_sizes"] == [1]
    # ...and parents one rank child per engine pass.
    rank = next(c for c in coalesce["children"] if c["name"] == "rank")
    assert rank["attrs"]["engine"] == "stream"
    assert any(c["name"] == "candidate_eval" for c in rank["children"])
    # ...and the engine counters ride along.
    assert entry["stats"]["dequeued"] == 120


def test_no_trace_disables_stage_breakdown_but_not_the_log(corpus, capfd):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        cache_size=0,
        engine="stream",  # the asserted counters come from a scan
        slow_request_seconds=0.0,
        trace=False,
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        _, headers, _ = client.raw(
            "POST", "/v1/tasm", {"query": "q1", "document": "small", "k": 3}
        )
        # Request ids are assigned independently of tracing.
        assert headers["x-request-id"]
    err = capfd.readouterr().err
    entries = [
        json.loads(line)
        for line in err.splitlines()
        if '"slow_request"' in line
    ]
    entry = next(e for e in entries if e["route"] == "POST /v1/tasm")
    assert entry["stages"] is None
    assert entry["stats"]["dequeued"] == 120


# ----------------------------------------------------------------------
# Indexed serving
# ----------------------------------------------------------------------
def test_healthz_reports_engine_and_per_document_index_flags(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        xml_documents={"extra": corpus["xml_path"]},
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        health = client.health()
    assert health["engine"] == "auto"
    # Store documents carry a candidate index from ingest; XML
    # documents never do.
    assert health["index"] == {"small": True, "large": True, "extra": False}


def test_indexed_requests_flow_into_metrics(corpus):
    config = ServerConfig(
        store=corpus["db"],
        port=0,
        queries={"q1": QUERY},
        cache_size=0,
        engine="indexed",
    )
    with ServerThread(config) as thread:
        client = ServeClient(port=thread.port)
        client.wait_healthy()
        response = client.tasm("q1", "small", k=3)
        metrics = client.metrics()
        status, _, prom = client.raw("GET", "/metrics?format=prometheus")
    assert response["engine"] == "indexed"
    assert response["matches"] == expected_matches(QUERY, corpus["small"], 3)
    assert metrics["engine_requests"] == {"indexed": 1}
    totals = metrics["engine_totals"]
    assert totals["index_candidates"] > 0
    assert totals["dequeued"] == 0  # no streaming scan happened
    assert status == 200
    text = prom if isinstance(prom, str) else prom.decode("utf-8")
    assert "index_candidates" in text


def test_engine_indexed_rejects_unindexed_documents(corpus):
    registry = QueryRegistry()
    registry.register("q1", QUERY)
    catalog = DocumentCatalog(corpus["db"])
    catalog.register_xml("extra", corpus["xml_path"])
    executor = TasmExecutor(registry, catalog, engine="indexed")
    with pytest.raises(ServeError, match="index"):
        executor.run({"query": "q1", "document": "extra", "k": 2})
    # Indexed store documents still serve.
    payload, _ = executor.run({"query": "q1", "document": "small", "k": 2})
    assert payload["engine"] == "indexed"
    with pytest.raises(ServeError):
        TasmExecutor(registry, catalog, engine="bogus")
