"""The kernel backend abstraction: resolution, fallback, equality.

The numpy row engine must be *invisible* except for speed: every
distance, every ranking, every wire byte identical to the pure-Python
engine (the Hypothesis property lives in test_differential.py next to
the other engine-equivalence checks).  This module covers the
machinery around it — backend resolution and degradation, the forced
vector/batch/scalar routing paths, state reuse across calls, and the
places the active backend is surfaced (CLI ``--verbose``, serve
``/healthz`` + ``/metrics``).
"""

import importlib
import random

import pytest

from repro.cli import main

# `repro.distance.ted` the *module* — the package re-exports a function
# of the same name, so plain attribute imports would shadow it.
ted_module = importlib.import_module("repro.distance.ted")
from repro.distance import (
    KERNEL_BACKENDS,
    PrefixDistanceKernel,
    UnitCostModel,
    WeightedCostModel,
    numpy_backend_available,
    prefix_distance,
    resolve_backend,
    ted,
    ted_matrix,
)
from repro.errors import BackendError
from repro.trees import Tree, caterpillar, random_tree, star

HAVE_NUMPY = numpy_backend_available()
needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

#: Kernel configurations that force every numpy routing decision on
#: small inputs: the default cutoffs, engine-on-everything, batch-heavy
#: (tiny per-pair threshold), and per-pair-sweep-heavy.
FORCED_CONFIGS = (
    {},
    {"numpy_min_doc": 0},
    {"numpy_min_doc": 0, "vector_min_cols": 2},
    {"numpy_min_doc": 0, "vector_min_cols": 10**9},
)


def assert_backends_agree(query, docs, cost=None, **kw):
    kp = PrefixDistanceKernel(query, cost, backend="python")
    kn = PrefixDistanceKernel(query, cost, backend="numpy", **kw)
    for doc in docs:
        expected = kp.distances(doc)
        got = kn.distances(doc)
        assert got == expected
        assert all(type(x) is float for x in got)


# ----------------------------------------------------------------------
# Resolution and degradation
# ----------------------------------------------------------------------
def test_resolve_backend_names():
    assert resolve_backend("python") == "python"
    assert resolve_backend("auto") in ("python", "numpy")
    assert set(KERNEL_BACKENDS) == {"auto", "python", "numpy"}
    with pytest.raises(BackendError):
        resolve_backend("cupy")
    with pytest.raises(BackendError):
        PrefixDistanceKernel(Tree.from_bracket("{a}"), backend="cython")


@needs_numpy
def test_auto_prefers_numpy_when_installed():
    assert resolve_backend("auto") == "numpy"
    assert PrefixDistanceKernel(Tree.from_bracket("{a}")).backend == "numpy"


def test_missing_numpy_degrades_auto_and_rejects_explicit(monkeypatch):
    # Simulate an environment without numpy: the probe cache reads
    # "unavailable", exactly what the no-numpy CI leg sees for real.
    monkeypatch.setattr(ted_module, "_np_cache", False)
    assert not numpy_backend_available()
    assert resolve_backend("auto") == "python"
    kernel = PrefixDistanceKernel(Tree.from_bracket("{a{b}}"), backend="auto")
    assert kernel.backend == "python"
    assert kernel.distances(Tree.from_bracket("{a{b}}")) == [0.0, 1.0, 0.0]
    with pytest.raises(BackendError, match="numpy"):
        resolve_backend("numpy")
    with pytest.raises(BackendError, match=r"\[fast\]|fast extra"):
        PrefixDistanceKernel(Tree.from_bracket("{a}"), backend="numpy")


def test_missing_numpy_cli_error_is_clean(monkeypatch, capsys):
    monkeypatch.setattr(ted_module, "_np_cache", False)
    assert main(["tasm", "{a}", "{a{b}}", "--backend", "numpy"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("repro: error:") and "numpy" in err
    # auto still works, on the fallback engine.
    assert main(["tasm", "{a}", "{a{b}}", "--backend", "auto", "-v"]) == 0
    assert "backend=python" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Engine equality on targeted shapes (the broad Hypothesis property is
# in test_differential.py)
# ----------------------------------------------------------------------
@needs_numpy
@pytest.mark.parametrize("kw", FORCED_CONFIGS)
def test_numpy_matches_python_across_shapes(kw):
    rng = random.Random(7)
    for query_size in (1, 4, 8):
        query = random_tree(query_size, seed=query_size, labels="abc")
        docs = [
            random_tree(n, seed=rng.randrange(10**6), labels="abc", max_fanout=5)
            for n in (1, 2, 3, 9, 33, 150, 700)
        ]
        docs += [
            star(90),
            caterpillar(25, 4),
            random_tree(130, seed=3, max_fanout=2),  # deep, chain-heavy
        ]
        assert_backends_agree(query, docs, **kw)
        assert_backends_agree(query, docs, WeightedCostModel(0.5, 1.5, 2.0), **kw)


@needs_numpy
@pytest.mark.parametrize("kw", FORCED_CONFIGS)
def test_numpy_matches_python_per_label_costs(kw):
    class PerLabelCost:
        min_indel = 1.0
        max_cost = 3.0

        def rename(self, a, b):
            return 0.0 if a == b else 2.0

        def delete(self, label):
            return 1.5 if label == "a" else 1.0

        def insert(self, label):
            return 3.0 if label == "b" else 1.0

    query = random_tree(7, seed=70, labels="ab")
    docs = [random_tree(n, seed=900 + n, labels="ab") for n in (1, 6, 14, 90, 600)]
    assert_backends_agree(query, docs, PerLabelCost(), **kw)


@needs_numpy
def test_numpy_uniformity_flip_mid_lifetime():
    # The uniform-insert specialisation must self-correct on the numpy
    # engine too when a later document breaks insert-cost uniformity.
    class FlipCost:
        min_indel = 1.0
        max_cost = 2.0

        def rename(self, a, b):
            return 0.0 if a == b else 1.0

        def delete(self, label):
            return 1.0

        def insert(self, label):
            return 2.0 if label == "z" else 1.0

    cost = FlipCost()
    query = Tree.from_bracket("{a{b}}")
    kernel = PrefixDistanceKernel(query, cost, backend="numpy", numpy_min_doc=0)
    plain = random_tree(40, seed=4, labels="abc")
    flipper = Tree.from_postorder([("z", 1)] + [("a", i) for i in range(2, 40)])
    for doc in (plain, flipper, plain):
        assert kernel.distances(doc) == prefix_distance(
            query, doc, cost, backend="python"
        )


@needs_numpy
def test_numpy_kernel_reuse_and_label_growth():
    # One kernel, documents of wildly varying size and fresh labels:
    # the td/rows banks grow and shrink logically, and the cost-table
    # mirrors pick up labels interned by earlier calls.
    query = random_tree(6, seed=50)
    kernel = PrefixDistanceKernel(query, backend="numpy", numpy_min_doc=0)
    for i, n in enumerate((40, 7, 600, 1, 25, 600, 90)):
        labels = "abcdefghij"[i : i + 4]
        doc = random_tree(n, seed=500 + n, labels=labels)
        assert kernel.distances(doc) == prefix_distance(
            query, doc, backend="python"
        )


@needs_numpy
def test_numpy_matrix_and_module_functions():
    t1 = random_tree(8, seed=61)
    t2 = random_tree(640, seed=62)
    assert ted_matrix(t1, t2, backend="numpy") == ted_matrix(
        t1, t2, backend="python"
    )
    assert ted(t1, t2, backend="numpy") == ted(t1, t2, backend="python")
    assert type(ted(t1, t2, backend="numpy")) is float
    # matrix() returns copies on the numpy engine too.
    kernel = PrefixDistanceKernel(t1, backend="numpy")
    m = kernel.matrix(t2)
    m[len(t1)][len(t2)] = -99.0
    assert kernel.matrix(t2)[len(t1)][len(t2)] != -99.0


@needs_numpy
def test_mixed_engine_dispatch_within_one_kernel():
    # Below numpy_min_doc the kernel runs the scalar engine, above it
    # the array engine; interleaving the two must read back from the
    # right table every time.
    query = random_tree(5, seed=9)
    kernel = PrefixDistanceKernel(query, backend="numpy", numpy_min_doc=100)
    small = random_tree(30, seed=10)
    large = random_tree(400, seed=11)
    for doc in (small, large, small, large):
        assert kernel.distances(doc) == prefix_distance(
            query, doc, backend="python"
        )


# ----------------------------------------------------------------------
# Surfacing: CLI, stats, serve
# ----------------------------------------------------------------------
def test_cli_verbose_reports_backend(capsys):
    args = ["tasm", "{a}", "{a{a}{b}}", "-k", "2", "-v", "--backend", "python"]
    assert main(args) == 0
    assert "backend=python" in capsys.readouterr().err
    assert main(["tasm", "{a}", "{a{a}{b}}", "-k", "2", "-v", "--algorithm",
                 "dynamic", "--backend", "python"]) == 0
    assert "engine=dynamic backend=python" in capsys.readouterr().err


@needs_numpy
def test_cli_backends_produce_identical_output(capsys):
    args = ["tasm", "{a{b}{c}}", "{x{a{b}{c}}{a{b}{d}}}", "-k", "3", "--json"]
    assert main(args + ["--backend", "python"]) == 0
    py_out = capsys.readouterr().out
    assert main(args + ["--backend", "numpy"]) == 0
    assert capsys.readouterr().out == py_out
    assert main(["ted", "{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}",
                 "--backend", "numpy"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_stats_record_kernel_backend():
    from repro.postorder.queue import PostorderQueue
    from repro.tasm import PostorderStats, tasm_postorder

    doc = random_tree(60, seed=21)
    query = random_tree(4, seed=22)
    stats = PostorderStats()
    tasm_postorder(query, PostorderQueue.from_tree(doc), 3, stats=stats,
                   backend="python")
    assert stats.kernel_backend == "python"
    stats = PostorderStats()
    tasm_postorder(query, PostorderQueue.from_tree(doc), 3, stats=stats)
    assert stats.kernel_backend == resolve_backend("auto")


def test_sharded_stats_record_kernel_backend():
    from repro.parallel import ShardedStats, tasm_sharded

    doc = random_tree(80, seed=31)
    query = random_tree(4, seed=32)
    stats = ShardedStats()
    tasm_sharded(query, doc, 3, workers=1, shards=2, stats=stats,
                 backend="python")
    assert stats.kernel_backend == "python"


def test_serve_surfaces_backend_in_health_and_metrics():
    from repro.serve import ServeMetrics, ServerConfig, TasmServer

    server = TasmServer(ServerConfig(backend="python"))
    assert server._health_payload()["kernel_backend"] == "python"
    assert server.metrics.payload()["kernel_backend"] == "python"
    assert server.executor.payload()["kernel_backend"] == "python"
    assert ServeMetrics(kernel_backend="numpy").payload()["kernel_backend"] == (
        "numpy"
    )


def test_serve_registry_resolves_backend_for_queries():
    from repro.serve import QueryRegistry

    registry = QueryRegistry(backend="python")
    assert registry.backend == "python"
    entry = registry.register("q", "{a{b}}")
    assert entry.backend == "python"
    assert entry.kernel(UnitCostModel()).backend == "python"
    inline = registry.resolve("{a}")
    assert inline.backend == "python"


def test_serve_registry_rejects_numpy_without_numpy(monkeypatch):
    from repro.serve import QueryRegistry, ServerConfig, TasmServer

    monkeypatch.setattr(ted_module, "_np_cache", False)
    with pytest.raises(BackendError):
        QueryRegistry(backend="numpy")
    # The server dies at construction — before any socket exists.
    with pytest.raises(BackendError):
        TasmServer(ServerConfig(backend="numpy"))
