"""Metamorphic properties of TED and the TASM rankings (Hypothesis).

Two relations that need no oracle:

* **Edit-bounded drift** — applying ``m`` single-node edit operations
  to the query moves ``ted(Q, T)`` by at most ``m * max_cost``: the
  mutation itself is an edit script of cost <= ``m * max_cost``, so the
  bound is the triangle inequality in disguise.
* **Relabeling invariance** — pushing the document (and query) through
  a fresh :class:`~repro.xmlio.dictionary.LabelDictionary` renames
  every label bijectively.  Label-independent cost models only ever
  compare labels for equality, so distances, matched roots, and tie
  order must all survive, and decoding the matched subtrees must give
  back the original matches.
"""

import random

from hypothesis import given
from hypothesis import strategies as st

from conftest import LABELS, cost_models, ks, small_trees, trees
from repro.distance import ted
from repro.postorder import PostorderQueue
from repro.tasm import tasm_postorder
from repro.trees import Tree
from repro.trees.node import Node
from repro.xmlio.dictionary import LabelDictionary


def _parent_of(root, target):
    for node in root.preorder():
        if target in node.children:
            return node
    raise AssertionError("target not in tree")


def mutate(tree: Tree, m: int, rng: random.Random) -> Tree:
    """Apply ``m`` single-node edits (rename/delete/insert) to ``tree``.

    Each step is one standard tree edit operation, so the edit script
    from the original to the result costs at most ``m * max_cost``.
    """
    root = tree.to_node()
    for _ in range(m):
        nodes = list(root.preorder())
        ops = ["rename", "insert"]
        if len(nodes) > 1:
            ops.append("delete")
        op = rng.choice(ops)
        if op == "rename":
            rng.choice(nodes).label = rng.choice(LABELS)
        elif op == "delete":
            node = rng.choice(nodes[1:])
            parent = _parent_of(root, node)
            at = parent.children.index(node)
            parent.children[at : at + 1] = node.children
        else:  # insert: adopt a contiguous run of some node's children
            parent = rng.choice(nodes)
            lo = rng.randrange(len(parent.children) + 1)
            hi = rng.randrange(lo, len(parent.children) + 1)
            fresh = Node(rng.choice(LABELS), parent.children[lo:hi])
            parent.children[lo:hi] = [fresh]
    return Tree.from_node(root)


@given(
    query=small_trees,
    doc=trees,
    cost=cost_models,
    m=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_m_edits_change_ted_by_at_most_m_times_max_cost(
    query, doc, cost, m, seed
):
    mutated = mutate(query, m, random.Random(seed))
    before = ted(query, doc, cost)
    after = ted(mutated, doc, cost)
    assert abs(after - before) <= m * cost.max_cost


@given(query=small_trees, doc=trees, k=ks, cost=cost_models)
def test_label_dictionary_relabeling_leaves_rankings_invariant(
    query, doc, k, cost
):
    dictionary = LabelDictionary()
    enc_doc = dictionary.encode_tree(doc)
    enc_query = dictionary.encode_tree(query)
    base = tasm_postorder(query, PostorderQueue.from_tree(doc), k, cost)
    encoded = tasm_postorder(
        enc_query, PostorderQueue.from_tree(enc_doc), k, cost
    )
    assert [(m.distance, m.root) for m in base] == [
        (m.distance, m.root) for m in encoded
    ]
    for orig, enc in zip(base, encoded, strict=True):
        assert dictionary.decode_tree(enc.subtree).equals(orig.subtree)
