"""tasm_batch: one document pass, per-query rankings unchanged.

The batch API must return, for every query, exactly the ranking the
single-query algorithms produce — the shared ring buffer and the
max-over-queries pruning limit must never change any individual
result.
"""

import random

import pytest

from repro.distance import UnitCostModel, WeightedCostModel
from repro.errors import RankingError
from repro.postorder import PostorderQueue
from repro.tasm import (
    PostorderStats,
    prune_threshold,
    tasm_batch,
    tasm_dynamic,
    tasm_postorder,
)
from repro.trees import Tree, random_tree
from repro.xmlio import write_xml


def _workload(seed, n_docs=12):
    rng = random.Random(seed)
    for _ in range(n_docs):
        doc = random_tree(rng.randint(5, 60), seed=rng.randrange(10**6))
        queries = [
            random_tree(rng.randint(1, 7), seed=rng.randrange(10**6))
            for _ in range(rng.randint(2, 4))
        ]
        k = rng.choice([1, 2, 3, 5])
        yield doc, queries, k


def test_batch_matches_per_query_dynamic():
    for i, (doc, queries, k) in enumerate(_workload(seed=101)):
        rankings = tasm_batch(queries, PostorderQueue.from_tree(doc), k)
        assert len(rankings) == len(queries)
        for qi, (query, ranking) in enumerate(zip(queries, rankings, strict=True)):
            expected = tasm_dynamic(query, doc, k)
            assert sorted(m.distance for m in ranking) == sorted(
                m.distance for m in expected
            ), f"workload {i}, query {qi}: |doc|={len(doc)} k={k}"


def test_batch_matches_per_query_postorder_roots():
    # Stronger than the distance multiset: batch and single-query
    # postorder runs must agree on (distance, root) pairs.
    for doc, queries, k in _workload(seed=202, n_docs=6):
        rankings = tasm_batch(queries, PostorderQueue.from_tree(doc), k)
        for query, ranking in zip(queries, rankings, strict=True):
            solo = tasm_postorder(query, PostorderQueue.from_tree(doc), k)
            assert [(m.distance, m.root) for m in ranking] == [
                (m.distance, m.root) for m in solo
            ]


def test_single_query_batch_equals_tasm_postorder():
    doc = random_tree(80, seed=7)
    query = random_tree(5, seed=8)
    [batch] = tasm_batch([query], PostorderQueue.from_tree(doc), 4)
    solo = tasm_postorder(query, PostorderQueue.from_tree(doc), 4)
    assert [(m.distance, m.root) for m in batch] == [
        (m.distance, m.root) for m in solo
    ]


def test_shared_ring_sized_by_largest_threshold():
    cost = UnitCostModel()
    queries = [random_tree(2, seed=1), random_tree(9, seed=2)]
    k = 3
    stats = PostorderStats()
    doc = random_tree(300, seed=3)
    tasm_batch(queries, PostorderQueue.from_tree(doc), k, stats=stats)
    assert stats.ring_capacity == max(
        prune_threshold(k, len(q), cost) for q in queries
    )
    assert stats.peak_buffered <= stats.ring_capacity
    assert stats.dequeued == len(doc)


def test_batch_over_streamed_xml(tmp_path):
    doc = random_tree(120, seed=21, labels="abcde")
    path = str(tmp_path / "doc.xml")
    write_xml(doc, path)
    queries = [random_tree(3, seed=22), random_tree(4, seed=23)]
    rankings = tasm_batch(queries, PostorderQueue.from_xml_file(path), 3)
    for query, ranking in zip(queries, rankings, strict=True):
        expected = tasm_dynamic(query, doc, 3)
        assert sorted(m.distance for m in ranking) == sorted(
            m.distance for m in expected
        )


def test_batch_weighted_cost():
    cost = WeightedCostModel(rename_cost=2.0, delete_cost=1.5, insert_cost=1.0)
    doc = random_tree(70, seed=31)
    queries = [random_tree(4, seed=32), random_tree(6, seed=33)]
    rankings = tasm_batch(queries, PostorderQueue.from_tree(doc), 2, cost)
    for query, ranking in zip(queries, rankings, strict=True):
        expected = tasm_dynamic(query, doc, 2, cost)
        assert sorted(m.distance for m in ranking) == sorted(
            m.distance for m in expected
        )


def test_batch_requires_queries_and_valid_k():
    doc = Tree.from_bracket("{a{b}}")
    with pytest.raises(RankingError):
        tasm_batch([], doc, 3)
    with pytest.raises(RankingError):
        tasm_batch([doc], doc, 0)
