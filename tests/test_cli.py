"""The ``repro`` command line interface."""

import json

from repro.cli import main
from repro.trees import Tree
from repro.xmlio import write_xml


def test_ted_subcommand(capsys):
    assert main(["ted", "{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_ted_with_weighted_costs(capsys):
    assert main(["ted", "{a{b}}", "{a{c}}", "--cost", "3,2,2"]) == 0
    assert capsys.readouterr().out.strip() == "3"


def test_tasm_subcommand_text(capsys):
    assert main(["tasm", "{a{b}{c}}", "{x{a{b}{c}}{a{b}{d}}}", "-k", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].split("\t") == ["1", "0", "@3", "{a{b}{c}}"]


def test_tasm_json_over_xml_document(capsys, tmp_path):
    doc = Tree.from_bracket("{dblp{article{title}{year}}{book{title}}}")
    path = str(tmp_path / "doc.xml")
    write_xml(doc, path)
    assert main(["tasm", "{article{title}{year}}", path, "-k", "1", "--json"]) == 0
    ranking = json.loads(capsys.readouterr().out)
    assert ranking[0]["distance"] == 0
    assert ranking[0]["subtree"] == "{article{title}{year}}"


def test_tasm_dynamic_algorithm_matches(capsys):
    args = ["tasm", "{a}", "{a{a}{b}}", "-k", "3"]
    assert main(args + ["--algorithm", "dynamic"]) == 0
    dynamic_out = capsys.readouterr().out
    assert main(args + ["--algorithm", "postorder"]) == 0
    assert capsys.readouterr().out == dynamic_out


def test_cli_error_paths(capsys):
    assert main(["ted", "{a}", "{unbalanced"]) == 1
    assert "error" in capsys.readouterr().err
    assert main(["tasm", "{a}", "/nonexistent/file.xml"]) == 1


def test_malformed_xml_exits_one_with_error_message(capsys, tmp_path):
    path = str(tmp_path / "broken.xml")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("<dblp><article><title>x</title></dblp>")
    assert main(["tasm", "{article{title}}", path, "-k", "2"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "malformed XML" in err


def test_query_file_batch_text_and_json(capsys, tmp_path):
    doc = Tree.from_bracket(
        "{dblp{article{title}{year}}{book{title}}{article{title}}}"
    )
    doc_path = str(tmp_path / "doc.xml")
    write_xml(doc, doc_path)
    qfile = str(tmp_path / "queries.txt")
    with open(qfile, "w", encoding="utf-8") as fh:
        fh.write("# workload\n{article{title}{year}}\n\n{book{title}}\n")

    assert main(["tasm", doc_path, "--query-file", qfile, "-k", "1"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert [line.split("\t")[0] for line in lines] == ["q1", "q2"]
    assert lines[0].split("\t")[1:3] == ["1", "0"]  # exact match for q1

    assert (
        main(["tasm", doc_path, "--query-file", qfile, "-k", "1", "--json"]) == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert [entry["query"] for entry in payload] == [1, 2]
    assert payload[0]["matches"][0]["distance"] == 0
    assert payload[0]["matches"][0]["subtree"] == "{article{title}{year}}"
    assert payload[1]["matches"][0]["distance"] == 0


def test_query_file_agrees_with_dynamic_algorithm(capsys, tmp_path):
    doc = Tree.from_bracket("{r{a{b}{c}}{a{b}{d}}{e{a{b}}}}")
    qfile = str(tmp_path / "queries.txt")
    with open(qfile, "w", encoding="utf-8") as fh:
        fh.write("{a{b}{c}}\n{a{b}}\n")
    args = [doc.to_bracket(), "--query-file", qfile, "-k", "2"]
    assert main(["tasm"] + args + ["--algorithm", "postorder"]) == 0
    postorder_out = capsys.readouterr().out
    assert main(["tasm"] + args + ["--algorithm", "dynamic"]) == 0
    assert capsys.readouterr().out == postorder_out


def test_query_and_query_file_are_exclusive(capsys, tmp_path):
    qfile = str(tmp_path / "queries.txt")
    with open(qfile, "w", encoding="utf-8") as fh:
        fh.write("{a}\n")
    assert main(["tasm", "{a}", "{a{b}}", "--query-file", qfile]) == 1
    assert "not both" in capsys.readouterr().err
    assert main(["tasm", "{a{b}}"]) == 1
    assert "required" in capsys.readouterr().err
    with open(qfile, "w", encoding="utf-8") as fh:
        fh.write("# only comments\n")
    assert main(["tasm", "{a{b}}", "--query-file", qfile]) == 1
    assert "no queries" in capsys.readouterr().err


def test_dataset_subcommand(capsys, tmp_path):
    out = str(tmp_path / "corpus.xml")
    assert main(["dataset", "dblp", out, "--nodes", "800", "--seed", "3"]) == 0
    message = capsys.readouterr().out
    assert "wrote" in message and "dblp" in message
    # The generated corpus is immediately usable as a tasm document.
    assert main(["tasm", "{article{author}{title}}", out, "-k", "1"]) == 0
    assert len(capsys.readouterr().out.strip().splitlines()) == 1


def test_dataset_seed_reproducible_from_cli(capsys, tmp_path):
    # --seed fully determines the corpus: equal seeds give byte-identical
    # files, different seeds give different files.
    a, b, c = (str(tmp_path / f"{name}.xml") for name in "abc")
    assert main(["dataset", "xmark", a, "--nodes", "400", "--seed", "7"]) == 0
    assert main(["dataset", "xmark", b, "--nodes", "400", "--seed", "7"]) == 0
    assert main(["dataset", "xmark", c, "--nodes", "400", "--seed", "8"]) == 0
    capsys.readouterr()
    with open(a, "rb") as fh:
        bytes_a = fh.read()
    with open(b, "rb") as fh:
        assert fh.read() == bytes_a
    with open(c, "rb") as fh:
        assert fh.read() != bytes_a
    # The seed is reported so a run can be reproduced from its log line.
    assert main(["dataset", "xmark", a, "--nodes", "400", "--seed", "7"]) == 0
    assert "seed 7" in capsys.readouterr().out


def test_tasm_workers_matches_single_pass(capsys, tmp_path):
    doc = Tree.from_bracket(
        "{dblp{article{title}{year}}{book{title}}{article{title}{year}}}"
    )
    path = str(tmp_path / "doc.xml")
    write_xml(doc, path)
    args = ["tasm", "{article{title}{year}}", path, "-k", "3", "--stats"]
    assert main(args) == 0
    single = capsys.readouterr()
    assert main(args + ["--workers", "2"]) == 0
    parallel = capsys.readouterr()
    assert parallel.out == single.out
    assert "dequeued=" in parallel.err


def test_tasm_workers_rejects_dynamic_and_bad_counts(capsys):
    args = ["tasm", "{a}", "{a{b}}", "-k", "1"]
    assert main(args + ["--workers", "2", "--algorithm", "dynamic"]) == 1
    assert "postorder" in capsys.readouterr().err
    assert main(args + ["--workers", "0"]) == 1
    assert ">= 1" in capsys.readouterr().err


def test_tasm_workers_warns_when_no_safe_cut(capsys, tmp_path):
    # A 6-node document against tau = k + 2|Q| - 1 = 10: the root's
    # subtree is within the bound, so it blocks every cut and the run
    # degenerates to a single pass — which must be said out loud.
    doc = Tree.from_bracket("{a{b}{c}{d{b}{c}}}")
    path = str(tmp_path / "tiny.xml")
    write_xml(doc, path)
    assert main(
        ["tasm", "{a{b}{c}}", path, "-k", "5", "--workers", "4", "--verbose"]
    ) == 0
    err = capsys.readouterr().err
    assert "warning" in err and "no safe cut" in err
    assert "single pass" in err
    assert "shards=1" in err and "engine=sharded" in err


def test_tasm_verbose_reports_engine_and_stats(capsys):
    assert main(["tasm", "{a{b}}", "{r{a{b}}{a{c}}}", "-k", "2", "-v"]) == 0
    err = capsys.readouterr().err
    assert "dequeued=" in err  # --verbose implies --stats
    assert "engine=postorder" in err


def _store_with(tmp_path, trees):
    from repro import IntervalStore

    path = str(tmp_path / "docs.db")
    with IntervalStore(path) as store:
        for name, tree in trees.items():
            store.store_tree(name, tree)
    return path


def test_tasm_over_interval_store_document(capsys, tmp_path):
    doc = Tree.from_bracket("{dblp{article{title}{year}}{book{title}}}")
    db = _store_with(tmp_path, {"dblp": doc})
    assert main(["tasm", "{article{title}{year}}", db, "-k", "1", "--json"]) == 0
    store_ranking = capsys.readouterr().out
    assert main(
        ["tasm", "{article{title}{year}}", doc.to_bracket(), "-k", "1", "--json"]
    ) == 0
    assert capsys.readouterr().out == store_ranking  # byte-identical


def test_tasm_store_doc_name_selection(capsys, tmp_path):
    first = Tree.from_bracket("{a{b}{c}}")
    second = Tree.from_bracket("{x{y}{z}}")
    db = _store_with(tmp_path, {"first": first, "second": second})
    # Ambiguous without --doc-name.
    assert main(["tasm", "{a{b}}", db, "-k", "1"]) == 1
    assert "--doc-name" in capsys.readouterr().err
    assert main(["tasm", "{x{y}}", db, "-k", "1", "--doc-name", "second"]) == 0
    assert "{y}" in capsys.readouterr().out  # ranked from "second", not "first"
    assert main(["tasm", "{a}", db, "-k", "1", "--doc-name", "missing"]) == 1
    assert "missing" in capsys.readouterr().err


def test_tasm_store_document_dynamic_algorithm(capsys, tmp_path):
    doc = Tree.from_bracket("{dblp{article{title}{year}}{book{title}}}")
    db = _store_with(tmp_path, {"dblp": doc})
    args = ["tasm", "{article{title}{year}}", db, "-k", "2", "--json"]
    assert main(args) == 0
    postorder_out = capsys.readouterr().out
    assert main(args + ["--algorithm", "dynamic"]) == 0
    assert capsys.readouterr().out == postorder_out


def test_store_error_paths_are_clean(capsys, tmp_path):
    # A .db file that is not an IntervalStore: error message, not a
    # sqlite traceback.
    junk = str(tmp_path / "junk.db")
    with open(junk, "w", encoding="utf-8") as fh:
        fh.write("not a database")
    assert main(["tasm", "{a}", junk, "-k", "1"]) == 1
    assert "not an IntervalStore" in capsys.readouterr().err
    # Store files cannot serve as tree arguments (ted, queries).
    assert main(["ted", "{a}", junk]) == 1
    assert "tree arguments" in capsys.readouterr().err


def test_tasm_store_document_sharded_matches_single_pass(capsys, tmp_path):
    from repro.trees import random_tree

    doc = random_tree(400, seed=9, labels="abc", max_fanout=4)
    db = _store_with(tmp_path, {"rand": doc})
    args = ["tasm", "{a{b}}", db, "-k", "3", "--json"]
    assert main(args) == 0
    single = capsys.readouterr().out
    assert main(args + ["--workers", "2"]) == 0
    assert capsys.readouterr().out == single


def test_serve_config_construction():
    import argparse

    from repro.cli import _serve_config
    from repro.datasets import DEFAULT_QUERIES

    args = argparse.Namespace(
        host="0.0.0.0",
        port=9000,
        store="docs.db",
        xml=["extra=extra.xml"],
        query=["q1={a{b}}"],
        default_queries=True,
        workers=3,
        shard_threshold=1234,
        cache_size=7,
        request_threads=5,
        max_k=99,
        backend="python",
        engine="indexed",
        coalesce_window_ms=7.5,
        max_batch_queries=9,
        verbose=True,
        slow_request_seconds=2.5,
        no_trace=False,
    )
    config = _serve_config(args)
    assert config.port == 9000 and config.workers == 3
    assert config.slow_request_seconds == 2.5 and config.trace is True
    assert config.max_k == 99
    assert config.backend == "python"
    assert config.engine == "indexed"
    assert config.xml_documents == {"extra": "extra.xml"}
    assert config.queries["q1"] == "{a{b}}"
    for name, bracket in DEFAULT_QUERIES.items():
        assert config.queries[name] == bracket
    assert config.cache_size == 7 and config.shard_threshold == 1234
    assert config.coalesce_window_ms == 7.5
    assert config.max_batch_queries == 9
    assert config.verbose is True


def test_serve_config_rejects_malformed_pairs(capsys):
    assert main(["serve", "--xml", "nameonly", "--port", "0"]) == 1
    assert "NAME=VALUE" in capsys.readouterr().err


def test_serve_config_slow_request_and_trace_flags():
    import argparse

    from repro.cli import _serve_config

    args = argparse.Namespace(
        host="127.0.0.1",
        port=0,
        store=None,
        xml=[],
        query=[],
        default_queries=False,
        workers=1,
        shard_threshold=50_000,
        cache_size=0,
        request_threads=1,
        max_k=10,
        backend="auto",
        engine="auto",
        coalesce_window_ms=5.0,
        max_batch_queries=32,
        verbose=False,
        slow_request_seconds=-1.0,  # negative disables slow logging
        no_trace=True,
    )
    config = _serve_config(args)
    assert config.slow_request_seconds is None
    assert config.trace is False


def test_tasm_profile_prints_stage_report(capsys):
    assert (
        main(
            ["tasm", "{a{b}{c}}", "{x{a{b}{c}}{a{b}{d}}{y{z}}}",
             "-k", "2", "--profile"]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert captured.out.strip()  # the ranking still lands on stdout
    err = captured.err
    assert "profile: stage seconds" in err
    for stage in ("total", "scan", "candidate_eval", "kernel"):
        assert stage in err
    assert "pruned static=" in err and "dynamic=" in err
    assert "profile: span tree" in err
    assert "candidate_eval" in err


def test_tasm_profile_sharded_includes_worker_spans(capsys, tmp_path):
    from repro.trees import random_tree
    from repro.xmlio import write_xml

    path = str(tmp_path / "doc.xml")
    write_xml(random_tree(400, seed=3, labels="abcd", max_fanout=4), path)
    assert (
        main(
            ["tasm", "{a{b}}", path, "-k", "2", "--workers", "2",
             "--profile", "--json"]
        )
        == 0
    )
    captured = capsys.readouterr()
    json.loads(captured.out)  # --json output unpolluted by the report
    err = captured.err
    assert "coordinator wall clock" in err
    assert "plan_seconds" in err and "merge_seconds" in err
    # Worker spans crossed the process boundary into the tree.
    assert "shard_dispatch" in err and "shard  " in err


def test_tasm_profile_dynamic_prints_note(capsys):
    assert (
        main(
            ["tasm", "{a{b}}", "{r{a{b}}}", "-k", "1",
             "--algorithm", "dynamic", "--profile"]
        )
        == 0
    )
    assert "--profile only applies" in capsys.readouterr().err
