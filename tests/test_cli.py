"""The ``repro`` command line interface."""

import json

from repro.cli import main
from repro.trees import Tree
from repro.xmlio import write_xml


def test_ted_subcommand(capsys):
    assert main(["ted", "{f{d{a}{c{b}}}{e}}", "{f{c{d{a}{b}}}{e}}"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_ted_with_weighted_costs(capsys):
    assert main(["ted", "{a{b}}", "{a{c}}", "--cost", "3,2,2"]) == 0
    assert capsys.readouterr().out.strip() == "3"


def test_tasm_subcommand_text(capsys):
    assert main(["tasm", "{a{b}{c}}", "{x{a{b}{c}}{a{b}{d}}}", "-k", "2"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 2
    assert lines[0].split("\t") == ["1", "0", "@3", "{a{b}{c}}"]


def test_tasm_json_over_xml_document(capsys, tmp_path):
    doc = Tree.from_bracket("{dblp{article{title}{year}}{book{title}}}")
    path = str(tmp_path / "doc.xml")
    write_xml(doc, path)
    assert main(["tasm", "{article{title}{year}}", path, "-k", "1", "--json"]) == 0
    ranking = json.loads(capsys.readouterr().out)
    assert ranking[0]["distance"] == 0
    assert ranking[0]["subtree"] == "{article{title}{year}}"


def test_tasm_dynamic_algorithm_matches(capsys):
    args = ["tasm", "{a}", "{a{a}{b}}", "-k", "3"]
    assert main(args + ["--algorithm", "dynamic"]) == 0
    dynamic_out = capsys.readouterr().out
    assert main(args + ["--algorithm", "postorder"]) == 0
    assert capsys.readouterr().out == dynamic_out


def test_cli_error_paths(capsys):
    assert main(["ted", "{a}", "{unbalanced"]) == 1
    assert "error" in capsys.readouterr().err
    assert main(["tasm", "{a}", "/nonexistent/file.xml"]) == 1
