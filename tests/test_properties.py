"""Property-based TED axioms and streaming invariants (Hypothesis).

The axioms below are exactly what the paper's pruning machinery rests
on: the size-difference lower bound justifies both pruning rules, and
the metric properties are what make "distance" a meaningful ranking
key.  The ring-peak property asserts the paper's headline memory claim
— ``tau = k + 2|Q| - 1`` under unit costs — on *every* generated run,
not just on fixed seeds.
"""

from hypothesis import given

from conftest import cost_models, ks, small_trees, trees
from repro.distance import UnitCostModel, ted
from repro.postorder import PostorderQueue
from repro.tasm import PostorderStats, prune_threshold, tasm_postorder


@given(t=trees, cost=cost_models)
def test_ted_identity(t, cost):
    assert ted(t, t, cost) == 0


@given(a=trees, b=trees)
def test_ted_symmetry_under_unit_costs(a, b):
    # Unit costs price delete and insert equally, so reversing the
    # direction of the edit script reverses each operation at equal
    # cost.  (Weighted models with delete != insert are asymmetric by
    # design, hence the unit-cost restriction.)
    assert ted(a, b) == ted(b, a)


@given(a=small_trees, b=small_trees, c=small_trees, cost=cost_models)
def test_ted_triangle_inequality(a, b, c, cost):
    # Concatenating an edit script a->b with one b->c edits a into c,
    # so the optimal a->c script cannot cost more.
    assert ted(a, c, cost) <= ted(a, b, cost) + ted(b, c, cost)


@given(q=trees, t=trees, cost=cost_models)
def test_ted_size_difference_lower_bound(q, t, cost):
    # Any mapping leaves at least ||Q| - |T|| nodes unmapped, each
    # costing at least min_indel to delete or insert.  Both pruning
    # rules of TASM-postorder are instances of this bound.
    assert ted(q, t, cost) >= cost.min_indel * abs(len(q) - len(t))


@given(q=small_trees, t=trees, k=ks)
def test_ring_peak_within_paper_bound(q, t, k):
    # Unit costs: prune_threshold is the paper's tau = k + 2|Q| - 1.
    tau = prune_threshold(k, len(q), UnitCostModel())
    assert tau == k + 2 * len(q) - 1
    stats = PostorderStats()
    tasm_postorder(q, PostorderQueue.from_tree(t), k, stats=stats)
    assert stats.ring_capacity == tau
    assert stats.peak_buffered <= tau
    assert stats.dequeued == len(t)
    # Node conservation: every document node is scored exactly once or
    # pruned exactly once.
    assert (
        stats.subtrees_scored + stats.pruned_large + stats.pruned_buffered
        == len(t)
    )


@given(q=small_trees, t=trees, k=ks, cost=cost_models)
def test_ring_peak_within_bound_weighted(q, t, k, cost):
    stats = PostorderStats()
    tasm_postorder(q, PostorderQueue.from_tree(t), k, cost, stats=stats)
    assert stats.peak_buffered <= stats.ring_capacity
    assert stats.ring_capacity == prune_threshold(k, len(q), cost)
