"""Synthetic corpora: parser-exact accounting, determinism, streaming.

The generators' contract is that the returned node count equals the
node count of the tree the file parses into under the library's own
conventions, that output is byte-deterministic per seed, and that the
documents flow through every postorder-queue backend with rankings
identical to the dynamic baseline and ring peak within the paper's
``k + 2|Q| - 1`` bound (Figures 9/10).
"""

import pytest

from repro.datasets import DEFAULT_QUERIES, GENERATORS, generate
from repro.distance import UnitCostModel
from repro.errors import DatasetError
from repro.postorder import IntervalStore, PostorderQueue
from repro.tasm import PostorderStats, prune_threshold, tasm_dynamic, tasm_postorder
from repro.trees import Tree
from repro.trees.tree import validate_tree
from repro.xmlio import iterparse_postorder, tree_from_xml_file

CORPORA = sorted(GENERATORS)


@pytest.mark.parametrize("name", CORPORA)
def test_node_count_matches_parser(name, tmp_path):
    path = str(tmp_path / f"{name}.xml")
    reported = generate(name, path, target_nodes=1500, seed=11)
    pairs = list(iterparse_postorder(path))
    assert reported >= 1500
    assert len(pairs) == reported
    # The root subtree spans the whole document.
    assert pairs[-1][1] == reported
    tree = Tree.from_postorder(iter(pairs))
    validate_tree(tree)


@pytest.mark.parametrize("name", CORPORA)
def test_deterministic_per_seed(name, tmp_path):
    a, b, c = (str(tmp_path / f"{i}.xml") for i in "abc")
    generate(name, a, target_nodes=600, seed=3)
    generate(name, b, target_nodes=600, seed=3)
    generate(name, c, target_nodes=600, seed=4)
    bytes_a = open(a, "rb").read()
    assert bytes_a == open(b, "rb").read()
    assert bytes_a != open(c, "rb").read()


@pytest.mark.parametrize("name", CORPORA)
def test_streamed_ranking_matches_dynamic(name, tmp_path):
    path = str(tmp_path / f"{name}.xml")
    generate(name, path, target_nodes=2500, seed=5)
    query = Tree.from_bracket(DEFAULT_QUERIES[name])
    k = 4
    stats = PostorderStats()
    post = tasm_postorder(
        query, PostorderQueue.from_xml_file(path), k, stats=stats
    )
    dyn = tasm_dynamic(query, tree_from_xml_file(path), k)
    assert sorted(m.distance for m in post) == sorted(m.distance for m in dyn)
    assert stats.peak_buffered <= prune_threshold(k, len(query), UnitCostModel())


def test_corpus_through_interval_store(tmp_path):
    # Full round trip: streamed XML -> tree -> SQLite interval store ->
    # SQL postorder scan -> TASM, all agreeing with the dynamic run.
    path = str(tmp_path / "dblp.xml")
    generate("dblp", path, target_nodes=1200, seed=9)
    document = tree_from_xml_file(path)
    query = Tree.from_bracket(DEFAULT_QUERIES["dblp"])
    with IntervalStore() as store:
        doc_id = store.store_tree("dblp", document)
        post = tasm_postorder(query, store.postorder_queue(doc_id), 3)
    dyn = tasm_dynamic(query, document, 3)
    assert sorted(m.distance for m in post) == sorted(m.distance for m in dyn)


def test_ring_peak_flat_under_10x_document_growth(tmp_path):
    # The paper's Figure 9/10 claim: memory depends on k and |Q| only.
    query = Tree.from_bracket(DEFAULT_QUERIES["xmark"])
    k = 5
    bound = prune_threshold(k, len(query), UnitCostModel())
    peaks = []
    for nodes in (3000, 30000):
        path = str(tmp_path / f"xmark-{nodes}.xml")
        generate("xmark", path, target_nodes=nodes, seed=2)
        stats = PostorderStats()
        tasm_postorder(query, PostorderQueue.from_xml_file(path), k, stats=stats)
        assert stats.peak_buffered <= bound
        peaks.append(stats.peak_buffered)
    assert peaks[0] == peaks[1]


def test_unknown_corpus_and_bad_size(tmp_path):
    with pytest.raises(DatasetError):
        generate("wikipedia", str(tmp_path / "x.xml"), target_nodes=100)
    with pytest.raises(DatasetError):
        generate("dblp", str(tmp_path / "x.xml"), target_nodes=3)
