"""Differential equivalence of all four TASM engines (Hypothesis).

On generated (query, document, k, cost model) cases, the four engines

    ``tasm_dynamic`` == ``tasm_postorder`` == ``tasm_batch``
    == ``tasm_sharded``

must return the *same ranking* — distances, matched roots, subtrees,
and tie order — across every postorder-queue backend (in-memory tree,
streamed XML file, relational interval store).  This replaces the old
fixed-seed 50-pair spot checks: Hypothesis explores the structure
space and shrinks any disagreement to a minimal witness.

All engines break distance ties by document postorder position (the
streaming heaps prefer the earliest push; the merger sorts by
``(distance, root)``), so full rankings — not just distance multisets
— are comparable byte for byte.

The kernel's numpy row engine joins the matrix as a fifth differential
axis: on the same generated cases, distances and rankings must be
*bit-identical* to the pure-Python engine for every generated cost
model (the strategies draw costs that are multiples of 1/4, so every
edit-script total — under either engine's summation order — is exact
in binary floating point).
"""

import os
import tempfile

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import cost_models, ks, ranking_triples, small_trees, trees
from repro.distance import PrefixDistanceKernel, numpy_backend_available
from repro.parallel import ShardedStats, tasm_sharded
from repro.postorder import IntervalStore, PostorderQueue
from repro.tasm import tasm_batch, tasm_dynamic, tasm_postorder
from repro.xmlio import write_xml


@given(query=small_trees, doc=trees, k=ks, cost=cost_models)
def test_dynamic_equals_postorder_exactly(query, doc, k, cost):
    dynamic = tasm_dynamic(query, doc, k, cost)
    postorder = tasm_postorder(query, PostorderQueue.from_tree(doc), k, cost)
    assert ranking_triples(dynamic) == ranking_triples(postorder)


@given(query=small_trees, doc=trees, k=ks, cost=cost_models)
def test_postorder_identical_across_queue_backends(query, doc, k, cost):
    base = ranking_triples(
        tasm_postorder(query, PostorderQueue.from_tree(doc), k, cost)
    )
    # Backend 2: plain (label, size) pairs.
    assert ranking_triples(
        tasm_postorder(query, list(doc.postorder()), k, cost)
    ) == base
    # Backend 3: streamed XML file (labels a..d are valid element tags).
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "doc.xml")
        write_xml(doc, path)
        assert ranking_triples(
            tasm_postorder(query, PostorderQueue.from_xml_file(path), k, cost)
        ) == base
    # Backend 4: relational interval-encoding store.
    with IntervalStore() as store:
        doc_id = store.store_tree("doc", doc)
        assert ranking_triples(
            tasm_postorder(query, store.postorder_queue(doc_id), k, cost)
        ) == base


@given(
    queries=st.lists(small_trees, min_size=1, max_size=3),
    doc=trees,
    k=ks,
    cost=cost_models,
)
def test_batch_equals_per_query_postorder(queries, doc, k, cost):
    batched = tasm_batch(queries, PostorderQueue.from_tree(doc), k, cost)
    assert len(batched) == len(queries)
    for query, ranking in zip(queries, batched, strict=True):
        single = tasm_postorder(query, PostorderQueue.from_tree(doc), k, cost)
        assert ranking_triples(ranking) == ranking_triples(single)


@given(
    query=small_trees,
    doc=trees,
    k=ks,
    cost=cost_models,
    shards=st.integers(min_value=2, max_value=5),
)
def test_sharded_equals_postorder_exactly(query, doc, k, cost, shards):
    # workers=1 executes the shards inline — same planner, same
    # per-shard streaming core, same merger as the process pool, with
    # per-example cost low enough for Hypothesis.  The pool itself is
    # exercised in test_parallel.py.
    base = tasm_postorder(query, PostorderQueue.from_tree(doc), k, cost)
    stats = ShardedStats()
    sharded = tasm_sharded(
        query, doc, k, cost, workers=1, shards=shards, stats=stats
    )
    assert ranking_triples(sharded) == ranking_triples(base)
    # The shards partition the document and every worker honours the
    # paper's memory bound.
    assert stats.plan is not None
    assert [s for shard in stats.plan.shards for s in range(shard.start, shard.end + 1)] == list(
        range(1, len(doc) + 1)
    )
    assert stats.dequeued == len(doc)
    for shard_stat in stats.shard_stats:
        assert shard_stat.peak_buffered <= stats.plan.tau


@pytest.mark.skipif(not numpy_backend_available(), reason="numpy not installed")
@given(query=small_trees, doc=trees, k=ks, cost=cost_models)
def test_numpy_backend_bit_identical_to_python(query, doc, k, cost):
    # Force the array engine onto every generated document (they are
    # all far below the production NUMPY_MIN_DOC cutoff) and exercise
    # both routing variants: pairs batched across keyroots, and
    # per-pair row sweeps (vector_min_cols=2 routes every non-leaf
    # pair through the standalone sweep).
    python_kernel = PrefixDistanceKernel(query, cost, backend="python")
    expected = python_kernel.distances(doc)
    for vector_min_cols in (None, 2):
        kernel = PrefixDistanceKernel(
            query,
            cost,
            backend="numpy",
            numpy_min_doc=0,
            vector_min_cols=vector_min_cols,
        )
        assert kernel.distances(doc) == expected
    # And end to end: the streamed ranking (distances, roots, subtrees,
    # tie order) is identical under either backend.
    base = ranking_triples(
        tasm_postorder(
            query, PostorderQueue.from_tree(doc), k, cost, backend="python"
        )
    )
    assert ranking_triples(
        tasm_postorder(
            query, PostorderQueue.from_tree(doc), k, cost, backend="numpy"
        )
    ) == base


@given(
    doc=trees,
    specs=st.lists(
        st.tuples(small_trees, ks, cost_models), min_size=1, max_size=5
    ),
)
def test_coalesced_passes_equal_per_request_batches(doc, specs):
    # The serve-layer coalescer merges concurrent requests — each with
    # its own query, k, and cost model — into shared engine passes run
    # at the largest k of the chunk, then slices every ranking down to
    # the request's own k.  That slice must be *bit-equal* to a
    # per-request ``tasm_batch`` call (the top-k heap keeps the k
    # smallest under (distance, stream position) with k-independent
    # tie-breaking), for both the stream and the sharded engines.
    # max_batch=3 forces multi-pass chunking on larger draws.
    from repro.parallel import tasm_sharded_batch
    from repro.serve import (
        PendingQuery,
        RegisteredQuery,
        ScanCoalescer,
        cost_key,
    )

    entries = [
        PendingQuery(
            RegisteredQuery(f"q{i}", tree, 0, "python"),
            k,
            cost,
            cost_key(cost),
            ("doc", 1, tree.to_bracket(), k, cost_key(cost), i),
        )
        for i, (tree, k, cost) in enumerate(specs)
    ]
    coalescer = ScanCoalescer(window_ms=0.0, max_batch=3)

    def stream_rank(queries, k, cost, span):
        rankings = tasm_batch(
            [q.tree for q in queries], PostorderQueue.from_tree(doc), k, cost
        )
        return rankings, "stream", None

    def sharded_rank(queries, k, cost, span):
        rankings = tasm_sharded_batch(
            [q.tree for q in queries], doc, k, cost, workers=1
        )
        return rankings, "sharded", None

    for rank in (stream_rank, sharded_rank):
        rankings, passes = coalescer.run_passes(entries, rank)
        assert sum(size for size, _engine, _stats in passes) == len(entries)
        assert all(size <= 3 for size, _engine, _stats in passes)
        for entry in entries:
            sliced, _engine = rankings[id(entry)]
            direct = tasm_batch(
                [entry.query.tree],
                PostorderQueue.from_tree(doc),
                entry.k,
                entry.cost,
            )[0]
            assert ranking_triples(sliced) == ranking_triples(direct)
