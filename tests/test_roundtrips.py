"""Round-trips: bracket notation, XML (materialised and streamed)."""

import io

import pytest

from repro.errors import BracketSyntaxError, XmlFormatError
from repro.trees import Tree, random_tree, validate_tree
from repro.xmlio import (
    iterparse_postorder,
    tree_from_xml_file,
    tree_from_xml_string,
    write_xml,
    xml_from_tree,
)


def test_bracket_round_trip_random_trees():
    for seed in range(10):
        tree = random_tree(40, seed=seed)
        validate_tree(tree)
        again = Tree.from_bracket(tree.to_bracket())
        assert again.equals(tree)


def test_bracket_escapes_round_trip():
    tree = Tree.from_bracket(r"{a\{b\}{c\\d}}")
    assert tree.label(tree.root) == "a{b}"
    assert tree.label(1) == "c\\d"
    assert Tree.from_bracket(tree.to_bracket()).equals(tree)


@pytest.mark.parametrize(
    "text",
    ["", "a", "{a", "{a}}", "{a}{b}", "{a} trailing", "{a\\x}"],
)
def test_bracket_syntax_errors(text):
    with pytest.raises(BracketSyntaxError):
        Tree.from_bracket(text)


XML_DOC = (
    '<dblp><article key="x"><title>TASM</title><year>2010</year></article>'
    "<book><title>Trees</title></book></dblp>"
)


def test_xml_string_round_trip():
    tree = tree_from_xml_string(XML_DOC)
    validate_tree(tree)
    again = tree_from_xml_string(xml_from_tree(tree))
    assert again.equals(tree)


def test_streamed_xml_equals_materialised(tmp_path):
    path = str(tmp_path / "doc.xml")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(XML_DOC)
    materialised = tree_from_xml_string(XML_DOC)
    streamed_pairs = list(iterparse_postorder(path))
    assert streamed_pairs == list(materialised.postorder())
    assert tree_from_xml_file(path).equals(materialised)


def test_write_xml_round_trip(tmp_path):
    tree = random_tree(30, seed=2, labels=("a", "b", "c"))
    path = str(tmp_path / "out.xml")
    write_xml(tree, path)
    assert tree_from_xml_file(path).equals(tree)


def test_malformed_xml_raises():
    with pytest.raises(XmlFormatError):
        tree_from_xml_string("<a><b></a>")
    with pytest.raises(XmlFormatError):
        list(iterparse_postorder(io.StringIO("<a><b></a>")))
