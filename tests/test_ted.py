"""Tree edit distance: axioms, known distances, prefix array."""

import random

import pytest

from repro.distance import UnitCostModel, WeightedCostModel, prefix_distance, ted
from repro.trees import Tree, random_tree


def naive_ted(t1: Tree, t2: Tree) -> int:
    """Independent memoized forest edit distance (unit costs).

    Deliberately structured differently from the Zhang–Shasha kernel
    (rightmost-root recursion on pointer forests) so the two cannot
    share a bug.
    """
    n1, n2 = t1.to_node(), t2.to_node()
    memo = {}

    def d(f1, f2):
        key = (tuple(id(n) for n in f1), tuple(id(n) for n in f2))
        if key in memo:
            return memo[key]
        if not f1 and not f2:
            result = 0
        elif not f1:
            w = f2[-1]
            result = d(f1, f2[:-1] + tuple(w.children)) + 1
        elif not f2:
            v = f1[-1]
            result = d(f1[:-1] + tuple(v.children), f2) + 1
        else:
            v, w = f1[-1], f2[-1]
            result = min(
                d(f1[:-1] + tuple(v.children), f2) + 1,
                d(f1, f2[:-1] + tuple(w.children)) + 1,
                d(f1[:-1], f2[:-1])
                + d(tuple(v.children), tuple(w.children))
                + (0 if v.label == w.label else 1),
            )
        memo[key] = result
        return result

    return d((n1,), (n2,))


def test_zhang_shasha_paper_example():
    # The classic example from Zhang & Shasha (1989), Figure 4: the two
    # trees differ by moving c above d — edit distance 2.
    t1 = Tree.from_bracket("{f{d{a}{c{b}}}{e}}")
    t2 = Tree.from_bracket("{f{c{d{a}{b}}}{e}}")
    assert ted(t1, t2) == 2
    assert ted(t2, t1) == 2


@pytest.mark.parametrize(
    "b1, b2, expected",
    [
        ("{a}", "{a}", 0),
        ("{a}", "{b}", 1),
        ("{a}", "{a{b}}", 1),
        ("{a{b}{c}}", "{a{c}{b}}", 2),
        ("{a{b}{c}}", "{a{b}{c}{d}}", 1),
        ("{a{b{c}}}", "{a{c}}", 1),
        ("{a{b}{c}{d}}", "{e{f}}", 4),
    ],
)
def test_hand_computed_distances(b1, b2, expected):
    assert ted(Tree.from_bracket(b1), Tree.from_bracket(b2)) == expected


def test_identity_on_random_trees():
    for seed in range(10):
        t = random_tree(25, seed=seed)
        assert ted(t, t) == 0


def test_symmetry_with_symmetric_costs():
    rng = random.Random(11)
    for _ in range(15):
        t1 = random_tree(rng.randint(1, 20), seed=rng.randrange(10**6))
        t2 = random_tree(rng.randint(1, 20), seed=rng.randrange(10**6))
        assert ted(t1, t2) == ted(t2, t1)


def test_triangle_inequality_spot_checks():
    rng = random.Random(13)
    for _ in range(15):
        a, b, c = (
            random_tree(rng.randint(1, 15), seed=rng.randrange(10**6), labels="ab")
            for _ in range(3)
        )
        assert ted(a, c) <= ted(a, b) + ted(b, c)


def test_matches_naive_implementation():
    rng = random.Random(17)
    for _ in range(40):
        t1 = random_tree(rng.randint(1, 9), seed=rng.randrange(10**6), labels="ab")
        t2 = random_tree(rng.randint(1, 9), seed=rng.randrange(10**6), labels="ab")
        assert ted(t1, t2) == naive_ted(t1, t2)


def test_size_lower_bound():
    rng = random.Random(19)
    for _ in range(15):
        t1 = random_tree(rng.randint(1, 25), seed=rng.randrange(10**6))
        t2 = random_tree(rng.randint(1, 25), seed=rng.randrange(10**6))
        assert ted(t1, t2) >= abs(len(t1) - len(t2))


def test_weighted_cost_model():
    t1 = Tree.from_bracket("{a{b}}")
    t2 = Tree.from_bracket("{a{c}}")
    # One rename at cost 3 beats delete+insert at 2+2.
    assert ted(t1, t2, WeightedCostModel(3.0, 2.0, 2.0)) == 3.0
    # With rename at 5, delete+insert (2+2) wins.
    assert ted(t1, t2, WeightedCostModel(5.0, 2.0, 2.0)) == 4.0


def test_prefix_distance_equals_per_subtree_ted():
    cost = UnitCostModel()
    for seed in range(5):
        query = random_tree(5, seed=seed)
        doc = random_tree(30, seed=100 + seed)
        distances = prefix_distance(query, doc, cost)
        for j in doc.node_ids():
            assert distances[j] == ted(query, doc.subtree(j), cost)
