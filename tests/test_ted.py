"""Tree edit distance: axioms, known distances, prefix array, kernel."""

import random

import pytest

from repro.distance import (
    PrefixDistanceKernel,
    UnitCostModel,
    WeightedCostModel,
    prefix_distance,
    ted,
    ted_matrix,
)
from repro.trees import Tree, caterpillar, random_tree, star
from repro.xmlio.types import Text


def naive_ted(t1: Tree, t2: Tree) -> int:
    """Independent memoized forest edit distance (unit costs).

    Deliberately structured differently from the Zhang–Shasha kernel
    (rightmost-root recursion on pointer forests) so the two cannot
    share a bug.
    """
    n1, n2 = t1.to_node(), t2.to_node()
    memo = {}

    def d(f1, f2):
        key = (tuple(id(n) for n in f1), tuple(id(n) for n in f2))
        if key in memo:
            return memo[key]
        if not f1 and not f2:
            result = 0
        elif not f1:
            w = f2[-1]
            result = d(f1, f2[:-1] + tuple(w.children)) + 1
        elif not f2:
            v = f1[-1]
            result = d(f1[:-1] + tuple(v.children), f2) + 1
        else:
            v, w = f1[-1], f2[-1]
            result = min(
                d(f1[:-1] + tuple(v.children), f2) + 1,
                d(f1, f2[:-1] + tuple(w.children)) + 1,
                d(f1[:-1], f2[:-1])
                + d(tuple(v.children), tuple(w.children))
                + (0 if v.label == w.label else 1),
            )
        memo[key] = result
        return result

    return d((n1,), (n2,))


def test_zhang_shasha_paper_example():
    # The classic example from Zhang & Shasha (1989), Figure 4: the two
    # trees differ by moving c above d — edit distance 2.
    t1 = Tree.from_bracket("{f{d{a}{c{b}}}{e}}")
    t2 = Tree.from_bracket("{f{c{d{a}{b}}}{e}}")
    assert ted(t1, t2) == 2
    assert ted(t2, t1) == 2


@pytest.mark.parametrize(
    "b1, b2, expected",
    [
        ("{a}", "{a}", 0),
        ("{a}", "{b}", 1),
        ("{a}", "{a{b}}", 1),
        ("{a{b}{c}}", "{a{c}{b}}", 2),
        ("{a{b}{c}}", "{a{b}{c}{d}}", 1),
        ("{a{b{c}}}", "{a{c}}", 1),
        ("{a{b}{c}{d}}", "{e{f}}", 4),
    ],
)
def test_hand_computed_distances(b1, b2, expected):
    assert ted(Tree.from_bracket(b1), Tree.from_bracket(b2)) == expected


def test_identity_on_random_trees():
    for seed in range(10):
        t = random_tree(25, seed=seed)
        assert ted(t, t) == 0


def test_symmetry_with_symmetric_costs():
    rng = random.Random(11)
    for _ in range(15):
        t1 = random_tree(rng.randint(1, 20), seed=rng.randrange(10**6))
        t2 = random_tree(rng.randint(1, 20), seed=rng.randrange(10**6))
        assert ted(t1, t2) == ted(t2, t1)


def test_triangle_inequality_spot_checks():
    rng = random.Random(13)
    for _ in range(15):
        a, b, c = (
            random_tree(rng.randint(1, 15), seed=rng.randrange(10**6), labels="ab")
            for _ in range(3)
        )
        assert ted(a, c) <= ted(a, b) + ted(b, c)


def test_matches_naive_implementation():
    rng = random.Random(17)
    for _ in range(40):
        t1 = random_tree(rng.randint(1, 9), seed=rng.randrange(10**6), labels="ab")
        t2 = random_tree(rng.randint(1, 9), seed=rng.randrange(10**6), labels="ab")
        assert ted(t1, t2) == naive_ted(t1, t2)


def test_size_lower_bound():
    rng = random.Random(19)
    for _ in range(15):
        t1 = random_tree(rng.randint(1, 25), seed=rng.randrange(10**6))
        t2 = random_tree(rng.randint(1, 25), seed=rng.randrange(10**6))
        assert ted(t1, t2) >= abs(len(t1) - len(t2))


def test_weighted_cost_model():
    t1 = Tree.from_bracket("{a{b}}")
    t2 = Tree.from_bracket("{a{c}}")
    # One rename at cost 3 beats delete+insert at 2+2.
    assert ted(t1, t2, WeightedCostModel(3.0, 2.0, 2.0)) == 3.0
    # With rename at 5, delete+insert (2+2) wins.
    assert ted(t1, t2, WeightedCostModel(5.0, 2.0, 2.0)) == 4.0


def test_prefix_distance_equals_per_subtree_ted():
    cost = UnitCostModel()
    for seed in range(5):
        query = random_tree(5, seed=seed)
        doc = random_tree(30, seed=100 + seed)
        distances = prefix_distance(query, doc, cost)
        for j in doc.node_ids():
            assert distances[j] == ted(query, doc.subtree(j), cost)


def test_kernel_reuse_across_documents():
    # One kernel, many candidates of varying size — exactly the TASM
    # evaluation pattern.  Buffer reuse (including shrinking back to a
    # smaller document) must never leak state between calls.
    query = random_tree(6, seed=50)
    kernel = PrefixDistanceKernel(query)
    for n in (40, 7, 90, 1, 25, 90):
        doc = random_tree(n, seed=500 + n)
        assert kernel.distances(doc) == prefix_distance(query, doc)


def test_kernel_matrix_matches_ted_matrix():
    t1 = random_tree(8, seed=61)
    t2 = random_tree(14, seed=62)
    kernel = PrefixDistanceKernel(t1)
    assert kernel.matrix(t2) == ted_matrix(t1, t2)
    # matrix() returns copies: mutating one must not corrupt the next.
    m = kernel.matrix(t2)
    m[len(t1)][len(t2)] = -99.0
    assert kernel.matrix(t2)[len(t1)][len(t2)] != -99.0


def test_kernel_non_uniform_insert_costs():
    # A label-dependent cost model must fall off the uniform-insert
    # fast paths and still agree with a from-scratch computation.
    class PerLabelCost:
        min_indel = 1.0
        max_cost = 3.0

        def rename(self, a, b):
            return 0.0 if a == b else 2.0

        def delete(self, label):
            return 1.5 if label == "a" else 1.0

        def insert(self, label):
            return 3.0 if label == "b" else 1.0

    cost = PerLabelCost()
    rng = random.Random(71)
    query = random_tree(7, seed=70, labels="ab")
    kernel = PrefixDistanceKernel(query, cost)
    for _ in range(8):
        t2 = random_tree(rng.randint(1, 14), seed=rng.randrange(10**6), labels="ab")
        distances = kernel.distances(t2)
        for j in t2.node_ids():
            assert distances[j] == ted(query, t2.subtree(j), cost)


def test_kernel_uniformity_flip_mid_lifetime():
    # The uniform-insert specialisation must self-correct when a later
    # document introduces a label with a different insert cost.
    class FlipCost:
        min_indel = 1.0
        max_cost = 2.0

        def rename(self, a, b):
            return 0.0 if a == b else 1.0

        def delete(self, label):
            return 1.0

        def insert(self, label):
            return 2.0 if label == "z" else 1.0

    cost = FlipCost()
    query = Tree.from_bracket("{a{b}}")
    kernel = PrefixDistanceKernel(query, cost)
    plain = Tree.from_bracket("{a{c}}")
    assert kernel.distances(plain) == prefix_distance(query, plain, cost)
    flipper = Tree.from_bracket("{a{z}}")  # first non-uniform insert
    assert kernel.distances(flipper) == prefix_distance(query, flipper, cost)
    # And back to the earlier document with the generic path active.
    assert kernel.distances(plain) == prefix_distance(query, plain, cost)


def test_text_labels_compare_like_strings():
    # Interning must preserve Text("x") == "x" (the paper's flat label
    # alphabet): identical content, zero distance.
    t1 = Tree.from_postorder([(Text("x"), 1), ("a", 2)])
    t2 = Tree.from_postorder([("x", 1), ("a", 2)])
    assert ted(t1, t2) == 0


@pytest.mark.parametrize(
    "shape",
    [star(60), caterpillar(12, 4), random_tree(60, seed=9, max_fanout=2)],
    ids=["star", "caterpillar", "deep-random"],
)
def test_prefix_distance_shapes_against_subtree_ted(shape):
    query = random_tree(4, seed=90)
    distances = prefix_distance(query, shape)
    for j in list(shape.node_ids())[:25]:
        assert distances[j] == ted(query, shape.subtree(j))
