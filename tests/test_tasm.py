"""TASM: dynamic vs postorder equivalence and the memory bound.

The acceptance criterion of the engine: ``tasm_postorder`` returns the
same top-k distance multiset as ``tasm_dynamic`` on randomized
(query, document) pairs for each of the three postorder-queue backends,
and its buffered-node peak depends on ``k`` and ``|Q|`` only.
"""

import random

import pytest

from repro.distance import UnitCostModel, WeightedCostModel
from repro.errors import RankingError
from repro.postorder import IntervalStore, PostorderQueue
from repro.tasm import (
    PostorderStats,
    prune_threshold,
    tasm_dynamic,
    tasm_postorder,
)
from repro.trees import Tree, caterpillar, left_spine, random_tree, star
from repro.xmlio import write_xml

N_PAIRS = 50


def _random_pairs(base_seed):
    rng = random.Random(base_seed)
    for _ in range(N_PAIRS):
        doc = random_tree(rng.randint(1, 60), seed=rng.randrange(10**6))
        query = random_tree(rng.randint(1, 8), seed=rng.randrange(10**6))
        k = rng.choice([1, 2, 3, 5, 8])
        yield query, doc, k


def _queue_in_memory(doc, tmp_path, store):
    return PostorderQueue.from_tree(doc)


def _queue_xml_stream(doc, tmp_path, store):
    path = str(tmp_path / "doc.xml")
    write_xml(doc, path)
    return PostorderQueue.from_xml_file(path)


def _queue_interval_store(doc, tmp_path, store):
    doc_id = store.store_tree(f"doc-{len(store.documents())}", doc)
    return store.postorder_queue(doc_id)


@pytest.mark.parametrize(
    "make_queue",
    [_queue_in_memory, _queue_xml_stream, _queue_interval_store],
    ids=["in-memory", "streamed-xml", "interval-store"],
)
def test_postorder_equals_dynamic_on_random_pairs(make_queue, tmp_path):
    with IntervalStore() as store:
        for i, (query, doc, k) in enumerate(_random_pairs(base_seed=23)):
            queue = make_queue(doc, tmp_path, store)
            dynamic = tasm_dynamic(query, doc, k)
            stats = PostorderStats()
            postorder = tasm_postorder(query, queue, k, stats=stats)
            assert sorted(m.distance for m in dynamic) == sorted(
                m.distance for m in postorder
            ), f"pair {i}: |doc|={len(doc)} |Q|={len(query)} k={k}"
            assert stats.dequeued == len(doc)


def test_match_roots_agree_modulo_ties():
    # Beyond the distance multiset: the matched root sets agree when
    # distances are unique at the ranking boundary.
    query = Tree.from_bracket("{a{b}{c}}")
    doc = Tree.from_bracket("{x{a{b}{c}}{y{a{b}{d}}}{z}}")
    dynamic = tasm_dynamic(query, doc, 2)
    postorder = tasm_postorder(query, PostorderQueue.from_tree(doc), 2)
    assert [(m.distance, m.root) for m in dynamic] == [
        (m.distance, m.root) for m in postorder
    ]
    assert dynamic[0].distance == 0
    assert dynamic[0].root == 3  # postorder id of the exact match
    assert postorder[0].subtree.to_bracket() == "{a{b}{c}}"


def test_peak_buffer_independent_of_document_size():
    query = random_tree(5, seed=1)
    k = 4
    bound = prune_threshold(k, len(query), UnitCostModel()) + 1
    assert bound == k + 2 * len(query)  # paper: tau = k + 2|Q| - 1
    peaks = []
    for n in (100, 1000, 4000):
        doc = random_tree(n, seed=7)
        stats = PostorderStats()
        tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        assert stats.peak_buffered <= bound
        peaks.append(stats.peak_buffered)
    # The bound is flat: growing the document 40x must not grow memory.
    assert peaks[0] == peaks[1] == peaks[2]


@pytest.mark.parametrize(
    "doc",
    [star(300), caterpillar(40, 6), left_spine(200)],
    ids=["star", "caterpillar", "left-spine"],
)
def test_equivalence_on_degenerate_shapes(doc):
    query = random_tree(4, seed=3)
    for k in (1, 5):
        dynamic = sorted(m.distance for m in tasm_dynamic(query, doc, k))
        stats = PostorderStats()
        postorder = sorted(
            m.distance
            for m in tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        )
        assert dynamic == postorder
        assert stats.peak_buffered <= prune_threshold(k, len(query), UnitCostModel()) + 1


def test_weighted_cost_equivalence():
    cost = WeightedCostModel(rename_cost=2.0, delete_cost=1.0, insert_cost=3.0)
    rng = random.Random(31)
    for _ in range(10):
        doc = random_tree(rng.randint(1, 40), seed=rng.randrange(10**6))
        query = random_tree(rng.randint(1, 6), seed=rng.randrange(10**6))
        dynamic = sorted(m.distance for m in tasm_dynamic(query, doc, 3, cost))
        postorder = sorted(
            m.distance
            for m in tasm_postorder(query, PostorderQueue.from_tree(doc), 3, cost)
        )
        assert dynamic == postorder


def test_k_larger_than_document():
    query = Tree.from_bracket("{a}")
    doc = Tree.from_bracket("{a{b}{c}}")
    matches = tasm_postorder(query, doc, k=10)
    assert len(matches) == 3  # every subtree is returned
    # Best match renames one leaf; the full tree needs two deletions.
    assert [m.distance for m in matches] == [1, 1, 2]


def test_exact_match_always_ranks_first():
    doc = random_tree(80, seed=5)
    query = doc.subtree(17)
    matches = tasm_postorder(query, PostorderQueue.from_tree(doc), 3)
    assert matches[0].distance == 0


def test_queue_like_inputs():
    query = Tree.from_bracket("{a}")
    doc = Tree.from_bracket("{a{a}}")
    from_tree = tasm_postorder(query, doc, 2)
    from_pairs = tasm_postorder(query, list(doc.postorder()), 2)
    assert [m.distance for m in from_tree] == [m.distance for m in from_pairs]


def test_invalid_k_raises():
    query = Tree.from_bracket("{a}")
    with pytest.raises(RankingError):
        tasm_postorder(query, query, 0)
    with pytest.raises(RankingError):
        tasm_dynamic(query, query, -2)
