"""TASM: dynamic vs postorder equivalence and the memory bound.

Fixed-case regressions and degenerate shapes.  The randomized
equivalence checks that used to live here (50 fixed-seed pairs) are
now the Hypothesis differential suite in ``test_differential.py``,
which compares all four engines across every queue backend on
generated cases.
"""

import random

import pytest

from repro.distance import UnitCostModel, WeightedCostModel
from repro.errors import RankingError
from repro.postorder import PostorderQueue
from repro.tasm import (
    PostorderStats,
    prune_threshold,
    tasm_dynamic,
    tasm_postorder,
)
from repro.trees import Tree, caterpillar, left_spine, random_tree, star


def test_match_roots_agree_modulo_ties():
    # Beyond the distance multiset: the matched root sets agree when
    # distances are unique at the ranking boundary.
    query = Tree.from_bracket("{a{b}{c}}")
    doc = Tree.from_bracket("{x{a{b}{c}}{y{a{b}{d}}}{z}}")
    dynamic = tasm_dynamic(query, doc, 2)
    postorder = tasm_postorder(query, PostorderQueue.from_tree(doc), 2)
    assert [(m.distance, m.root) for m in dynamic] == [
        (m.distance, m.root) for m in postorder
    ]
    assert dynamic[0].distance == 0
    assert dynamic[0].root == 3  # postorder id of the exact match
    assert postorder[0].subtree.to_bracket() == "{a{b}{c}}"


def test_peak_buffer_independent_of_document_size():
    query = random_tree(5, seed=1)
    k = 4
    bound = prune_threshold(k, len(query), UnitCostModel()) + 1
    assert bound == k + 2 * len(query)  # paper: tau = k + 2|Q| - 1
    peaks = []
    for n in (100, 1000, 4000):
        doc = random_tree(n, seed=7)
        stats = PostorderStats()
        tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        assert stats.peak_buffered <= bound
        peaks.append(stats.peak_buffered)
    # The bound is flat: growing the document 40x must not grow memory.
    assert peaks[0] == peaks[1] == peaks[2]


@pytest.mark.parametrize(
    "doc",
    [star(300), caterpillar(40, 6), left_spine(200)],
    ids=["star", "caterpillar", "left-spine"],
)
def test_equivalence_on_degenerate_shapes(doc):
    query = random_tree(4, seed=3)
    for k in (1, 5):
        dynamic = sorted(m.distance for m in tasm_dynamic(query, doc, k))
        stats = PostorderStats()
        postorder = sorted(
            m.distance
            for m in tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        )
        assert dynamic == postorder
        assert stats.peak_buffered <= prune_threshold(k, len(query), UnitCostModel()) + 1


def test_weighted_cost_equivalence():
    cost = WeightedCostModel(rename_cost=2.0, delete_cost=1.0, insert_cost=3.0)
    rng = random.Random(31)
    for _ in range(10):
        doc = random_tree(rng.randint(1, 40), seed=rng.randrange(10**6))
        query = random_tree(rng.randint(1, 6), seed=rng.randrange(10**6))
        dynamic = sorted(m.distance for m in tasm_dynamic(query, doc, 3, cost))
        postorder = sorted(
            m.distance
            for m in tasm_postorder(query, PostorderQueue.from_tree(doc), 3, cost)
        )
        assert dynamic == postorder


def test_k_larger_than_document():
    query = Tree.from_bracket("{a}")
    doc = Tree.from_bracket("{a{b}{c}}")
    matches = tasm_postorder(query, doc, k=10)
    assert len(matches) == 3  # every subtree is returned
    # Best match renames one leaf; the full tree needs two deletions.
    assert [m.distance for m in matches] == [1, 1, 2]


def test_exact_match_always_ranks_first():
    doc = random_tree(80, seed=5)
    query = doc.subtree(17)
    matches = tasm_postorder(query, PostorderQueue.from_tree(doc), 3)
    assert matches[0].distance == 0


def test_queue_like_inputs():
    query = Tree.from_bracket("{a}")
    doc = Tree.from_bracket("{a{a}}")
    from_tree = tasm_postorder(query, doc, 2)
    from_pairs = tasm_postorder(query, list(doc.postorder()), 2)
    assert [m.distance for m in from_tree] == [m.distance for m in from_pairs]


def test_invalid_k_raises():
    query = Tree.from_bracket("{a}")
    with pytest.raises(RankingError):
        tasm_postorder(query, query, 0)
    with pytest.raises(RankingError):
        tasm_dynamic(query, query, -2)


def test_dynamic_threshold_is_strict():
    # Regression for the off-by-one: a subtree of size exactly
    # |Q| + max_distance / min_indel has lower bound >= max_distance
    # and can never evict the incumbent (ties keep it), so it must be
    # pruned, not evaluated.
    query = Tree.from_bracket("{q}")
    doc = Tree.from_bracket("{root{q}{a}}")  # postorder: q(1), a(2), root(3)
    stats = PostorderStats()
    matches = tasm_postorder(query, PostorderQueue.from_tree(doc), 1, stats=stats)
    # root (size 3) trips the static threshold and retires the buffer;
    # {q} is evaluated, filling the heap at distance 0.  The strict
    # dynamic bound is then |Q| + ceil(0/1) - 1 = 0, so {a} (size 1)
    # must be pruned unevaluated — the non-strict bound would have
    # evaluated it as a second candidate.
    assert [m.distance for m in matches] == [0]
    assert matches[0].root == 1
    assert stats.candidates_evaluated == 1
    assert stats.subtrees_scored == 1
    assert stats.pruned_buffered == 1
    # The ranking is identical to the dynamic baseline.
    dyn = tasm_dynamic(query, doc, 1)
    assert [(m.distance, m.root) for m in matches] == [
        (m.distance, m.root) for m in dyn
    ]


def test_dynamic_threshold_prunes_exact_boundary_size():
    # After a distance-0 match of the 2-node query, the strict bound is
    # |Q| + ceil(0) - 1 = 1: the still-buffered 2-node subtree {a{c}}
    # sits exactly on the old (non-strict) bound and must now be pruned
    # from the buffer unevaluated, while the root is an oversized
    # arrival.  The non-strict bound would have evaluated {a{c}}.
    query = Tree.from_bracket("{a{b}}")
    doc = Tree.from_bracket("{r{a{b}}{a{c}}}")
    stats = PostorderStats()
    matches = tasm_postorder(query, PostorderQueue.from_tree(doc), 1, stats=stats)
    assert [m.distance for m in matches] == [0]
    dyn = tasm_dynamic(query, doc, 1)
    assert sorted(m.distance for m in dyn) == [0]
    assert stats.pruned_large == 1  # the document root
    assert stats.pruned_buffered == 1  # {a{c}}'s root, size == old bound
    assert stats.subtrees_scored + stats.pruned_large + stats.pruned_buffered == len(doc)


def test_ring_capacity_is_paper_bound():
    # The ring holds at most tau = k + 2|Q| - 1 entries (unit costs):
    # any later node covering the buffer head would root a subtree
    # larger than every threshold.
    query = random_tree(5, seed=1)
    k = 4
    tau = k + 2 * len(query) - 1
    for n in (50, 400, 2000):
        stats = PostorderStats()
        doc = random_tree(n, seed=n)
        tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        assert stats.ring_capacity == tau
        assert stats.peak_buffered <= tau


def test_label_table_cost_model_survives_batched_retirement():
    # Regression: batched retirements graft candidates under a virtual
    # root; its label must never reach the user's cost model, which may
    # only know the real vocabulary (dict lookups below).
    class TableCost:
        min_indel = 1.0
        max_cost = 2.0
        _ins = {"r": 1.0, "a": 2.0, "b": 1.0, "c": 1.5}

        def rename(self, a, b):
            return 0.0 if a == b else min(self._ins[a], self._ins[b])

        def delete(self, label):
            return self._ins[label]

        def insert(self, label):
            return self._ins[label]

    cost = TableCost()
    query = Tree.from_bracket("{a{b}}")
    doc = Tree.from_bracket("{r{a{b}}{a{c}}{b}{c{a}}}")
    post = tasm_postorder(query, PostorderQueue.from_tree(doc), 2, cost)
    dyn = tasm_dynamic(query, doc, 2, cost)
    assert sorted(m.distance for m in post) == sorted(m.distance for m in dyn)


def test_peak_never_exceeds_ring_capacity_property():
    # Streaming invariant over randomized documents, queries, and k.
    rng = random.Random(77)
    for _ in range(25):
        doc = random_tree(rng.randint(1, 120), seed=rng.randrange(10**6))
        query = random_tree(rng.randint(1, 9), seed=rng.randrange(10**6))
        k = rng.choice([1, 2, 4, 7])
        stats = PostorderStats()
        tasm_postorder(query, PostorderQueue.from_tree(doc), k, stats=stats)
        assert stats.peak_buffered <= stats.ring_capacity
        assert stats.dequeued == len(doc)
        assert (
            stats.subtrees_scored + stats.pruned_large + stats.pruned_buffered
            == len(doc)
        )
