"""PostorderQueue: empty/dequeue interleaving and counter bookkeeping."""

import pytest

from repro.errors import PostorderQueueError
from repro.postorder import PostorderQueue
from repro.trees import Tree, random_tree


def test_dequeue_returns_pairs_in_postorder():
    tree = Tree.from_bracket("{a{b}{c}}")
    queue = PostorderQueue.from_tree(tree)
    assert queue.dequeue() == ("b", 1)
    assert queue.dequeue() == ("c", 1)
    assert queue.dequeue() == ("a", 3)


def test_empty_peek_does_not_lose_pairs():
    queue = PostorderQueue.from_pairs([("a", 1), ("b", 2)])
    # Repeated empty-checks buffer at most one pair and never drop any.
    assert not queue.empty
    assert not queue.empty
    assert queue.dequeue() == ("a", 1)
    assert queue.dequeued == 1
    assert not queue.empty
    assert queue.dequeue() == ("b", 2)
    assert queue.empty
    assert queue.empty  # stable after exhaustion
    assert queue.dequeued == 2


def test_dequeue_after_exhaustion_raises_and_state_stays_consistent():
    queue = PostorderQueue.from_pairs([("a", 1)])
    assert queue.dequeue() == ("a", 1)
    with pytest.raises(PostorderQueueError):
        queue.dequeue()
    # A failed dequeue neither counts nor un-exhausts the queue.
    assert queue.dequeued == 1
    assert queue.empty
    with pytest.raises(PostorderQueueError):
        queue.dequeue()
    assert queue.dequeued == 1


def test_dequeue_without_empty_check_first():
    # dequeue must work even when `empty` was never consulted.
    queue = PostorderQueue.from_pairs(iter([("x", 1)]))
    assert queue.dequeue() == ("x", 1)
    with pytest.raises(PostorderQueueError):
        queue.dequeue()


def test_iteration_drains_and_counts():
    tree = random_tree(20, seed=4)
    queue = PostorderQueue.from_tree(tree)
    pairs = list(queue)
    assert pairs == list(tree.postorder())
    assert queue.dequeued == 20
    assert queue.empty


def test_to_tree_round_trip():
    for seed in range(5):
        tree = random_tree(30, seed=seed)
        assert PostorderQueue.from_tree(tree).to_tree().equals(tree)


@pytest.mark.parametrize(
    "pairs",
    [
        [],  # empty queue
        [("a", 2)],  # size exceeds nodes seen
        [("a", 0)],  # size < 1
        [("a", 1), ("b", 1)],  # forest, no common root
        [("a", 1), ("b", 1), ("c", 2), ("d", 2)],  # d's size splits subtree c
    ],
)
def test_malformed_queues_rejected(pairs):
    with pytest.raises(PostorderQueueError):
        PostorderQueue.from_pairs(pairs).to_tree()
