"""IntervalStore: Dietz-numbering properties and SQL round-trips."""

import pytest

from repro.errors import PostorderQueueError
from repro.postorder import IntervalStore
from repro.trees import (
    Tree,
    caterpillar,
    left_spine,
    random_forest_tree,
    random_tree,
    star,
)


def dfs_dietz(tree: Tree):
    """Reference numbering by literally walking the tag-event sequence."""
    root = tree.to_node()
    counter = 0
    starts, ends, order = {}, {}, []
    stack = [(root, False)]
    while stack:
        node, closed = stack.pop()
        counter += 1
        if closed:
            ends[id(node)] = counter
            order.append(node)
        else:
            starts[id(node)] = counter
            stack.append((node, True))
            for child in reversed(node.children):
                stack.append((child, False))
    return [(starts[id(n)], ends[id(n)]) for n in order]


SHAPES = [
    Tree.from_bracket("{a}"),
    left_spine(15),
    star(15),
    caterpillar(4, 3),
    *(random_tree(n, seed=n) for n in (2, 7, 25, 60)),
    *(random_forest_tree(n, seed=n) for n in (10, 40)),
]


@pytest.mark.parametrize("tree", SHAPES, ids=range(len(SHAPES)))
def test_interval_rows_match_direct_dfs_numbering(tree):
    rows = list(IntervalStore._interval_rows(tree))
    assert [(s, e) for s, e, _ in rows] == dfs_dietz(tree)


@pytest.mark.parametrize("seed", range(10))
def test_interval_properties(seed):
    tree = random_tree(50, seed=seed)
    rows = list(IntervalStore._interval_rows(tree))
    intervals = [(s, e) for s, e, _ in rows]
    n = len(tree)
    # All 2n event positions are used exactly once.
    assert sorted(p for se in intervals for p in se) == list(range(1, 2 * n + 1))
    for i in range(1, n + 1):
        start, end = intervals[i - 1]
        # size is recoverable from the interval.
        assert tree.size(i) == (end - start + 1) // 2
        # ancestorship == interval containment.
        ancestors = set(tree.ancestors(i))
        for j in range(1, n + 1):
            if j == i:
                continue
            s2, e2 = intervals[j - 1]
            assert (s2 < start and end < e2) == (j in ancestors)


def test_store_round_trip_and_postorder_scan():
    with IntervalStore() as store:
        for seed in range(5):
            tree = random_tree(35, seed=seed)
            doc_id = store.store_tree(f"doc{seed}", tree)
            assert store.load_tree(doc_id).equals(tree)
            assert list(store.postorder_pairs(doc_id)) == list(tree.postorder())


def test_subtree_of_by_end_position():
    tree = Tree.from_bracket("{a{b{c}}{d}}")
    with IntervalStore() as store:
        doc_id = store.store_tree("t", tree)
        # Root closes at event 2n (depth 0 ⇒ end = 2n).
        assert store.subtree_of(doc_id, 2 * len(tree)).equals(tree)
        # Interior subtree {b{c}}: postorder id 2, depth 1 ⇒ end = 5.
        inner = store.subtree_of(doc_id, 5)
        assert inner is not None and inner.to_bracket() == "{b{c}}"
        assert store.subtree_of(doc_id, 9999) is None


def test_documents_listing_and_missing_name():
    with IntervalStore() as store:
        tree = random_tree(5, seed=0)
        store.store_tree("one", tree)
        docs = store.documents()
        assert [(name, n) for _, name, n in docs] == [("one", 5)]
        assert store.doc_id("one") == docs[0][0]
        with pytest.raises(PostorderQueueError):
            store.doc_id("missing")


def test_postorder_range_matches_full_scan_slices():
    tree = random_tree(60, seed=17)
    with IntervalStore() as store:
        doc_id = store.store_tree("t", tree)
        full = list(store.postorder_pairs(doc_id))
        n = len(tree)
        for start, end in ((1, n), (1, 1), (n, n), (5, 23), (30, n)):
            assert (
                list(store.postorder_range(doc_id, start, end))
                == full[start - 1 : end]
            )
        # Contiguous ranges tile the full scan.
        assert (
            list(store.postorder_range(doc_id, 1, 20))
            + list(store.postorder_range(doc_id, 21, 40))
            + list(store.postorder_range(doc_id, 41, n))
            == full
        )
        with pytest.raises(PostorderQueueError):
            list(store.postorder_range(doc_id, 0, 5))
        with pytest.raises(PostorderQueueError):
            list(store.postorder_range(doc_id, 8, 7))


def test_n_nodes_and_readonly_open(tmp_path):
    path = str(tmp_path / "docs.db")
    tree = random_tree(25, seed=4)
    with IntervalStore(path) as store:
        doc_id = store.store_tree("t", tree)
        assert store.n_nodes(doc_id) == 25
        with pytest.raises(PostorderQueueError):
            store.n_nodes(doc_id + 99)
    # Read-only connections see the data but cannot write.
    import sqlite3

    with IntervalStore.open_readonly(path) as reader:
        assert reader.n_nodes(doc_id) == 25
        assert list(reader.postorder_pairs(doc_id)) == [
            (str(label), size) for label, size in tree.postorder()
        ]
        with pytest.raises(sqlite3.OperationalError):
            reader.store_tree("nope", tree)
