"""The observability layer: spans, Prometheus exposition, engine telemetry.

Covers the :mod:`repro.obs` primitives in isolation, their threading
through the streaming engine (stage seconds, the static/dynamic prune
split, ring-occupancy sampling, kernel counters), span propagation
across the multiprocessing shard boundary, and the thread-safety of
:class:`~repro.serve.metrics.ServeMetrics` under concurrent observers.
"""

import io
import json
import math
import threading

import pytest

from repro.obs import (
    MAX_CHILDREN,
    NULL_SPAN,
    MetricFamily,
    NullSpan,
    Span,
    Tracer,
    format_value,
    histogram_family,
    jsonlog,
    new_request_id,
    parse_prometheus,
    render_families,
    render_span_tree,
)
from repro.parallel import ShardedStats, tasm_sharded_batch
from repro.serve import ServeMetrics
from repro.tasm import PostorderStats, tasm_postorder
from repro.tasm.postorder import RING_OCCUPANCY_BUCKETS
from repro.trees import Tree, random_tree

QUERY = Tree.from_bracket("{a{b}{c}}")


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_nesting_and_serialization():
    root = Span("request", {"request_id": "r-1"})
    child = root.child("rank", engine="stream")
    grandchild = child.child("candidate_eval")
    grandchild.finish()
    child.finish()
    root.finish()
    assert root.seconds >= child.seconds >= grandchild.seconds >= 0.0

    payload = root.to_dict()
    assert payload["name"] == "request"
    assert payload["attrs"] == {"request_id": "r-1"}
    rank = payload["children"][0]
    assert rank["name"] == "rank" and rank["attrs"] == {"engine": "stream"}
    assert rank["children"][0]["name"] == "candidate_eval"
    # Round-trips through JSON (what the slow-request log emits).
    assert json.loads(json.dumps(payload)) == payload


def test_span_finish_is_idempotent():
    span = Span("once")
    span.finish()
    first = span.seconds
    span.finish()
    assert span.seconds == first


def test_span_child_cap_counts_drops():
    span = Span("busy")
    children = [span.child("c") for _ in range(MAX_CHILDREN + 5)]
    assert len(span.children) == MAX_CHILDREN
    # Past the cap the span hands out the null span and counts drops.
    assert all(not c for c in children[MAX_CHILDREN:])
    assert span.attrs["dropped_children"] == 5


def test_null_span_is_falsy_and_inert():
    assert not NULL_SPAN
    assert isinstance(NULL_SPAN, NullSpan)
    child = NULL_SPAN.child("anything", k=1)
    assert child is NULL_SPAN
    NULL_SPAN.finish()  # no-op, no error
    assert NULL_SPAN.to_dict() == {"name": "<null>", "seconds": 0.0}
    assert NULL_SPAN.attrs == {} and NULL_SPAN.children == []
    span = Span("real")
    assert span and not isinstance(span, NullSpan)


def test_span_graft_attaches_serialized_subtree():
    worker = Span("shard", {"index": 0})
    worker.child("candidate_eval").finish()
    worker.finish()
    parent = Span("dispatch")
    parent.graft(worker.to_dict())
    parent.finish()
    grafted = parent.children[0]
    assert grafted.name == "shard" and grafted.attrs == {"index": 0}
    assert grafted.seconds == worker.to_dict()["seconds"]
    assert grafted.children[0].name == "candidate_eval"


def test_tracer_enabled_and_disabled():
    assert isinstance(Tracer(enabled=True).span("x"), Span)
    assert Tracer(enabled=False).span("x") is NULL_SPAN


def test_new_request_id_unique_and_short():
    ids = {new_request_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(0 < len(i) < 64 and "\n" not in i for i in ids)


def test_render_span_tree_lines():
    root = Span("request", {"id": "r"})
    root.child("rank").finish()
    root.finish()
    lines = render_span_tree(root)
    assert lines[0].startswith("request") and "id=r" in lines[0]
    assert lines[1].lstrip().startswith("rank")
    assert len(lines) == 2


# ----------------------------------------------------------------------
# Structured logs
# ----------------------------------------------------------------------
def test_jsonlog_emits_one_sorted_json_line():
    stream = io.StringIO()
    line = jsonlog("slow_request", stream=stream, route="GET /x", seconds=1.5)
    parsed = json.loads(stream.getvalue())
    assert parsed == json.loads(line)
    assert parsed["event"] == "slow_request"
    assert parsed["route"] == "GET /x" and parsed["seconds"] == 1.5
    assert parsed["ts"] > 0
    assert stream.getvalue().count("\n") == 1


def test_jsonlog_survives_unserializable_values():
    stream = io.StringIO()
    jsonlog("odd", stream=stream, obj=object())
    assert "object" in json.loads(stream.getvalue())["obj"]


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_format_value_edge_cases():
    assert format_value(3) == "3"
    assert format_value(3.0) == "3"
    assert format_value(0.25) == "0.25"
    assert format_value(math.inf) == "+Inf"
    assert format_value(-math.inf) == "-Inf"
    assert format_value(None) == "NaN"


def test_render_parse_round_trip():
    counter = MetricFamily("jobs_total", "counter", "Jobs by kind")
    counter.add(3, {"kind": "a"}).add(0, {"kind": "b"})
    gauge = MetricFamily("temperature", "gauge").add(21.5)
    hist = histogram_family(
        "latency_seconds", [(0.1, 2), (1.0, 5)], 1.75, labels={"route": "/x"}
    )
    text = render_families([counter, gauge, hist])
    assert text.endswith("\n")
    parsed = parse_prometheus(text)
    assert parsed["jobs_total"]["type"] == "counter"
    assert parsed["jobs_total"]["samples"]['jobs_total{kind="a"}'] == 3
    assert parsed["temperature"]["samples"]["temperature"] == 21.5
    samples = parsed["latency_seconds"]["samples"]
    assert samples['latency_seconds_bucket{le="+Inf",route="/x"}'] == 5
    assert samples['latency_seconds_sum{route="/x"}'] == 1.75


def test_parse_allows_braces_inside_label_values():
    text = (
        "# TYPE requests_total counter\n"
        'requests_total{route="PUT /v1/queries/{name}"} 4\n'
    )
    samples = parse_prometheus(text)["requests_total"]["samples"]
    assert samples['requests_total{route="PUT /v1/queries/{name}"}'] == 4


@pytest.mark.parametrize(
    "text",
    [
        "not a metric line\n",
        "# TYPE broken unknown_kind\n",
        "orphan_sample 1\n",  # sample before any TYPE
        "# TYPE a counter\n# TYPE a counter\n",  # duplicate TYPE
        '# TYPE a counter\na{bad-label="x"} 1\n',
        "# TYPE a counter\n# TYPE b counter\na 1\n",  # outside its block
        "# TYPE a counter\na 1\na 2\n",  # duplicate sample
        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",  # no _sum
    ],
)
def test_parse_rejects_malformed_expositions(text):
    with pytest.raises(ValueError):
        parse_prometheus(text)


def test_histogram_family_validates_buckets():
    with pytest.raises(ValueError):
        histogram_family("h", [(1.0, 2), (0.5, 3)], 1.0)  # bounds not rising
    with pytest.raises(ValueError):
        histogram_family("h", [(0.5, 3), (1.0, 2)], 1.0)  # counts shrink


# ----------------------------------------------------------------------
# Engine telemetry
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def streamed():
    document = random_tree(800, seed=9, labels="abcde", max_fanout=5)
    stats = PostorderStats()
    span = Span("tasm")
    ranking = tasm_postorder(QUERY, document, 4, stats=stats, span=span)
    span.finish()
    return document, stats, span, ranking


def test_prune_split_partitions_the_pruned_population(streamed):
    document, stats, _, _ = streamed
    # Every dequeued node is scored or pruned (the pre-existing
    # invariant), and the new static/dynamic split partitions the
    # pruned population exactly.
    assert (
        stats.subtrees_scored + stats.pruned_large + stats.pruned_buffered
        == stats.dequeued
        == len(document)
    )
    assert (
        stats.pruned_static + stats.pruned_dynamic
        == stats.pruned_large + stats.pruned_buffered
    )


def test_stage_seconds_decompose(streamed):
    _, stats, _, _ = streamed
    assert stats.total_seconds > 0
    assert 0 <= stats.kernel_seconds <= stats.candidate_eval_seconds
    assert stats.candidate_eval_seconds <= stats.total_seconds
    assert stats.scan_seconds == pytest.approx(
        stats.total_seconds - stats.candidate_eval_seconds
    )
    payload = stats.payload()
    assert set(payload["stage_seconds"]) == {
        "total", "scan", "candidate_eval", "kernel",
    }


def test_ring_occupancy_samples_every_flush(streamed):
    _, stats, _, _ = streamed
    assert len(stats.ring_occupancy) == RING_OCCUPANCY_BUCKETS
    # One histogram observation per flush event, of either kind.
    assert (
        sum(stats.ring_occupancy)
        == stats.head_flushes + stats.wholesale_flushes
    )
    assert sum(stats.ring_occupancy) > 0


def test_kernel_counters_attributed(streamed):
    _, stats, _, _ = streamed
    # One kernel invocation per (evaluation batch, query); batches may
    # retire several candidate subtrees at once, so invocations can
    # only be fewer than candidates.
    assert 0 < stats.kernel_invocations <= stats.candidates_evaluated
    assert stats.kernel_rows > 0
    assert stats.kernel_invocations_numpy <= stats.kernel_invocations
    assert stats.kernel_rows_numpy <= stats.kernel_rows


def test_span_tree_covers_candidate_evaluation(streamed):
    _, stats, span, _ = streamed
    assert span.attrs["queries"] == 1 and span.attrs["k"] == 4
    assert span.attrs["ring_capacity"] == stats.ring_capacity
    names = {child.name for child in span.children}
    assert names == {"candidate_eval"}
    # One candidate_eval child per evaluation batch — with one query,
    # that is exactly one per kernel invocation (the cap converts the
    # overflow into dropped_children rather than losing count).
    dropped = span.attrs.get("dropped_children", 0)
    assert len(span.children) + dropped == stats.kernel_invocations


def test_instrumented_ranking_identical_to_bare(streamed):
    document, _, _, ranking = streamed
    bare = tasm_postorder(QUERY, document, 4)
    assert [
        (m.distance, m.root) for m in bare
    ] == [(m.distance, m.root) for m in ranking]
    # The null recorder takes the same path as span=None.
    nulled = tasm_postorder(QUERY, document, 4, span=NULL_SPAN)
    assert [
        (m.distance, m.root) for m in nulled
    ] == [(m.distance, m.root) for m in ranking]


def test_span_propagates_across_shard_processes():
    document = random_tree(900, seed=10, labels="abcd", max_fanout=4)
    pairs = list(document.postorder())
    stats = ShardedStats()
    span = Span("sharded")
    rankings = tasm_sharded_batch(
        [QUERY], pairs, 3, workers=2, stats=stats, span=span
    )
    span.finish()
    by_name = {child.name: child for child in span.children}
    assert set(by_name) == {"shard_plan", "shard_dispatch", "merge"}
    shards = [
        c for c in by_name["shard_dispatch"].children if c.name == "shard"
    ]
    # One grafted worker span per shard, each with its own index and
    # its own candidate_eval children recorded in the worker process.
    assert len(shards) == stats.n_shards > 1
    assert sorted(s.attrs["index"] for s in shards) == list(
        range(len(shards))
    )
    assert all(
        any(c.name == "candidate_eval" for c in s.children) for s in shards
    )
    # The sharded run with full instrumentation still ranks identically.
    bare = tasm_sharded_batch([QUERY], pairs, 3, workers=2)
    assert [
        (m.distance, m.root) for m in rankings[0]
    ] == [(m.distance, m.root) for m in bare[0]]


def test_sharded_stats_aggregate_and_payload():
    document = random_tree(700, seed=11, labels="abc", max_fanout=4)
    stats = ShardedStats()
    tasm_sharded_batch([QUERY], list(document.postorder()), 3,
                       workers=2, stats=stats)
    per_shard = stats.shard_stats
    assert len(per_shard) == stats.n_shards
    for field in (
        "pruned_static", "pruned_dynamic", "head_flushes",
        "wholesale_flushes", "kernel_invocations", "kernel_rows",
    ):
        assert getattr(stats, field) == sum(
            getattr(s, field) for s in per_shard
        )
    assert stats.ring_occupancy == [
        sum(s.ring_occupancy[i] for s in per_shard)
        for i in range(RING_OCCUPANCY_BUCKETS)
    ]
    payload = stats.payload()
    assert payload["sharded"]["n_shards"] == stats.n_shards
    assert payload["sharded"]["plan_seconds"] >= 0
    assert len(payload["sharded"]["shard_cpu_seconds"]) == stats.n_shards
    # Key-compatible with the single-pass payload.
    single = PostorderStats().payload()
    assert set(single).issubset(set(payload))


# ----------------------------------------------------------------------
# ServeMetrics under concurrency
# ----------------------------------------------------------------------
def test_serve_metrics_observe_is_thread_safe():
    metrics = ServeMetrics()
    threads, per_thread = 8, 200
    stats_payload = PostorderStats().payload()
    stats_payload["dequeued"] = 10
    stats_payload["ring_occupancy"] = [1] + [0] * (
        RING_OCCUPANCY_BUCKETS - 1
    )
    stats_payload["stage_seconds"] = {
        "total": 0.004, "scan": 0.003, "candidate_eval": 0.001,
        "kernel": 0.0005,
    }

    def hammer():
        for i in range(per_thread):
            metrics.observe(
                "POST /v1/tasm",
                500 if i % 50 == 0 else (404 if i % 10 == 0 else 200),
                0.002,
                engine="stream",
                ring_peak=7,
                ring_capacity=10,
                stats=stats_payload,
            )

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()

    total = threads * per_thread
    snapshot = metrics.payload()
    assert snapshot["requests_total"] == total
    # 4 of every 200 are 5xx, 16 more are 4xx-only (i % 10 with the
    # %50 overlap removed).
    assert snapshot["errors_5xx"] == threads * 4
    assert snapshot["errors_4xx"] == threads * 16
    assert snapshot["errors_total"] == threads * 20
    assert snapshot["engine_totals"]["dequeued"] == total * 10
    assert snapshot["ring_occupancy"][0] == total
    assert snapshot["stage_seconds"]["total"] == pytest.approx(total * 0.004)
    prom = parse_prometheus(metrics.prometheus())
    samples = prom["repro_request_seconds"]["samples"]
    route = 'le="+Inf",route="POST /v1/tasm"'
    assert samples[f"repro_request_seconds_bucket{{{route}}}"] == total
    assert (
        prom["repro_engine_events_total"]["samples"][
            'repro_engine_events_total{counter="dequeued"}'
        ]
        == total * 10
    )


def test_serve_metrics_process_fields_and_empty_prometheus():
    metrics = ServeMetrics(kernel_backend="numpy")
    payload = metrics.payload()
    assert payload["started_at"] > 0
    assert payload["uptime_seconds"] >= 0
    assert payload["version"]
    # No traffic yet: exposition still parses (histogram family is
    # omitted rather than rendered incomplete).
    prom = parse_prometheus(metrics.prometheus())
    assert "repro_request_seconds" not in prom
    build = prom["repro_build_info"]["samples"]
    key = next(iter(build))
    assert 'kernel_backend="numpy"' in key
    assert prom["repro_uptime_seconds"]["samples"]["repro_uptime_seconds"] >= 0
