"""Sharded parallel TASM: planner safety, pool execution, merging.

The contract under test: for any shard count and worker count, the
sharded ranking is byte-identical — distances, roots, subtrees, tie
order — to the single-pass ``tasm_postorder`` ranking, and every
worker honours the paper's ring-peak bound.
"""

import os
import random

import pytest

from conftest import ranking_triples
from repro.distance import UnitCostModel, WeightedCostModel
from repro.errors import RankingError, ReproError
from repro.parallel import (
    ShardedStats,
    StoreDocument,
    XmlDocument,
    iter_safe_cuts,
    plan_shards,
    tasm_sharded,
    tasm_sharded_batch,
)
from repro.postorder import IntervalStore, PostorderQueue
from repro.tasm import prune_threshold, tasm_batch, tasm_postorder
from repro.trees import Tree, caterpillar, left_spine, random_tree, star


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------
def test_safe_cuts_match_ancestor_definition():
    # A cut after position p is safe iff every proper ancestor of node
    # p has subtree size > tau — brute-forced against the tree.
    rng = random.Random(11)
    for _ in range(40):
        doc = random_tree(rng.randint(2, 80), seed=rng.randrange(10**6))
        tau = rng.randint(1, 15)
        cuts = set(iter_safe_cuts(doc.postorder(), tau))
        for p in range(1, len(doc)):
            expected = all(doc.size(a) > tau for a in doc.ancestors(p))
            assert (p in cuts) == expected, (p, tau)


def test_safe_cuts_on_record_sequence():
    # A flat record sequence (the DBLP shape): every boundary between
    # whole records is safe once tau is below the root size.
    doc = caterpillar(1, 5)  # root with 5 leaves, n = 6
    assert list(iter_safe_cuts(doc.postorder(), tau=3)) == [1, 2, 3, 4, 5]
    # tau >= n: the root spans everything, no safe cut exists.
    assert list(iter_safe_cuts(doc.postorder(), tau=6)) == []


def test_plan_partitions_the_stream():
    rng = random.Random(7)
    for _ in range(30):
        doc = random_tree(rng.randint(1, 150), seed=rng.randrange(10**6))
        tau = rng.randint(1, 12)
        shards = rng.randint(1, 6)
        plan = plan_shards(doc.postorder(), len(doc), tau, shards)
        assert 1 <= len(plan.shards) <= shards
        covered = [
            p for shard in plan.shards for p in range(shard.start, shard.end + 1)
        ]
        assert covered == list(range(1, len(doc) + 1))
        safe = set(iter_safe_cuts(doc.postorder(), tau))
        assert all(cut in safe for cut in plan.cuts)
        # Greedy spec: each selected cut is the FIRST safe cut at or
        # past a target not covered by the previous cut — no degenerate
        # backfill slivers.
        targets = [(w * len(doc)) // shards for w in range(1, shards)]
        targets = [t for t in targets if 1 <= t < len(doc)]
        prev = 0
        for cut in plan.cuts:
            served = [t for t in targets if prev < t <= cut]
            assert served, (plan.cuts, targets)
            assert not any(prev < c < cut for c in safe if c >= served[0])
            prev = cut


def test_plan_single_subtree_document_yields_one_shard():
    doc = left_spine(40)  # every proper ancestor chain has growing sizes
    plan = plan_shards(doc.postorder(), len(doc), tau=5, shards=4)
    # Cutting a spine at p is safe iff all ancestors are > tau, i.e.
    # only in the first n - tau positions; the planner still partitions.
    covered = [p for s in plan.shards for p in range(s.start, s.end + 1)]
    assert covered == list(range(1, 41))


def test_plan_rejects_bad_arguments():
    doc = star(5)
    with pytest.raises(RankingError):
        plan_shards(doc.postorder(), len(doc), tau=0, shards=2)
    with pytest.raises(RankingError):
        plan_shards(doc.postorder(), len(doc), tau=3, shards=0)
    with pytest.raises(RankingError):
        plan_shards(doc.postorder(), 0, tau=3, shards=2)


# ----------------------------------------------------------------------
# Sharded execution — inline and on the process pool
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4], ids=["inline", "pool-2", "pool-4"])
def test_sharded_identical_to_single_pass(workers):
    doc = random_tree(800, seed=3, labels="abcdefgh", max_fanout=6)
    query = random_tree(6, seed=4, labels="abcdefgh")
    k = 5
    base = tasm_postorder(query, PostorderQueue.from_tree(doc), k)
    stats = ShardedStats()
    sharded = tasm_sharded(
        query, doc, k, workers=workers, shards=max(workers, 2), stats=stats
    )
    assert ranking_triples(sharded) == ranking_triples(base)
    assert stats.dequeued == len(doc)
    bound = prune_threshold(k, len(query), UnitCostModel())
    assert stats.plan.tau == bound
    for shard_stat in stats.shard_stats:
        assert shard_stat.peak_buffered <= bound


def test_sharded_weighted_costs_on_pool():
    cost = WeightedCostModel(rename_cost=2.0, delete_cost=1.0, insert_cost=3.0)
    doc = random_tree(400, seed=13, max_fanout=5)
    query = random_tree(5, seed=14)
    base = tasm_postorder(query, PostorderQueue.from_tree(doc), 4, cost)
    sharded = tasm_sharded(query, doc, 4, cost, workers=2)
    assert ranking_triples(sharded) == ranking_triples(base)


def test_sharded_batch_matches_batch(tmp_path):
    queries = [random_tree(4, seed=s) for s in (1, 2, 3)]
    doc = random_tree(600, seed=21, max_fanout=6)
    base = tasm_batch(queries, PostorderQueue.from_tree(doc), 3)
    stats = ShardedStats()
    sharded = tasm_sharded_batch(queries, doc, 3, workers=2, shards=3, stats=stats)
    assert [ranking_triples(r) for r in sharded] == [
        ranking_triples(r) for r in base
    ]
    # Planning uses the loosest per-query threshold, like the batch ring.
    assert stats.plan.tau == max(
        prune_threshold(3, len(q), UnitCostModel()) for q in queries
    )


def test_sharded_from_interval_store_range_scans(tmp_path):
    # Workers read their shard straight from the store file via
    # postorder_range — no process materialises the document.
    doc = random_tree(1000, seed=31, labels="abcdef", max_fanout=5)
    query = random_tree(5, seed=32, labels="abcdef")
    path = os.path.join(str(tmp_path), "docs.db")
    with IntervalStore(path) as store:
        doc_id = store.store_tree("doc", doc)
        base = tasm_postorder(query, store.postorder_queue(doc_id), 4)
    stats = ShardedStats()
    sharded = tasm_sharded(
        query, StoreDocument(path, doc_id), 4, workers=2, shards=4, stats=stats
    )
    assert ranking_triples(sharded) == ranking_triples(base)
    assert len(stats.shard_stats) == len(stats.plan.shards)
    assert stats.dequeued == len(doc)
    # Inline execution takes the same store range-scan path in-process.
    inline = tasm_sharded(query, StoreDocument(path, doc_id), 4, workers=1, shards=4)
    assert ranking_triples(inline) == ranking_triples(base)


def test_sharded_from_xml_file_streams_every_process(tmp_path):
    # The XmlDocument source never materialises the pair list: planning
    # and each worker stream their own parse and slice their range.
    from repro.xmlio import write_xml

    doc = random_tree(700, seed=51, labels="abcdef", max_fanout=5)
    query = random_tree(5, seed=52, labels="abcdef")
    path = os.path.join(str(tmp_path), "doc.xml")
    write_xml(doc, path)
    base = tasm_postorder(query, PostorderQueue.from_xml_file(path), 4)
    for workers in (1, 2):
        stats = ShardedStats()
        sharded = tasm_sharded(
            query, XmlDocument(path), 4, workers=workers, shards=3, stats=stats
        )
        assert ranking_triples(sharded) == ranking_triples(base)
        assert stats.dequeued == len(doc)
    with pytest.raises(ReproError):  # malformed XML surfaces at planning
        empty = os.path.join(str(tmp_path), "empty.xml")
        with open(empty, "w", encoding="utf-8") as fh:
            fh.write("")
        tasm_sharded(query, XmlDocument(empty), 4, workers=1)


def test_tasm_batch_workers_parameter_aggregates_stats():
    from repro.tasm import PostorderStats

    doc = random_tree(500, seed=41, max_fanout=6)
    query = random_tree(5, seed=42)
    single_stats = PostorderStats()
    base = tasm_batch(
        [query], PostorderQueue.from_tree(doc), 4, stats=single_stats
    )
    parallel_stats = PostorderStats()
    parallel = tasm_batch(
        [query],
        PostorderQueue.from_tree(doc),
        4,
        stats=parallel_stats,
        workers=2,
    )
    assert [ranking_triples(r) for r in parallel] == [
        ranking_triples(r) for r in base
    ]
    assert parallel_stats.dequeued == single_stats.dequeued == len(doc)
    assert parallel_stats.ring_capacity == single_stats.ring_capacity


def test_sharded_degenerate_inputs():
    # Single-node document: one shard, ranking of size 1.
    one = Tree.from_bracket("{a}")
    assert ranking_triples(tasm_sharded(one, one, 3, workers=2)) == [
        (0.0, 1, "{a}")
    ]
    # Star document where no safe cut exists below the root size.
    doc = star(30)
    query = Tree.from_bracket("{r{x}}")
    base = tasm_postorder(query, PostorderQueue.from_tree(doc), 5)
    sharded = tasm_sharded(query, doc, 5, workers=2, shards=4)
    assert ranking_triples(sharded) == ranking_triples(base)


def test_sharded_rejects_bad_arguments():
    doc = Tree.from_bracket("{a{b}}")
    with pytest.raises(RankingError):
        tasm_sharded(doc, doc, 0, workers=2)
    with pytest.raises(RankingError):
        tasm_sharded(doc, doc, 2, workers=0)
    with pytest.raises(RankingError):
        tasm_sharded_batch([], doc, 2, workers=2)
    with pytest.raises(RankingError):
        tasm_sharded(doc, [], 2, workers=2)
    with pytest.raises(ReproError):  # missing store file, library error
        tasm_sharded(doc, StoreDocument("/nonexistent/typo.db", 1), 2, workers=1)
