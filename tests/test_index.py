"""The ingest-time candidate index: build, lower bound, indexed engine.

Three trust stories:

* the **signature/hash layer** round-trips at every serialised width
  and identifies label-identical subtrees (and nothing else);
* the **lower bound** is provable: Hypothesis checks
  ``histogram_lower_bound <= ted`` on generated tree pairs across
  cost models, so skipping a candidate on the bound can never drop a
  true match;
* the **indexed engine** is byte-identical to the streaming pass —
  distances, roots, subtrees, and tie order — including when shapes
  are deduplicated and fanned back out to every position, and across
  kernel backends.

Plus the operational surface: schema-version gating, lazy backfill of
pre-index stores, and the ``repro index`` / ``--engine`` CLI.
"""

import json
import sqlite3
from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from conftest import cost_models, ks, ranking_triples, small_trees, trees
from repro import (
    IntervalStore,
    PostorderStats,
    Tree,
    tasm_batch,
    tasm_postorder,
    ted,
)
from repro.cli import main
from repro.distance import numpy_backend_available
from repro.errors import PostorderQueueError, RankingError, StoreSchemaError
from repro.index import (
    SIGNATURE_BUCKETS,
    STRUCT_HASH_BYTES,
    decode_signature,
    histogram_lower_bound,
    iter_candidate_entries,
    label_bucket,
    tasm_indexed_batch,
    tree_signature,
)
from repro.index.build import _encode_signature
from repro.parallel import ShardedStats, StoreDocument, tasm_sharded_batch
from repro.postorder.interval import SCHEMA_VERSION
from repro.trees import random_tree

QUERY = "{a{b}{c}}"


# ----------------------------------------------------------------------
# Signatures and structure hashes
# ----------------------------------------------------------------------
def test_signature_encode_decode_roundtrip_all_widths():
    base = [(i * 7 + 3) % 11 for i in range(SIGNATURE_BUCKETS)]
    cases = [
        (base, 100, SIGNATURE_BUCKETS),  # 1 byte per bucket
        ([c * 40 for c in base], 3_000, SIGNATURE_BUCKETS * 2),
        ([c * 9_000 for c in base], 70_000, SIGNATURE_BUCKETS * 4),
    ]
    for counts, size, nbytes in cases:
        packed = sum(c << (32 * i) for i, c in enumerate(counts))
        blob = _encode_signature(packed, size)
        assert len(blob) == nbytes
        assert decode_signature(blob) == tuple(counts)


def test_decode_signature_rejects_malformed_blobs():
    with pytest.raises(PostorderQueueError):
        decode_signature(b"\x00" * 7)


def test_tree_signature_counts_bucketed_labels():
    tree = Tree.from_bracket("{a{b}{a}{c}}")
    sig = tree_signature(tree)
    assert sum(sig) == len(tree)
    buckets = Counter(
        label_bucket(str(tree.label(i))) for i in range(1, len(tree) + 1)
    )
    assert sig == tuple(buckets.get(b, 0) for b in range(SIGNATURE_BUCKETS))


def test_struct_hash_identifies_label_identical_subtrees():
    def root_hash(bracket):
        entries = list(iter_candidate_entries(
            Tree.from_bracket(bracket).postorder()
        ))
        root = entries[-1]
        assert len(root.struct_hash) == STRUCT_HASH_BYTES
        return root.struct_hash

    assert root_hash("{a{b}{c}}") == root_hash("{a{b}{c}}")
    assert root_hash("{a{b}{c}}") != root_hash("{a{c}{b}}")  # order matters
    assert root_hash("{a{b}{c}}") != root_hash("{a{b{c}}}")  # shape matters
    assert root_hash("{a{b}{c}}") != root_hash("{x{b}{c}}")  # label matters


def test_iter_candidate_entries_rejects_bad_sizes():
    with pytest.raises(PostorderQueueError):
        list(iter_candidate_entries([("a", 2)]))  # size exceeds position


# ----------------------------------------------------------------------
# The lower bound is provable: LB <= TED on generated pairs
# ----------------------------------------------------------------------
@given(query=small_trees, doc=trees, cost=cost_models)
def test_histogram_lower_bound_never_exceeds_ted(query, doc, cost):
    lb = histogram_lower_bound(
        len(query), tree_signature(query), len(doc), tree_signature(doc), cost
    )
    assert lb <= ted(query, doc, cost)


# ----------------------------------------------------------------------
# Store: ingest-time rows, schema gating, backfill
# ----------------------------------------------------------------------
def test_store_tree_builds_candidate_rows(tmp_path):
    db = str(tmp_path / "docs.db")
    doc = Tree.from_bracket("{r{a{b}{c}}{d}}")
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", doc)
        assert store.schema_version() == SCHEMA_VERSION == 2
        assert store.has_index(doc_id)
        rows = list(store.candidate_rows(doc_id, 1, len(doc)))
        # The size filter is the SQL range, not post-hoc.
        small = list(store.candidate_rows(doc_id, 1, 3))
    assert [pos for pos, *_ in rows] == sorted(pos for pos, *_ in rows)
    assert len(rows) == len(doc)
    sizes = {pos: size for pos, _end, size, _h, _sig in rows}
    assert sizes[len(doc)] == len(doc)  # the root row covers the tree
    assert small and all(s <= 3 for _p, _e, s, _h, _s in small)


def test_backfill_upgrades_a_pre_index_store(tmp_path):
    db = str(tmp_path / "docs.db")
    doc = random_tree(150, seed=9, labels="abcde", max_fanout=4)
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", doc)
    # Rewind the file to schema v1: no candidate table, no meta.
    raw = sqlite3.connect(db)
    raw.executescript("DROP TABLE candidate; DROP TABLE meta;")
    raw.commit()
    raw.close()

    query = Tree.from_bracket(QUERY)
    reference = ranking_triples(tasm_postorder(query, doc, 4))
    with IntervalStore(db) as store:
        assert store.schema_version() == SCHEMA_VERSION  # upgraded in place
        assert not store.has_index(doc_id)
        assert store.ensure_index(doc_id) == len(doc)
        assert store.ensure_index(doc_id) == 0  # idempotent
        assert store.has_index(doc_id)
        indexed = tasm_indexed_batch([query], store, doc_id, 4)[0]
    assert ranking_triples(indexed) == reference


def test_readonly_store_cannot_backfill_but_says_why(tmp_path):
    db = str(tmp_path / "docs.db")
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", Tree.from_bracket("{a{b}}"))
    raw = sqlite3.connect(db)
    raw.execute("DELETE FROM candidate")
    raw.commit()
    raw.close()
    store = IntervalStore.open_readonly(db)
    try:
        with pytest.raises(PostorderQueueError, match="read-only"):
            store.ensure_index(doc_id)
        with pytest.raises(PostorderQueueError, match="repro index"):
            tasm_indexed_batch([Tree.from_bracket("{a}")], store, doc_id, 1)
    finally:
        store.close()


def test_newer_schema_versions_are_refused(tmp_path):
    db = str(tmp_path / "docs.db")
    with IntervalStore(db) as store:
        store.store_tree("doc", Tree.from_bracket("{a{b}}"))
    raw = sqlite3.connect(db)
    raw.execute("UPDATE meta SET value = '99' WHERE key = 'schema_version'")
    raw.commit()
    raw.close()
    with pytest.raises(StoreSchemaError, match="99"):
        IntervalStore(db)
    with pytest.raises(StoreSchemaError, match="99"):
        IntervalStore.open_readonly(db)


# ----------------------------------------------------------------------
# Indexed engine: byte identity, dedup fan-out, routing
# ----------------------------------------------------------------------
@given(
    queries=st.lists(small_trees, min_size=1, max_size=3),
    doc=trees,
    k=ks,
    cost=cost_models,
)
def test_indexed_engine_byte_identical_to_streaming(queries, doc, k, cost):
    reference = [
        ranking_triples(tasm_postorder(q, doc, k, cost)) for q in queries
    ]
    with IntervalStore() as store:
        doc_id = store.store_tree("doc", doc)
        indexed = tasm_indexed_batch(queries, store, doc_id, k, cost)
        assert [ranking_triples(r) for r in indexed] == reference
        if numpy_backend_available():
            vec = tasm_indexed_batch(
                queries, store, doc_id, k, cost, backend="numpy"
            )
            assert [ranking_triples(r) for r in vec] == reference


def test_dedup_fans_shared_shapes_back_out_in_tie_order():
    doc = Tree.from_bracket(
        "{r{a{b}{c}}{x{a{b}{c}}}{a{b}{c}}{d{a{b}{c}}}}"
    )
    query = Tree.from_bracket(QUERY)
    reference = ranking_triples(tasm_postorder(query, doc, 6))
    stats = PostorderStats()
    with IntervalStore() as store:
        doc_id = store.store_tree("doc", doc)
        indexed = tasm_indexed_batch([query], store, doc_id, 6, stats=stats)[0]
    # Four identical {a{b}{c}} copies: one kernel run, three cache hits,
    # and the exact matches still rank in document postorder position.
    assert stats.index_dedup_hits >= 3
    assert stats.index_candidates > 0
    assert ranking_triples(indexed) == reference
    exact_roots = [root for d, root, _ in ranking_triples(indexed) if d == 0.0]
    assert exact_roots == sorted(exact_roots)


def test_lower_bound_skips_candidates_once_the_heap_is_full():
    # A document dominated by label-disjoint subtrees: once the heap
    # holds k exact-ish matches, the histogram bound alone rejects the
    # rest without running the kernel.
    doc = Tree.from_bracket(
        "{r{a{b}{c}}{a{b}{c}}" + "{z{w}{v{u}}{z{w}{v}}}" * 6 + "}"
    )
    query = Tree.from_bracket(QUERY)
    stats = PostorderStats()
    with IntervalStore() as store:
        doc_id = store.store_tree("doc", doc)
        indexed = tasm_indexed_batch([query], store, doc_id, 2, stats=stats)[0]
    assert stats.index_lb_skips > 0
    assert ranking_triples(indexed) == ranking_triples(
        tasm_postorder(query, doc, 2)
    )


@given(doc=trees, k=ks, cost=cost_models)
def test_banded_chunks_and_sql_exclusion_stay_byte_identical(
    doc, k, cost
):
    # Shrink the chunk size so even small documents exercise the
    # phase-2 machinery: dynamic band re-derivation between chunks, the
    # SQL-side signature/struct-hash exclusion lists, and — with the
    # batch node budget forced down to one shape per graft — the
    # decide/batch-score/replay passes, including the per-query
    # rejection masks of a multi-query batch.
    import repro.index.engine as engine_mod

    queries = [Tree.from_bracket(QUERY), Tree.from_bracket("{b{a{c}}}")]
    references = [
        ranking_triples(tasm_postorder(query, doc, k, cost))
        for query in queries
    ]
    original = engine_mod._CHUNK_ROWS
    original_batch = engine_mod._BATCH_NODES
    engine_mod._CHUNK_ROWS = 2
    engine_mod._BATCH_NODES = 1
    try:
        with IntervalStore() as store:
            doc_id = store.store_tree("doc", doc)
            indexed = tasm_indexed_batch(queries, store, doc_id, k, cost)
    finally:
        engine_mod._CHUNK_ROWS = original
        engine_mod._BATCH_NODES = original_batch
    assert [ranking_triples(ranking) for ranking in indexed] == references


def test_tasm_batch_auto_routes_indexed_stores(tmp_path):
    db = str(tmp_path / "docs.db")
    doc = random_tree(200, seed=3, labels="abcde", max_fanout=4)
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", doc)
    query = Tree.from_bracket(QUERY)
    source = StoreDocument(db, doc_id)
    stats = PostorderStats()
    auto = tasm_batch([query], source, 4, stats=stats)
    assert stats.index_candidates > 0  # auto detected the index
    stream = tasm_batch([query], source, 4, engine="stream")
    assert ranking_triples(auto[0]) == ranking_triples(stream[0])


def test_sharded_batch_delegates_only_when_asked(tmp_path):
    db = str(tmp_path / "docs.db")
    doc = random_tree(300, seed=4, labels="abcde", max_fanout=4)
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", doc)
    query = Tree.from_bracket(QUERY)
    source = StoreDocument(db, doc_id)
    default_stats = ShardedStats()
    default = tasm_sharded_batch(
        [query], source, 4, workers=2, stats=default_stats
    )
    assert default_stats.index_candidates == 0  # the contract: it scans
    indexed_stats = ShardedStats()
    indexed = tasm_sharded_batch(
        [query], source, 4, workers=2, engine="indexed", stats=indexed_stats
    )
    assert indexed_stats.index_candidates > 0
    assert indexed_stats.n_shards == 1  # a single indexed pass
    assert ranking_triples(indexed[0]) == ranking_triples(default[0])


def test_engine_validation_and_misrouting_errors():
    query = Tree.from_bracket("{a}")
    doc = Tree.from_bracket("{a{b}}")
    with pytest.raises(RankingError, match="engine"):
        tasm_batch([query], list(doc.postorder()), 1, engine="bogus")
    with pytest.raises(RankingError, match="StoreDocument"):
        tasm_batch([query], list(doc.postorder()), 1, engine="indexed")
    with pytest.raises(RankingError, match="engine"):
        tasm_sharded_batch([query], doc, 1, engine="bogus")
    with pytest.raises(RankingError, match="StoreDocument"):
        tasm_sharded_batch([query], doc, 1, engine="indexed")


# ----------------------------------------------------------------------
# CLI: `repro index` and `repro tasm --engine`
# ----------------------------------------------------------------------
def _stored_db(tmp_path, nodes=200):
    db = str(tmp_path / "docs.db")
    doc = random_tree(nodes, seed=7, labels="abcde", max_fanout=4)
    with IntervalStore(db) as store:
        store.store_tree("doc", doc)
    return db, doc


def test_cli_index_backfills_and_reports(tmp_path, capsys):
    db, _doc = _stored_db(tmp_path)
    raw = sqlite3.connect(db)
    raw.execute("DELETE FROM candidate")
    raw.commit()
    raw.close()
    assert main(["index", db]) == 0
    out = capsys.readouterr().out
    assert "doc: indexed" in out and "schema version 2" in out
    assert main(["index", db]) == 0
    assert "already indexed" in capsys.readouterr().out
    assert main(["index", db, "--doc-name", "missing"]) == 1


def test_cli_tasm_engine_indexed_matches_stream(tmp_path, capsys):
    db, doc = _stored_db(tmp_path)
    args = ["tasm", QUERY, db, "-k", "3", "--algorithm", "postorder", "--json"]
    assert main(args + ["--engine", "stream"]) == 0
    stream_out = capsys.readouterr().out
    assert main(args + ["--engine", "indexed"]) == 0
    indexed_out = capsys.readouterr().out
    assert json.loads(indexed_out) == json.loads(stream_out)
    assert indexed_out == stream_out  # byte identity, not just equality


def test_cli_tasm_engine_indexed_rejects_bad_combinations(tmp_path, capsys):
    db, _doc = _stored_db(tmp_path)
    assert main(
        ["tasm", QUERY, db, "-k", "2", "--engine", "indexed", "--workers", "4"]
    ) != 0
    assert "--workers" in capsys.readouterr().err
    # A bracket-string document has no store file, hence no index.
    assert main(
        ["tasm", QUERY, "{a{b}}", "-k", "1", "--engine", "indexed"]
    ) != 0
    assert "IntervalStore" in capsys.readouterr().err
    # The dynamic algorithm has no engine concept.
    assert main(
        ["tasm", QUERY, db, "-k", "1", "--algorithm", "dynamic",
         "--engine", "indexed"]
    ) != 0
    capsys.readouterr()
