"""The repro.documents contract, TasmOptions, and their CLI/serve faces.

Covers the API-redesign surface of ISSUE 10: the :class:`Document`
protocol and its five implementations, format autodetection, the
deprecation shims left at the old ``repro.parallel`` paths, the
``TasmOptions`` kwargs collapse (legacy aliases warn once, conflicts
fail), and the end-to-end acceptance flow — an ingested Python package
ranked through CLI → IntervalStore → candidate index.
"""

import io
import json
import os

import pytest

import repro
from repro.cli import main
from repro.documents import (
    FORMATS,
    AstDocument,
    Document,
    HtmlDocument,
    JsonDocument,
    StoreDocument,
    XmlDocument,
    detect_format,
    document_for,
)
from repro.errors import (
    DocumentFormatError,
    RankingError,
    ReproError,
    ServeError,
)
from repro.postorder import IntervalStore, PostorderQueue
from repro.serve.catalog import DocumentCatalog
from repro.tasm import TasmOptions, tasm_batch
from repro.trees import Tree


@pytest.fixture()
def corpus(tmp_path):
    """One document per workload, all encoding distinct small trees."""
    xml = tmp_path / "doc.xml"
    xml.write_text("<r><a><b>hi</b></a><a/></r>")
    js = tmp_path / "doc.json"
    js.write_text('{"a": [1, 2], "b": {"c": "x"}}')
    html = tmp_path / "doc.html"
    html.write_text("<div id='top'><p>one</p><p>two</p></div>")
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "util.py").write_text("def f(x):\n    return x + 1\n")
    return {
        "xml": str(xml),
        "json": str(js),
        "html": str(html),
        "ast": str(pkg),
        "tmp": tmp_path,
    }


def test_document_protocol_and_counts(corpus):
    for fmt, cls in FORMATS.items():
        if cls is StoreDocument:
            continue
        doc = document_for(corpus[fmt], fmt)
        assert isinstance(doc, cls)
        assert isinstance(doc, Document)
        assert doc.workload == fmt
        assert doc.store_ref() is None
        pairs = list(doc.postorder())
        assert doc.n_nodes() == len(pairs)
        # The final pair is the root covering every node.
        assert pairs[-1][1] == len(pairs)
    # Trees are not Documents: the tasm_batch router must keep telling
    # in-memory trees apart from streaming document handles.
    assert not isinstance(Tree.from_bracket("{a}"), Document)


def test_store_document_matches_source(corpus, tmp_path):
    tree = Tree.from_postorder(document_for(corpus["json"], "json").postorder())
    db = str(tmp_path / "docs.db")
    with IntervalStore(db) as store:
        doc_id = store.store_tree("doc", tree)
    doc = StoreDocument(db, doc_id)
    assert isinstance(doc, Document)
    assert doc.workload == "store"
    assert doc.store_ref() == (db, doc_id)
    assert doc.n_nodes() == len(tree)
    assert Tree.from_postorder(doc.postorder()).to_bracket() == tree.to_bracket()


def test_detect_format(corpus):
    assert detect_format(corpus["xml"]) == "xml"
    assert detect_format(corpus["json"]) == "json"
    assert detect_format(corpus["html"]) == "html"
    assert detect_format("page.htm") == "html"
    assert detect_format("mod.py") == "ast"
    assert detect_format(corpus["ast"]) == "ast"  # a directory
    with pytest.raises(DocumentFormatError, match="nope.xyz"):
        detect_format("nope.xyz")
    with pytest.raises(DocumentFormatError, match="unknown"):
        document_for(corpus["json"], "yaml")


def test_documents_rank_identically_across_entry_points(corpus):
    query = Tree.from_bracket("{a{b}}")
    doc = document_for(corpus["xml"], "xml")

    def triples(rankings):
        return [
            (m.distance, m.root, m.subtree.to_bracket()) for m in rankings[0]
        ]

    direct = triples(
        tasm_batch([query], PostorderQueue(doc.postorder()), 3)
    )
    routed = triples(tasm_batch([query], doc, 3))
    sharded = triples(
        tasm_batch([query], doc, 3, options=TasmOptions(workers=2))
    )
    assert routed == direct
    assert sharded == direct


def test_plain_documents_reject_indexed_engine(corpus):
    query = Tree.from_bracket("{a}")
    doc = document_for(corpus["json"], "json")
    with pytest.raises(RankingError):
        tasm_batch([query], doc, 2, options=TasmOptions(engine="indexed"))


# ---------------------------------------------------------------------------
# Deprecation shims and TasmOptions
# ---------------------------------------------------------------------------


def test_old_import_paths_warn_and_alias():
    import repro.parallel as parallel
    import repro.parallel.sharded as sharded

    for module in (parallel, sharded):
        for name, target in (
            ("StoreDocument", StoreDocument),
            ("XmlDocument", XmlDocument),
        ):
            with pytest.warns(DeprecationWarning, match="repro.documents"):
                assert getattr(module, name) is target
    # The new home and the top-level package export them quietly.
    assert repro.StoreDocument is StoreDocument
    assert repro.Document is Document
    assert repro.JsonDocument is JsonDocument
    assert repro.HtmlDocument is HtmlDocument
    assert repro.AstDocument is AstDocument


def test_legacy_kwargs_warn_but_work(corpus):
    query = Tree.from_bracket("{a{b}}")
    doc = document_for(corpus["xml"], "xml")
    with pytest.warns(DeprecationWarning, match="workers"):
        legacy = tasm_batch([query], doc, 2, workers=2)
    quiet = tasm_batch([query], doc, 2, options=TasmOptions(workers=2))
    assert [
        (m.distance, m.root) for m in legacy[0]
    ] == [(m.distance, m.root) for m in quiet[0]]


def test_options_conflicts_and_unknown_fields(corpus):
    query = Tree.from_bracket("{a}")
    doc = document_for(corpus["xml"], "xml")
    with pytest.raises(RankingError, match="workers"):
        tasm_batch(
            [query], doc, 2, options=TasmOptions(workers=2), workers=3
        )
    with pytest.raises(TypeError):
        TasmOptions(turbo=True)
    with pytest.raises(RankingError, match="TasmOptions"):
        tasm_batch([query], doc, 2, options={"workers": 2})


# ---------------------------------------------------------------------------
# CLI: formats, ingest, and the end-to-end acceptance flow
# ---------------------------------------------------------------------------


def test_cli_json_format_and_cost(corpus, capsys):
    assert main(["tasm", "{object{$a}}", corpus["json"], "-k", "2"]) == 0
    plain = capsys.readouterr().out
    assert "@" in plain
    assert (
        main(
            [
                "tasm",
                "{object{$a}}",
                corpus["json"],
                "-k",
                "2",
                "--cost",
                "json-keys:2",
                "--json",
            ]
        )
        == 0
    )
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 2
    assert all({"rank", "distance", "root", "subtree"} <= set(m) for m in payload)


def test_cli_rejects_unknown_extensions(corpus, capsys):
    unknown = os.path.join(str(corpus["tmp"]), "doc.yaml")
    assert main(["tasm", "{a}", unknown, "-k", "1"]) == 1
    err = capsys.readouterr().err
    assert "cannot detect a format" in err
    assert "--format" in err


def test_cli_ast_acceptance_flow(corpus, capsys):
    """ISSUE 10 acceptance: CLI -> IntervalStore -> candidate index."""
    db = os.path.join(str(corpus["tmp"]), "code.db")
    assert main(["ingest", corpus["ast"], db, "--name", "pkg"]) == 0
    out = capsys.readouterr().out
    assert "workload ast" in out and "candidate index built" in out
    # The ingested tree serves through the candidate index...  (the
    # query is util.py's exact function encoding, so it matches at 0)
    query = (
        "{FunctionDef{f}{arguments{arg{x}}}"
        "{Return{BinOp{Name{x}}{Add}{Constant{1}}}}}"
    )
    assert main(["tasm", query, db, "-k", "5", "--engine", "indexed", "--json"]) == 0
    indexed = json.loads(capsys.readouterr().out)
    # ...byte-identically to re-streaming the package itself.
    assert main(["tasm", query, corpus["ast"], "-k", "5", "--json"]) == 0
    streamed = json.loads(capsys.readouterr().out)
    assert indexed == streamed
    assert len(indexed) == 5
    # The best match really is util.py's FunctionDef subtree.
    assert indexed[0]["subtree"].startswith("{FunctionDef{f}")


def test_cli_ingest_rejects_collisions_and_stores(corpus, capsys):
    db = os.path.join(str(corpus["tmp"]), "dup.db")
    assert main(["ingest", corpus["json"], db, "--name", "d"]) == 0
    capsys.readouterr()
    assert main(["ingest", corpus["json"], db, "--name", "d"]) == 1
    assert "already holds" in capsys.readouterr().err
    assert main(["ingest", db, db]) == 1
    assert "already an IntervalStore" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Serve catalog: generic file documents
# ---------------------------------------------------------------------------


def test_catalog_registers_any_workload(corpus):
    catalog = DocumentCatalog()
    for fmt in ("xml", "json", "html", "ast"):
        doc = catalog.register_file(fmt, corpus[fmt])
        assert doc.kind == fmt
        payload = doc.payload()
        assert payload["format"] == fmt
        assert payload["workload"] == fmt
        assert payload["nodes"] == document_for(corpus[fmt], fmt).n_nodes()
        queue_pairs = list(catalog.get(fmt).queue())
        assert len(queue_pairs) == payload["nodes"]
    with pytest.raises(ServeError, match="format"):
        catalog.register_file("bad", corpus["json"], "yaml")
    unknown = os.path.join(str(corpus["tmp"]), "doc.cfg")
    with open(unknown, "w", encoding="utf-8") as fh:
        fh.write("key = value\n")
    with pytest.raises(ServeError, match="cannot detect"):
        catalog.register_file("bad", unknown)


def test_catalog_register_xml_back_compat(corpus):
    catalog = DocumentCatalog()
    doc = catalog.register_xml("legacy", corpus["xml"])
    assert doc.kind == "xml"
    assert doc.workload == "xml"
