"""Cost models: the paper's cst(x) >= 1 requirement is enforced."""

import pytest

from repro.distance import (
    UnitCostModel,
    WeightedCostModel,
    validate_cost_model,
)
from repro.errors import CostModelError


def test_unit_cost_values():
    cost = UnitCostModel()
    assert cost.rename("a", "a") == 0
    assert cost.rename("a", "b") == 1
    assert cost.delete("a") == 1
    assert cost.insert("a") == 1
    assert cost.min_indel == 1
    assert cost.max_cost == 1
    validate_cost_model(cost)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"delete_cost": 0.5},
        {"insert_cost": 0},
        {"delete_cost": -1},
        {"rename_cost": -0.1},
    ],
)
def test_invalid_weighted_costs_raise(kwargs):
    with pytest.raises(CostModelError):
        WeightedCostModel(**kwargs)


def test_weighted_bounds_published():
    cost = WeightedCostModel(rename_cost=0.5, delete_cost=2, insert_cost=3)
    assert cost.min_indel == 2
    assert cost.max_cost == 3
    validate_cost_model(cost)


def test_validate_rejects_sub_unit_indel():
    class Bad:
        min_indel = 0.5
        max_cost = 1.0

        def rename(self, a, b):
            return 0.5

        def delete(self, label):
            return 0.5

        def insert(self, label):
            return 0.5

    with pytest.raises(CostModelError):
        validate_cost_model(Bad())


def test_validate_rejects_missing_protocol():
    class NotACostModel:
        pass

    with pytest.raises(CostModelError):
        validate_cost_model(NotACostModel())
