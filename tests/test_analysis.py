"""The invariant linter: rule fixtures, suppressions, report schema, CLI.

Every rule gets one minimal must-flag and one must-pass fixture; the
meta-test at the bottom asserts the shipped ``src/repro`` tree itself
is clean, so the suite fails the moment a real violation lands.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import (
    AnalysisError,
    Rule,
    all_rule_ids,
    analyze,
    get_rules,
    load_module,
    register_rule,
)
from repro.cli import main

ALL_RULES = [
    "forward-params",
    "json-sort-keys",
    "lock-discipline",
    "no-assert",
    "picklable-fields",
    "span-guard",
    "stream-materialise",
]


def lint_source(tmp_path: Path, relpath: str, source: str, rule_id: str, config=None):
    """Write one fixture file and run a single rule over it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return analyze([path], rule_ids=[rule_id], config=config).findings


# ----------------------------------------------------------------------
# Rule 1: stream-materialise
# ----------------------------------------------------------------------
class TestStreamMaterialise:
    def test_flags_list_of_stream(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/postorder.py",
            """
            def _stream_topk(queries, source, k):
                pairs = list(source)
                return pairs
            """,
            "stream-materialise",
        )
        assert len(findings) == 1
        assert "list(...)" in findings[0].message
        assert findings[0].rule == "stream-materialise"

    def test_flags_read_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "xmlio/parse.py",
            """
            def iterparse_postorder(source):
                data = open(source).read()
                return data
            """,
            "stream-materialise",
        )
        assert len(findings) == 1
        assert ".read()" in findings[0].message

    def test_flags_whole_tree_build(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/postorder.py",
            """
            def tasm_postorder(query, queue, k):
                tree = Tree.from_postorder(queue)
                return tree
            """,
            "stream-materialise",
        )
        assert len(findings) == 1
        assert "from_postorder" in findings[0].message

    def test_passes_streaming_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/postorder.py",
            """
            def _stream_topk(queries, source, k):
                total = 0
                for label, size in source:
                    total += size
                return total
            """,
            "stream-materialise",
        )
        assert findings == []

    def test_unmarked_function_is_free_to_materialise(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/postorder.py",
            """
            def helper(source):
                return list(source)
            """,
            "stream-materialise",
        )
        assert findings == []

    def test_config_can_mark_new_functions(self, tmp_path):
        config = {
            "stream-materialise": {
                "streaming_functions": {"custom.py": {"scan": ("feed",)}}
            }
        }
        findings = lint_source(
            tmp_path,
            "custom.py",
            """
            def scan(feed):
                return sorted(feed)
            """,
            "stream-materialise",
            config=config,
        )
        assert len(findings) == 1


# ----------------------------------------------------------------------
# Rule 2: picklable-fields
# ----------------------------------------------------------------------
class TestPicklableFields:
    def test_flags_lock_field(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "parallel/worker.py",
            """
            import threading
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class ShardTask:
                index: int
                lock: threading.Lock
            """,
            "picklable-fields",
        )
        assert len(findings) == 1
        assert "lock" in findings[0].message

    def test_flags_callable_and_lambda_default(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "parallel/worker.py",
            """
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class ShardResult:
                hook: Callable = lambda: None
            """,
            "picklable-fields",
        )
        assert len(findings) == 2  # bad annotation AND lambda default

    def test_passes_real_field_shapes(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "parallel/worker.py",
            """
            from dataclasses import dataclass
            from typing import Optional, Tuple

            @dataclass(frozen=True)
            class ShardTask:
                index: int
                payload: tuple
                queries: Tuple[Tree, ...]
                cost: object
                backend: str = "auto"

            @dataclass(frozen=True)
            class ShardResult:
                stats: PostorderStats
                span: Optional[dict] = None
            """,
            "picklable-fields",
        )
        assert findings == []

    def test_checks_string_forward_references(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "parallel/worker.py",
            """
            from dataclasses import dataclass

            @dataclass
            class ShardResult:
                span: "Span"
            """,
            "picklable-fields",
        )
        assert len(findings) == 1

    def test_other_classes_unaudited(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "parallel/worker.py",
            """
            import threading
            from dataclasses import dataclass

            @dataclass
            class LocalOnly:
                lock: threading.Lock
            """,
            "picklable-fields",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule 3: lock-discipline
# ----------------------------------------------------------------------
LOCKED_CLASS_HEADER = """
import threading

class ResultCache:
    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
"""


class TestLockDiscipline:
    def test_flags_unlocked_write(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/cache.py",
            LOCKED_CLASS_HEADER
            + """
    def get(self, key):
        self.hits += 1
        return None
            """,
            "lock-discipline",
        )
        assert len(findings) == 1
        assert "self.hits" in findings[0].message

    def test_passes_locked_write(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/cache.py",
            LOCKED_CLASS_HEADER
            + """
    def get(self, key):
        with self._lock:
            self.hits += 1
        return None
            """,
            "lock-discipline",
        )
        assert findings == []

    def test_init_is_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path, "serve/cache.py", LOCKED_CLASS_HEADER, "lock-discipline"
        )
        assert findings == []

    def test_local_variables_unflagged(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/cache.py",
            LOCKED_CLASS_HEADER
            + """
    def peek(self):
        total = self.hits
        return total
            """,
            "lock-discipline",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule 4: span-guard
# ----------------------------------------------------------------------
class TestSpanGuard:
    def test_flags_unguarded_span_call(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/executor.py",
            """
            def run(request, span=None):
                span.child("rank")
                return request
            """,
            "span-guard",
        )
        assert len(findings) == 1
        assert "span.child" in findings[0].message

    def test_passes_guarded_forms(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/executor.py",
            """
            def run(request, span=None):
                if span:
                    span.child("rank")
                child = span.child("x") if span is not None else None
                also = span and span.child("y")
                return request, child, also
            """,
            "span-guard",
        )
        assert findings == []

    def test_flags_span_constructed_in_loop(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/batch.py",
            """
            def run(items):
                spans = []
                for item in items:
                    spans.append(Span("per-item"))
                return spans
            """,
            "span-guard",
        )
        assert len(findings) == 1
        assert "loop" in findings[0].message

    def test_span_outside_loop_ok(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/batch.py",
            """
            def run(items):
                root = Span("batch")
                if root:
                    root.finish()
                return root
            """,
            "span-guard",
        )
        assert findings == []

    def test_cold_modules_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/server.py",
            """
            def run(span):
                span.finish()
            """,
            "span-guard",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule 5: json-sort-keys
# ----------------------------------------------------------------------
class TestJsonSortKeys:
    def test_flags_unsorted_dumps(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/wire.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload, indent=2)
            """,
            "json-sort-keys",
        )
        assert len(findings) == 1
        assert "sort_keys" in findings[0].message

    def test_passes_sorted_dumps(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/wire.py",
            """
            import json

            def encode(payload):
                return json.dumps(payload, indent=2, sort_keys=True)
            """,
            "json-sort-keys",
        )
        assert findings == []

    def test_non_wire_modules_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/debugging.py",
            """
            import json

            def dump(payload):
                return json.dumps(payload)
            """,
            "json-sort-keys",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule 6: no-assert
# ----------------------------------------------------------------------
class TestNoAssert:
    def test_flags_runtime_assert(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/server.py",
            """
            def serve_forever(self):
                assert self._server is not None, "start() must run first"
            """,
            "no-assert",
        )
        assert len(findings) == 1
        assert "python -O" in findings[0].message

    def test_passes_explicit_raise(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "serve/server.py",
            """
            def serve_forever(self):
                if self._server is None:
                    raise RuntimeError("start() must run first")
            """,
            "no-assert",
        )
        assert findings == []

    def test_test_files_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tests/test_thing.py",
            """
            def test_it():
                assert 1 + 1 == 2
            """,
            "no-assert",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Rule 7: forward-params
# ----------------------------------------------------------------------
class TestForwardParams:
    def test_flags_dropped_backend(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/api.py",
            """
            def rank(query, queue, k, backend="auto"):
                return _stream(query, queue, k)
            """,
            "forward-params",
        )
        assert len(findings) == 1
        assert "backend" in findings[0].message

    def test_passes_forwarded_params(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/api.py",
            """
            def rank(query, queue, k, backend="auto", span=None):
                return _stream(query, queue, k, backend=backend, span=span)
            """,
            "forward-params",
        )
        assert findings == []

    def test_stub_bodies_exempt(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "tasm/api.py",
            """
            from typing import Protocol

            class Kernel(Protocol):
                def compute(self, tree, backend):
                    ...

            def todo(backend):
                raise NotImplementedError
            """,
            "forward-params",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Suppression comments
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            def f(x):
                assert x  # repro-lint: disable=no-assert
            """,
            "no-assert",
        )
        assert findings == []

    def test_line_suppression_is_rule_specific(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            def f(x):
                assert x  # repro-lint: disable=span-guard
            """,
            "no-assert",
        )
        assert len(findings) == 1

    def test_file_suppression(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            # repro-lint: disable-file=no-assert
            def f(x):
                assert x

            def g(x):
                assert not x
            """,
            "no-assert",
        )
        assert findings == []

    def test_disable_all(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "pkg/mod.py",
            """
            def f(x):
                assert x  # repro-lint: disable=all
            """,
            "no-assert",
        )
        assert findings == []

    def test_suppressions_parsed_from_module(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(
            "# repro-lint: disable-file=span-guard\n"
            "x = 1  # repro-lint: disable=no-assert, json-sort-keys\n"
        )
        module = load_module(path)
        assert module.file_suppressions == frozenset({"span-guard"})
        assert module.line_suppressions[2] == frozenset(
            {"no-assert", "json-sort-keys"}
        )


# ----------------------------------------------------------------------
# Framework: registry, config validation, report schema
# ----------------------------------------------------------------------
class TestFramework:
    def test_all_rules_registered(self):
        assert all_rule_ids() == ALL_RULES

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            get_rules(["no-such-rule"])

    def test_unknown_option_rejected(self):
        with pytest.raises(AnalysisError, match="no option"):
            get_rules(["no-assert"], config={"no-assert": {"bogus": 1}})

    def test_duplicate_registration_rejected(self):
        class Duplicate(Rule):
            id = "no-assert"

        with pytest.raises(AnalysisError, match="duplicate"):
            register_rule(Duplicate)

    def test_syntax_error_file_raises(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n")
        with pytest.raises(AnalysisError, match="cannot parse"):
            analyze([path])

    def test_report_json_schema(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("def f(x):\n    assert x\n")
        report = analyze([path], rule_ids=["no-assert"])
        payload = json.loads(report.to_json())
        assert set(payload) == {"version", "files_scanned", "findings", "rules"}
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["rules"] == ["no-assert"]
        (finding,) = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "no-assert"
        assert finding["line"] == 2
        # Deterministic: keys sorted, repeated runs byte-identical.
        assert report.to_json() == analyze([path], rule_ids=["no-assert"]).to_json()

    def test_findings_sorted_and_deterministic(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text("def f(x):\n    assert x\n")
        report = analyze([tmp_path], rule_ids=["no-assert"])
        assert [f.path for f in report.findings] == sorted(
            f.path for f in report.findings
        )


# ----------------------------------------------------------------------
# CLI: exit codes, --json, --rule, --list-rules
# ----------------------------------------------------------------------
class TestLintCli:
    def test_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(x):\n    assert x\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "no-assert" in out

    def test_zero_on_clean(self, tmp_path, capsys):
        good = tmp_path / "mod.py"
        good.write_text("def f(x):\n    return x\n")
        assert main(["lint", str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_output(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(x):\n    assert x\n")
        assert main(["lint", "--json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "no-assert"

    def test_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(x):\n    assert x\n")
        assert main(["lint", "--rule", "json-sort-keys", str(bad)]) == 0
        capsys.readouterr()

    def test_unknown_rule_is_an_error(self, tmp_path, capsys):
        assert main(["lint", "--rule", "bogus", str(tmp_path)]) == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULES:
            assert rule_id in out

    def test_cache_directories_are_skipped(self, tmp_path):
        from repro.analysis.core import iter_python_files

        good = tmp_path / "pkg" / "mod.py"
        good.parent.mkdir()
        good.write_text("x = 1\n", encoding="utf-8")
        # Unparseable files inside tool caches must never be collected
        # (a __pycache__'d .py or Hypothesis scratch would abort a run).
        for cached in ("__pycache__", ".hypothesis", ".mypy_cache"):
            junk = tmp_path / "pkg" / cached / "junk.py"
            junk.parent.mkdir()
            junk.write_text("syntax error(\n", encoding="utf-8")
        assert list(iter_python_files([tmp_path])) == [good]


# ----------------------------------------------------------------------
# Meta: the shipped tree must be clean under its own linter
# ----------------------------------------------------------------------
class TestShippedTree:
    def test_src_tree_is_clean(self, capsys):
        package_root = Path(repro.__file__).resolve().parent
        assert main(["lint", str(package_root)]) == 0, capsys.readouterr().out

    def test_default_target_is_the_package(self, capsys):
        assert main(["lint"]) == 0, capsys.readouterr().out
        assert "clean" in capsys.readouterr().out
