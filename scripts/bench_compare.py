"""Compare a bench run against the committed baseline, per series.

Nightly CI runs the full benchmark and feeds the fresh JSON here
against the committed ``BENCH_tasm.json``; any series that regressed
by more than ``--max-regression`` (default 20%) fails the job.

    python scripts/bench_compare.py bench-nightly.json
    python scripts/bench_compare.py bench-nightly.json \
        --baseline BENCH_tasm.json --max-regression 0.20

A *series* is one comparable scalar: the per-size engine timings, the
streamed corpus pass, each parallel worker count, each serve
concurrency level, and the candidate-index stream/indexed split.
Timings gate as lower-is-better; throughput (requests/sec) and the
indexed speedup ratio gate as higher-is-better.  Series missing from
either file — older baselines predate newer sections — are reported
and skipped, never failed.  Sub-``--min-seconds`` timings are skipped
too: a 2 ms series on a shared runner is all noise, no signal.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: (series name, path into the payload, higher_is_better)
_Series = Tuple[str, List[Any], bool]


def _dig(payload: Dict[str, Any], path: List[Any]) -> Optional[float]:
    """The scalar at ``path``, or None when any step is missing."""
    node: Any = payload
    for step in path:
        if isinstance(node, dict):
            node = node.get(step)
        elif isinstance(node, list):
            node = next(
                (
                    item
                    for item in node
                    if isinstance(item, dict) and item.get(step[0]) == step[1]
                ),
                None,
            )
        else:
            return None
        if node is None:
            return None
    return float(node) if isinstance(node, (int, float)) else None


def _series(payload: Dict[str, Any]) -> Iterator[_Series]:
    """Every gateable series present in ``payload``.

    List steps are ``(key, value)`` selectors — ``("doc_nodes", 1000)``
    picks the row of that size — so baselines and fresh runs pair up
    by meaning, not by list position.
    """
    for row in payload.get("results", []):
        size = row.get("doc_nodes")
        sel = ("doc_nodes", size)
        yield f"postorder@{size}", ["results", sel, "postorder", "seconds"], False
        yield f"dynamic@{size}", ["results", sel, "dynamic", "seconds"], False
        yield f"kernel@{size}", ["results", sel, "ted_kernel", "seconds"], False
        yield (
            f"kernel-numpy@{size}",
            ["results", sel, "ted_kernel_numpy", "seconds"],
            False,
        )
    yield "corpus-stream", ["dataset", "postorder_streamed", "seconds"], False
    for row in (payload.get("parallel") or {}).get("series", []):
        workers = row.get("workers")
        yield (
            f"parallel@w{workers}",
            ["parallel", "series", ("workers", workers), "seconds"],
            False,
        )
    for row in (payload.get("serve") or {}).get("series", []):
        concurrency = row.get("concurrency")
        yield (
            f"serve@c{concurrency}",
            [
                "serve",
                "series",
                ("concurrency", concurrency),
                "requests_per_sec",
            ],
            True,
        )
    yield "index-stream", ["index", "stream_seconds"], False
    yield "index-indexed", ["index", "indexed_seconds"], False
    yield "index-speedup", ["index", "speedup_indexed_vs_stream"], True


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    max_regression: float,
    min_seconds: float,
) -> int:
    """Print the per-series verdicts; returns the regression count."""
    regressions = 0
    seen = set()
    for name, path, higher_is_better in _series(baseline):
        if name in seen:
            continue
        seen.add(name)
        base = _dig(baseline, path)
        cur = _dig(current, path)
        if base is None or cur is None:
            print(f"  skip  {name}: missing on one side")
            continue
        if not higher_is_better and max(base, cur) < min_seconds:
            print(f"  skip  {name}: {base:.4f}s below noise floor")
            continue
        if higher_is_better:
            regressed = cur < base * (1.0 - max_regression)
            delta = (cur - base) / base
        else:
            regressed = cur > base * (1.0 + max_regression)
            delta = (cur - base) / base
        verdict = "FAIL" if regressed else "ok"
        print(
            f"  {verdict:>4}  {name}: baseline {base:.4f} -> {cur:.4f} "
            f"({delta:+.1%})"
        )
        if regressed:
            regressions += 1
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh bench JSON to check")
    parser.add_argument(
        "--baseline",
        default="BENCH_tasm.json",
        help="committed baseline JSON (default: BENCH_tasm.json)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.20,
        help="tolerated fractional regression per series (default 0.20)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.05,
        help="skip timing series faster than this on both sides",
    )
    args = parser.parse_args(argv)

    current = json.loads(Path(args.current).read_text())
    baseline = json.loads(Path(args.baseline).read_text())
    print(
        f"bench-compare: {args.current} vs {args.baseline} "
        f"(max regression {args.max_regression:.0%})"
    )
    regressions = compare(
        current, baseline, args.max_regression, args.min_seconds
    )
    if regressions:
        print(f"bench-compare: {regressions} series regressed")
        return 1
    print("bench-compare: no series regressed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
