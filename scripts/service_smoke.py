"""Service-contract smoke test: boot ``repro serve`` and check it cold.

What the ``service-smoke`` CI job runs on every push.  The contract:

1.  **Startup** — a server over a freshly built IntervalStore boots and
    answers ``/healthz`` within a hard deadline.
2.  **Registration** — every :data:`repro.datasets.DEFAULT_QUERIES`
    entry registers over ``PUT /v1/queries/{name}``.
3.  **Ranking identity** — for each registered query,
    ``POST /v1/tasm`` returns a ranking whose JSON is byte-for-byte
    identical to ``repro tasm --json`` run against the same store
    file, query, and ``k`` (the CLI and the server share one payload
    builder; this guards that contract end to end, across processes).
4.  **Concurrency** — two clients race the same uncached ranking;
    both responses are byte-identical to the CLI (the scan coalescer
    and single-flight dedup may share one document scan, but the
    bytes never change), and ``/healthz`` reports the coalescing
    config the server was booted with (``-v --coalesce-window-ms
    --max-batch-queries`` are exercised end to end).
5.  **Workload documents** — a generated ``apilog`` JSON corpus
    registers over ``PUT /v1/documents`` with the ``format`` field,
    ``/healthz`` reports its workload, and its ranking is
    byte-identical to ``repro tasm --format json --json`` against the
    raw JSON file (the streaming frontend and the server agree).
6.  **Observability** — ``/metrics`` counted the traffic;
    ``/metrics?format=prometheus`` is valid text exposition (parsed by
    the strict :func:`repro.obs.prom.parse_prometheus`) whose counters
    are monotone across two scrapes bracketing the ranking traffic;
    ``X-Request-Id`` round-trips (a caller-supplied id is echoed, a
    missing one is assigned).

The server runs with a shard pool (``--workers 2``) and a shard
threshold below the corpus size, so the smoke also covers the
sharded execution path.  On any failure the server log is dumped to
stderr before exiting non-zero.

Usage: ``python scripts/service_smoke.py [--nodes 5000] [--k 5]``
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import re
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.datasets import (  # noqa: E402
    DEFAULT_QUERIES,
    WORKLOAD_QUERIES,
    generate,
)
from repro.obs.prom import parse_prometheus  # noqa: E402
from repro.postorder.interval import IntervalStore  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402
from repro.xmlio import tree_from_xml_file  # noqa: E402

HEALTH_DEADLINE_SECONDS = 30.0

# Coalescing tunables passed on the server command line; /healthz must
# report them back verbatim (the config-plumbing contract).
COALESCE_WINDOW_MS = 25.0
MAX_BATCH_QUERIES = 24


def build_store(tmp: str, dataset: str, nodes: int) -> str:
    xml_path = os.path.join(tmp, f"{dataset}.xml")
    generate(dataset, xml_path, target_nodes=nodes, seed=11)
    db_path = os.path.join(tmp, f"{dataset}.db")
    with IntervalStore(db_path) as store:
        store.store_tree(dataset, tree_from_xml_file(xml_path))
    return db_path


def start_server(
    db_path: str,
    log_path: str,
    workers: int,
    threshold: int,
    backend: str = "auto",
):
    """Boot ``repro serve`` on an ephemeral port; return (proc, port)."""
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--store",
            db_path,
            "--port",
            "0",
            "--workers",
            str(workers),
            "--shard-threshold",
            str(threshold),
            "--backend",
            backend,
            "--coalesce-window-ms",
            str(COALESCE_WINDOW_MS),
            "--max-batch-queries",
            str(MAX_BATCH_QUERIES),
            "-v",
        ],
        stdout=subprocess.PIPE,
        stderr=log,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO, "src")),
        cwd=REPO,
    )
    # The CLI announces the bound port on stdout once listening.  The
    # read happens on a helper thread so the startup deadline holds
    # even if the server wedges before printing anything.
    lines: "queue.Queue[str]" = queue.Queue()
    threading.Thread(
        target=lambda: lines.put(proc.stdout.readline()), daemon=True
    ).start()
    deadline = time.monotonic() + HEALTH_DEADLINE_SECONDS
    line = ""
    while time.monotonic() < deadline:
        try:
            line = lines.get(timeout=0.2)
            break
        except queue.Empty:
            if proc.poll() is not None:
                raise RuntimeError(
                    f"server exited early with {proc.returncode}"
                ) from None
    else:
        raise RuntimeError(
            f"server printed no listening line within "
            f"{HEALTH_DEADLINE_SECONDS}s"
        )
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        raise RuntimeError(f"could not parse server address from {line!r}")
    return proc, int(match.group(1))


def cli_ranking_bytes(
    doc_path: str, bracket: str, k: int, backend: str, fmt: str = "auto"
) -> str:
    """``repro tasm --json`` output for the same document/query/k/backend."""
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "tasm",
            bracket,
            doc_path,
            "-k",
            str(k),
            "--json",
            "--backend",
            backend,
            "--format",
            fmt,
        ],
        capture_output=True,
        text=True,
        env=dict(os.environ, PYTHONPATH=os.path.join(REPO, "src")),
        cwd=REPO,
    )
    if result.returncode != 0:
        raise RuntimeError(f"CLI tasm failed: {result.stderr}")
    return result.stdout


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="dblp", choices=sorted(DEFAULT_QUERIES))
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--shard-threshold",
        type=int,
        default=1000,
        help="kept below --nodes so the sharded path is exercised",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="kernel row engine for server AND comparison CLI (the "
        "byte-identity contract is enforced per backend; 'numpy' also "
        "asserts /healthz and /metrics report it)",
    )
    args = parser.parse_args()

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        log_path = os.path.join(tmp, "server.log")
        db_path = build_store(tmp, args.dataset, args.nodes)
        print(f"store built: {db_path}")
        proc = None
        try:
            proc, port = start_server(
                db_path,
                log_path,
                args.workers,
                args.shard_threshold,
                args.backend,
            )
            client = ServeClient(port=port)
            health = client.wait_healthy(timeout=HEALTH_DEADLINE_SECONDS)
            print(f"healthy on port {port}: {health}")
            if args.backend != "auto" and health.get("kernel_backend") != (
                args.backend
            ):
                failures.append(
                    f"/healthz reports kernel_backend="
                    f"{health.get('kernel_backend')!r}, expected "
                    f"{args.backend!r}"
                )
            coalesce = health.get("coalesce", {})
            if (
                coalesce.get("window_ms") != COALESCE_WINDOW_MS
                or coalesce.get("max_batch_queries") != MAX_BATCH_QUERIES
            ):
                failures.append(
                    f"/healthz coalesce config {coalesce!r} does not "
                    f"match the command line (window_ms="
                    f"{COALESCE_WINDOW_MS}, max_batch_queries="
                    f"{MAX_BATCH_QUERIES})"
                )
            else:
                print(
                    f"coalescing config OK: window_ms="
                    f"{coalesce['window_ms']}, max_batch_queries="
                    f"{coalesce['max_batch_queries']}"
                )

            # X-Request-Id contract: a supplied id is echoed verbatim
            # in the response headers (never the body — the ranking
            # bodies stay byte-identical to the CLI), and a request
            # without one gets an id assigned.
            _, echo_headers, _ = client.raw(
                "GET", "/healthz", headers={"X-Request-Id": "smoke-rid-1"}
            )
            if echo_headers.get("x-request-id") != "smoke-rid-1":
                failures.append(
                    f"X-Request-Id not echoed: got "
                    f"{echo_headers.get('x-request-id')!r}"
                )
            _, fresh_headers, _ = client.raw("GET", "/healthz")
            if not fresh_headers.get("x-request-id"):
                failures.append(
                    "no X-Request-Id assigned to a request without one"
                )
            if not failures:
                print("X-Request-Id round-trip OK")

            for name, bracket in DEFAULT_QUERIES.items():
                registered = client.register_query(name, bracket=bracket)
                print(f"registered query {name}: {registered}")

            # First Prometheus scrape before the ranking traffic; the
            # strict parser raises on any exposition-format drift.
            prom_before = parse_prometheus(client.metrics_prometheus())
            print(
                f"prometheus exposition parses: "
                f"{len(prom_before)} families before traffic"
            )

            for name, bracket in DEFAULT_QUERIES.items():
                response = client.tasm(name, args.dataset, k=args.k)
                served = json.dumps(response["matches"], indent=2) + "\n"
                cli = cli_ranking_bytes(db_path, bracket, args.k, args.backend)
                if served != cli:
                    failures.append(
                        f"ranking mismatch for {name}:\n"
                        f"--- served ---\n{served}\n--- cli ---\n{cli}"
                    )
                else:
                    print(
                        f"ranking identity OK for {name} "
                        f"(engine={response['engine']}, "
                        f"{len(response['matches'])} matches)"
                    )

            # Two clients race the same uncached ranking (a k the
            # sequential loop never used).  The coalescer may merge
            # them into one scan and single-flight dedups the cache
            # fill — but both bodies must stay byte-identical to the
            # CLI run.
            race_name, race_bracket = next(iter(DEFAULT_QUERIES.items()))
            race_k = args.k + 2
            with ThreadPoolExecutor(max_workers=2) as pool:
                raced = [
                    future.result()
                    for future in [
                        pool.submit(
                            client.tasm, race_name, args.dataset, k=race_k
                        )
                        for _ in range(2)
                    ]
                ]
            race_cli = cli_ranking_bytes(
                db_path, race_bracket, race_k, args.backend
            )
            for response in raced:
                served = json.dumps(response["matches"], indent=2) + "\n"
                if served != race_cli:
                    failures.append(
                        f"concurrent ranking mismatch for {race_name} "
                        f"k={race_k}:\n--- served ---\n{served}\n"
                        f"--- cli ---\n{race_cli}"
                    )
            if not failures:
                print(
                    f"concurrent byte-identity OK for {race_name} "
                    f"k={race_k} (engines="
                    f"{[r['engine'] for r in raced]})"
                )

            # A non-XML workload document: generate a JSON API-log
            # corpus, register it through the `format` field, and hold
            # the same byte-identity contract against the CLI reading
            # the raw JSON file with --format json (server and CLI
            # both route through the jsonio frontend Document).
            json_path = os.path.join(tmp, "apilog.json")
            generate("apilog", json_path, target_nodes=2000, seed=11)
            registered_doc = client.register_document(
                "apilog", json_path, fmt="json"
            )
            print(f"registered JSON document: {registered_doc}")
            if (
                registered_doc.get("format") != "json"
                or registered_doc.get("workload") != "json"
            ):
                failures.append(
                    f"registered JSON document reports "
                    f"format={registered_doc.get('format')!r} "
                    f"workload={registered_doc.get('workload')!r}"
                )
            health_workloads = client.health().get("workloads", {})
            if health_workloads.get("apilog") != "json":
                failures.append(
                    f"/healthz workloads {health_workloads!r} does not "
                    "report the JSON document"
                )
            json_bracket = WORKLOAD_QUERIES["apilog"]
            json_response = client.tasm(json_bracket, "apilog", k=args.k)
            json_served = (
                json.dumps(json_response["matches"], indent=2) + "\n"
            )
            json_cli = cli_ranking_bytes(
                json_path, json_bracket, args.k, args.backend, fmt="json"
            )
            if json_served != json_cli:
                failures.append(
                    f"JSON workload ranking mismatch:\n"
                    f"--- served ---\n{json_served}\n--- cli ---\n{json_cli}"
                )
            else:
                print(
                    f"JSON workload byte-identity OK "
                    f"(engine={json_response['engine']}, "
                    f"{len(json_response['matches'])} matches)"
                )

            # Second scrape after the traffic: still parses, and every
            # counter sample present in the first scrape is monotone
            # non-decreasing (the Prometheus counter contract).
            prom_after = parse_prometheus(client.metrics_prometheus())
            for family, data in prom_before.items():
                if data["type"] != "counter":
                    continue
                after = prom_after.get(family)
                if after is None:
                    failures.append(
                        f"counter family {family} vanished between scrapes"
                    )
                    continue
                for key, value in data["samples"].items():
                    if after["samples"].get(key, -1.0) < value:
                        failures.append(
                            f"counter went backwards between scrapes: "
                            f"{key} {value} -> "
                            f"{after['samples'].get(key)}"
                        )
            tasm_sample = (
                'repro_requests_total{route="POST /v1/tasm"}'
            )
            tasm_count = prom_after.get("repro_requests_total", {}).get(
                "samples", {}
            ).get(tasm_sample, 0)
            # + the raced pair + the JSON workload ranking
            expected_tasm = len(DEFAULT_QUERIES) + 3
            if tasm_count != expected_tasm:
                failures.append(
                    f"prometheus counted {tasm_count} POST /v1/tasm "
                    f"requests, expected {expected_tasm}"
                )
            if "repro_request_seconds" not in prom_after:
                failures.append(
                    "no repro_request_seconds latency histogram after "
                    "traffic"
                )
            if not failures:
                print(
                    f"prometheus counters monotone across scrapes "
                    f"({len(prom_after)} families after traffic)"
                )

            metrics = client.metrics()
            print(f"metrics: {json.dumps(metrics, indent=2)}")
            if args.backend != "auto" and metrics.get("kernel_backend") != (
                args.backend
            ):
                failures.append(
                    f"/metrics reports kernel_backend="
                    f"{metrics.get('kernel_backend')!r}, expected "
                    f"{args.backend!r}"
                )
            # + the raced pair + the JSON workload ranking
            expected = len(DEFAULT_QUERIES) + 3
            served_count = metrics["requests_by_route"].get("POST /v1/tasm", 0)
            if served_count != expected:
                failures.append(
                    f"/metrics counted {served_count} POST /v1/tasm "
                    f"requests, expected {expected}"
                )
            if metrics["errors_total"]:
                failures.append(
                    f"{metrics['errors_total']} errors during the smoke run"
                )

            # -v dumps the full resolved config as JSON at startup;
            # the log must show the coalescing tunables we passed.
            with open(log_path, "r", encoding="utf-8") as fh:
                server_log = fh.read()
            if f'"coalesce_window_ms": {COALESCE_WINDOW_MS}' not in (
                server_log
            ):
                failures.append(
                    "verbose startup log does not show the resolved "
                    f"coalesce_window_ms={COALESCE_WINDOW_MS}"
                )
            else:
                print("verbose config line present in server log")
        except Exception as exc:  # noqa: BLE001 - report and dump logs
            failures.append(f"{type(exc).__name__}: {exc}")
        finally:
            if proc is not None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
            if failures and os.path.exists(log_path):
                print("---- server log ----", file=sys.stderr)
                with open(log_path, "r", encoding="utf-8") as fh:
                    sys.stderr.write(fh.read())
                print("---- end server log ----", file=sys.stderr)

    if failures:
        for failure in failures:
            print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
        return 1
    print("service smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
