"""TASM micro-benchmark harness.

Compares TASM-dynamic against TASM-postorder on generated documents and
emits ``BENCH_tasm.json`` with, per (document size, k) configuration:

* wall-clock time and document nodes/second for both algorithms,
* TASM-postorder instrumentation: peak ring-buffer occupancy, ring
  capacity, dequeued pair count, candidates evaluated, subtrees scored,
* a correctness bit: both algorithms returned the same top-k distance
  multiset (the paper's equivalence claim, Theorem 5 context).

The headline expectation mirrors the paper's Figure 9/10: postorder's
peak buffered nodes stay flat as the document grows, while dynamic's
working set is the whole document.

Usage::

    python bench/run_bench.py                      # default sweep
    python bench/run_bench.py --sizes 200,2000 --k 3 --query-size 6
    python bench/run_bench.py --smoke              # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.distance import UnitCostModel  # noqa: E402
from repro.postorder.queue import PostorderQueue  # noqa: E402
from repro.tasm import (  # noqa: E402
    PostorderStats,
    prune_threshold,
    tasm_dynamic,
    tasm_postorder,
)
from repro.trees import random_tree, tree_stats  # noqa: E402


def bench_one(n: int, query_size: int, k: int, seed: int) -> dict:
    document = random_tree(n, seed=seed, labels="abcdefgh", max_fanout=6)
    query = random_tree(query_size, seed=seed + 1, labels="abcdefgh")

    t0 = time.perf_counter()
    dyn = tasm_dynamic(query, document, k)
    dyn_elapsed = time.perf_counter() - t0

    stats = PostorderStats()
    t0 = time.perf_counter()
    post = tasm_postorder(
        query, PostorderQueue.from_tree(document), k, stats=stats
    )
    post_elapsed = time.perf_counter() - t0

    dyn_dists = sorted(m.distance for m in dyn)
    post_dists = sorted(m.distance for m in post)
    return {
        "doc_nodes": n,
        "doc_stats": tree_stats(document).describe(),
        "query_nodes": query_size,
        "k": k,
        "prune_threshold": prune_threshold(k, query_size, UnitCostModel()),
        "dynamic": {
            "seconds": round(dyn_elapsed, 6),
            "nodes_per_sec": round(n / dyn_elapsed) if dyn_elapsed else None,
        },
        "postorder": {
            "seconds": round(post_elapsed, 6),
            "nodes_per_sec": round(n / post_elapsed) if post_elapsed else None,
            "dequeued": stats.dequeued,
            "peak_ring_buffer": stats.peak_buffered,
            "ring_capacity": stats.ring_capacity,
            "candidates_evaluated": stats.candidates_evaluated,
            "subtrees_scored": stats.subtrees_scored,
            "pruned_large": stats.pruned_large,
        },
        "speedup_postorder_over_dynamic": (
            round(dyn_elapsed / post_elapsed, 3) if post_elapsed else None
        ),
        "rankings_agree": dyn_dists == post_dists,
        "top_distances": post_dists,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="200,1000,5000",
        help="comma-separated document sizes (default 200,1000,5000)",
    )
    parser.add_argument("--query-size", type=int, default=6)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_tasm.json"),
        help="output JSON path (default: repo-root BENCH_tasm.json)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI (overrides --sizes/--k)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes, k, query_size = [60], 3, 4
    else:
        sizes = [int(s) for s in args.sizes.split(",") if s]
        k, query_size = args.k, args.query_size

    results = []
    for n in sizes:
        row = bench_one(n, query_size, k, args.seed)
        results.append(row)
        print(
            f"n={n:>7}  dynamic {row['dynamic']['nodes_per_sec']:>9} n/s  "
            f"postorder {row['postorder']['nodes_per_sec']:>9} n/s  "
            f"peak_ring={row['postorder']['peak_ring_buffer']}"
            f"/{row['postorder']['ring_capacity']}  "
            f"agree={row['rankings_agree']}"
        )

    payload = {
        "bench": "tasm",
        "query_size": query_size,
        "k": k,
        "seed": args.seed,
        "cost_model": "unit",
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0 if all(r["rankings_agree"] for r in results) else 1


if __name__ == "__main__":
    sys.exit(main())
