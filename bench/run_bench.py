"""TASM micro-benchmark harness.

Compares TASM-dynamic against TASM-postorder on generated documents and
emits ``BENCH_tasm.json`` with, per (document size, k) configuration:

* wall-clock time and document nodes/second for both algorithms,
* a pure TED-kernel timing (one :func:`prefix_distance` run) and its
  speedup over the previously committed ``BENCH_tasm.json`` numbers,
* TASM-postorder instrumentation: peak ring-buffer occupancy, ring
  capacity, dequeued pair count, candidates evaluated, subtrees scored,
* a correctness bit: both algorithms returned the same top-k distance
  multiset (the paper's equivalence claim, Theorem 5 context).

A document-scale section generates an XMark/DBLP/PSD-lookalike corpus
(:mod:`repro.datasets`), streams it through ``tasm_postorder`` from
disk, and checks the paper's memory claim: ring peak within the
analytic ``k + 2|Q| - 1`` bound and rankings identical to the dynamic
baseline.

A parallel-scaling section (``--workers 1,2,4``) runs the sharded
engine (:mod:`repro.parallel`) against an IntervalStore copy of the
corpus and records wall-clock speedup over the single-pass run, with
hard gates on ranking identity and the per-worker ring-peak bound
(``cpu_count`` is recorded; with ``--fail-parallel-speedup`` the
wall-clock win over the single pass is gated too, but only when
``cpu_count >= 2`` — a single-core host cannot show one, and skipping
silently there would mask regressions on real runners).

An observability-overhead section re-runs the streamed corpus ranking
bare, with the ``NULL_SPAN`` null recorder, and with full stats+span
instrumentation; ``--fail-obs-overhead`` gates the null-recorder cost
(the "disabled instrumentation is free" promise of :mod:`repro.obs`).

A serving section (``--serve-concurrency 1,8,32``) boots the
:mod:`repro.serve` HTTP server over the corpus store and measures
requests/second at increasing client concurrency, with the result
cache disabled so every request exercises the engine; every served
ranking is gated byte-identical to a direct :func:`repro.tasm.
tasm_batch` run on the same store.  Each concurrency level also
records how many document scans it triggered (the scan coalescer
merges concurrent requests onto shared passes), and
``--fail-serve-coalesce-speedup`` gates the req/s win of the highest
concurrency level over the sequential baseline — enforced only when
``cpu_count >= 2``, with the same recorded-skip pattern as the
parallel gate on single-core hosts.  The serve series pins
``engine="stream"`` so its numbers keep measuring the scan coalescer.

A candidate-index section boots the same server twice over the same
corpus store — once streaming, once with ``engine="indexed"`` — and
times sequential request latency for both, gating byte identity of
every response pair; ``--fail-index-speedup`` additionally gates the
indexed-over-streamed latency win, enforced only at corpus scale
(>= 100k nodes, where the index's SQL size-range + lower-bound
filtering dominates; smaller corpora record a skip, never a silent
pass).

Usage::

    python bench/run_bench.py                      # default sweep
    python bench/run_bench.py --sizes 200,2000 --k 3 --query-size 6
    python bench/run_bench.py --smoke              # CI-sized run
    python bench/run_bench.py --dataset dblp --dataset-nodes 500000
    python bench/run_bench.py --fail-below-speedup 1.0   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.datasets import DEFAULT_QUERIES, generate  # noqa: E402
from repro.distance import (  # noqa: E402
    UnitCostModel,
    numpy_backend_available,
    prefix_distance,
    resolve_backend,
)
from repro.parallel import ShardedStats, StoreDocument, tasm_sharded  # noqa: E402
from repro.postorder.interval import IntervalStore  # noqa: E402
from repro.postorder.queue import PostorderQueue  # noqa: E402
from repro.serve import (  # noqa: E402
    ServeClient,
    ServerConfig,
    ServerThread,
    ranking_payload,
)
from repro.tasm import (  # noqa: E402
    PostorderStats,
    prune_threshold,
    tasm_batch,
    tasm_dynamic,
    tasm_postorder,
)
from repro.trees import Tree, random_tree, tree_stats  # noqa: E402
from repro.xmlio import tree_from_xml_file  # noqa: E402


def bench_one(n: int, query_size: int, k: int, seed: int, previous: dict) -> dict:
    document = random_tree(n, seed=seed, labels="abcdefgh", max_fanout=6)
    query = random_tree(query_size, seed=seed + 1, labels="abcdefgh")

    # The ted_kernel series is pinned to the pure-Python engine so the
    # numpy series next to it measures a real speedup (and the
    # vs-previous-bench comparison stays python-vs-python).
    t0 = time.perf_counter()
    kernel_distances = prefix_distance(query, document, backend="python")
    kernel_elapsed = time.perf_counter() - t0

    # Below the kernel's NUMPY_MIN_DOC cutoff backend="numpy"
    # intentionally dispatches to the scalar engine, so timing it would
    # label python-vs-python jitter as a numpy speedup; record a skip
    # instead (which also makes the gate a recorded-skip there).
    from repro.distance.ted import NUMPY_MIN_DOC

    kernel_numpy = None
    if not numpy_backend_available():
        kernel_numpy = {"skipped": "numpy not installed"}
    elif n < NUMPY_MIN_DOC:
        kernel_numpy = {
            "skipped": f"doc below NUMPY_MIN_DOC={NUMPY_MIN_DOC}; "
            "the scalar engine runs by design"
        }
    else:
        t0 = time.perf_counter()
        numpy_distances = prefix_distance(query, document, backend="numpy")
        numpy_elapsed = time.perf_counter() - t0
        kernel_numpy = {
            "seconds": round(numpy_elapsed, 6),
            "nodes_per_sec": (
                round(n / numpy_elapsed) if numpy_elapsed else None
            ),
            "speedup_vs_python": (
                round(kernel_elapsed / numpy_elapsed, 3) if numpy_elapsed else None
            ),
            "distances_identical_to_python": numpy_distances == kernel_distances,
        }

    # The dynamic baseline is pinned to the scalar engine: the
    # speedup_postorder_over_dynamic gate compares the streaming
    # algorithm against the paper's materialised baseline on the engine
    # both were designed on.  (tasm_dynamic is one prefix_distance run
    # plus a heap scan, so its numpy behaviour is already captured by
    # the ted_kernel_numpy series; letting it float to "auto" would
    # turn the gate into scalar-streaming vs numpy-baseline and fail
    # spuriously on numpy hosts.)
    t0 = time.perf_counter()
    dyn = tasm_dynamic(query, document, k, backend="python")
    dyn_elapsed = time.perf_counter() - t0

    stats = PostorderStats()
    t0 = time.perf_counter()
    post = tasm_postorder(
        query, PostorderQueue.from_tree(document), k, stats=stats
    )
    post_elapsed = time.perf_counter() - t0

    dyn_dists = sorted(m.distance for m in dyn)
    post_dists = sorted(m.distance for m in post)
    row = {
        "doc_nodes": n,
        "doc_stats": tree_stats(document).describe(),
        "query_nodes": query_size,
        "k": k,
        "prune_threshold": prune_threshold(k, query_size, UnitCostModel()),
        "ted_kernel": {
            "backend": "python",
            "seconds": round(kernel_elapsed, 6),
            "nodes_per_sec": (
                round(n / kernel_elapsed) if kernel_elapsed else None
            ),
        },
        "ted_kernel_numpy": kernel_numpy,
        "dynamic": {
            "backend": "python",
            "seconds": round(dyn_elapsed, 6),
            "nodes_per_sec": round(n / dyn_elapsed) if dyn_elapsed else None,
        },
        "postorder": {
            "seconds": round(post_elapsed, 6),
            "nodes_per_sec": round(n / post_elapsed) if post_elapsed else None,
            "dequeued": stats.dequeued,
            "peak_ring_buffer": stats.peak_buffered,
            "ring_capacity": stats.ring_capacity,
            "candidates_evaluated": stats.candidates_evaluated,
            "subtrees_scored": stats.subtrees_scored,
            "pruned_large": stats.pruned_large,
            "pruned_buffered": stats.pruned_buffered,
        },
        "speedup_postorder_over_dynamic": (
            round(dyn_elapsed / post_elapsed, 3) if post_elapsed else None
        ),
        "rankings_agree": dyn_dists == post_dists,
        "top_distances": post_dists,
    }
    # The committed BENCH file is the previous run's record: comparing
    # against it documents the kernel speedup this tree delivers.
    # Older BENCH files lack the dedicated ted_kernel timing; their
    # "dynamic" seconds (one prefix-distance run plus a heap scan) are
    # the closest stand-in.
    prev = previous.get(n)
    if prev:
        old = prev.get("ted_kernel", prev["dynamic"])["seconds"]
        row["kernel_speedup_vs_previous_bench"] = (
            round(old / kernel_elapsed, 3) if kernel_elapsed else None
        )
    return row


def bench_dataset(name: str, target_nodes: int, k: int, seed: int) -> dict:
    """Document-scale run: stream a generated corpus from disk."""
    query = Tree.from_bracket(DEFAULT_QUERIES[name])
    bound = prune_threshold(k, len(query), UnitCostModel())
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{name}.xml")
        t0 = time.perf_counter()
        nodes = generate(name, path, target_nodes=target_nodes, seed=seed)
        gen_elapsed = time.perf_counter() - t0

        stats = PostorderStats()
        t0 = time.perf_counter()
        post = tasm_postorder(
            query, PostorderQueue.from_xml_file(path), k, stats=stats
        )
        post_elapsed = time.perf_counter() - t0

        t0 = time.perf_counter()
        document = tree_from_xml_file(path)
        parse_elapsed = time.perf_counter() - t0
        t0 = time.perf_counter()
        dyn = tasm_dynamic(query, document, k)
        dyn_elapsed = time.perf_counter() - t0

    dyn_dists = sorted(m.distance for m in dyn)
    post_dists = sorted(m.distance for m in post)
    return {
        "dataset": name,
        "doc_nodes": nodes,
        "query": DEFAULT_QUERIES[name],
        "query_nodes": len(query),
        "k": k,
        "generate_seconds": round(gen_elapsed, 3),
        "postorder_streamed": {
            "seconds": round(post_elapsed, 3),
            "nodes_per_sec": (
                round(nodes / post_elapsed) if post_elapsed else None
            ),
            "peak_ring_buffer": stats.peak_buffered,
            "ring_capacity": stats.ring_capacity,
            "candidates_evaluated": stats.candidates_evaluated,
            "pruned_large": stats.pruned_large,
            "pruned_static": stats.pruned_static,
            "pruned_dynamic": stats.pruned_dynamic,
            "kernel_invocations": stats.kernel_invocations,
            "kernel_rows": stats.kernel_rows,
            "ring_occupancy": list(stats.ring_occupancy),
            # Where the streamed pass spends its time: scan (dequeue +
            # ring maintenance) vs candidate evaluation, with the
            # kernel's share of the latter broken out.
            "stage_seconds": stats.payload()["stage_seconds"],
        },
        "dynamic_materialised": {
            "parse_seconds": round(parse_elapsed, 3),
            "seconds": round(dyn_elapsed, 3),
            "nodes_per_sec": round(nodes / dyn_elapsed) if dyn_elapsed else None,
        },
        "ring_bound": bound,
        "ring_peak_within_bound": stats.peak_buffered <= bound,
        "rankings_agree": dyn_dists == post_dists,
        "top_distances": post_dists,
    }


def bench_parallel(
    name: str, target_nodes: int, k: int, seed: int, workers_list
) -> dict:
    """Parallel-scaling series: sharded runs against the single-pass
    baseline at the largest corpus size.

    The document lives in an IntervalStore file; the baseline streams
    it through one SQL postorder scan, and each sharded run plans safe
    cuts and fans the ranges out to a worker pool reading via
    ``postorder_range``.  Identity of the rankings (distances, roots,
    subtrees, tie order) and the per-worker ring-peak bound are
    *checked*, not just reported; the wall-clock speedup depends on
    ``cpu_count`` and is recorded alongside it.
    """
    query = Tree.from_bracket(DEFAULT_QUERIES[name])
    bound = prune_threshold(k, len(query), UnitCostModel())
    with tempfile.TemporaryDirectory() as tmp:
        xml_path = os.path.join(tmp, f"{name}.xml")
        nodes = generate(name, xml_path, target_nodes=target_nodes, seed=seed)
        db_path = os.path.join(tmp, f"{name}.db")
        with IntervalStore(db_path) as store:
            doc_id = store.store_tree(name, tree_from_xml_file(xml_path))

        with IntervalStore.open_readonly(db_path) as store:
            t0 = time.perf_counter()
            c0 = time.process_time()
            base = tasm_postorder(query, store.postorder_queue(doc_id), k)
            base_cpu = time.process_time() - c0
            base_elapsed = time.perf_counter() - t0
        base_key = [
            (m.distance, m.root, m.subtree.to_bracket()) for m in base
        ]

        series = []
        for workers in workers_list:
            stats = ShardedStats()
            t0 = time.perf_counter()
            ranking = tasm_sharded(
                query,
                StoreDocument(db_path, doc_id),
                k,
                workers=workers,
                stats=stats,
            )
            elapsed = time.perf_counter() - t0
            key = [
                (m.distance, m.root, m.subtree.to_bracket()) for m in ranking
            ]
            peaks = [s.peak_buffered for s in stats.shard_stats]
            # The critical path (slowest shard, by its worker's own CPU
            # time) is what the wall clock becomes once the host has
            # >= `workers` cores; on fewer cores the wall-clock number
            # is dominated by time-slicing and pool overhead.
            critical = max(stats.shard_cpu_seconds, default=elapsed)
            series.append(
                {
                    "workers": workers,
                    "shards": len(stats.plan.shards) if stats.plan else 1,
                    "seconds": round(elapsed, 3),
                    "nodes_per_sec": round(nodes / elapsed) if elapsed else None,
                    "speedup_vs_single_pass": (
                        round(base_elapsed / elapsed, 3) if elapsed else None
                    ),
                    "critical_path_cpu_seconds": round(critical, 3),
                    "speedup_critical_path": (
                        round(base_cpu / critical, 3) if critical else None
                    ),
                    "ranking_identical_to_single_pass": key == base_key,
                    "per_worker_peak_ring_buffer": peaks,
                    "worker_peaks_within_bound": all(p <= bound for p in peaks),
                }
            )
    return {
        "dataset": name,
        "doc_nodes": nodes,
        "query_nodes": len(query),
        "k": k,
        "ring_bound": bound,
        "cpu_count": os.cpu_count(),
        "note": (
            "speedup_vs_single_pass is wall clock and needs cpu_count >= "
            "workers to manifest; speedup_critical_path (slowest shard's "
            "own CPU time vs the single pass's CPU time) is the "
            "hardware-independent measure of the achieved work partition"
        ),
        "single_pass_seconds": round(base_elapsed, 3),
        "single_pass_cpu_seconds": round(base_cpu, 3),
        "series": series,
    }


def bench_serve(
    name: str, target_nodes: int, k: int, seed: int, concurrencies
) -> dict:
    """Serving throughput: requests/second against a live HTTP server.

    The corpus lives in an IntervalStore file served by a real
    :class:`repro.serve.TasmServer` on a private event loop; clients
    are threads driving the stdlib :class:`ServeClient`.  The result
    cache is disabled so every request pays the full streamed ranking
    (cache throughput would only measure a dict lookup), and every
    response is compared byte-for-byte against a direct ``tasm_batch``
    run — the serve series doubles as a continuous ranking-identity
    check of the whole HTTP path.
    """
    query_name = "bench"
    query = Tree.from_bracket(DEFAULT_QUERIES[name])
    with tempfile.TemporaryDirectory() as tmp:
        xml_path = os.path.join(tmp, f"{name}.xml")
        nodes = generate(name, xml_path, target_nodes=target_nodes, seed=seed)
        db_path = os.path.join(tmp, f"{name}.db")
        with IntervalStore(db_path) as store:
            doc_id = store.store_tree(name, tree_from_xml_file(xml_path))

        with IntervalStore.open_readonly(db_path) as store:
            reference = tasm_batch([query], store.postorder_queue(doc_id), k)[0]
        # sort_keys on both sides: the wire contract serves sorted keys,
        # so the re-serialised comparison must normalise key order too.
        expected = json.dumps(ranking_payload(reference), indent=2, sort_keys=True)

        config = ServerConfig(
            store=db_path,
            port=0,
            cache_size=0,
            request_threads=max([8, *concurrencies]),
            backend="auto",
            # This series measures the scan coalescer: pin the
            # streaming engine so scans_per_request and the
            # --fail-serve-coalesce-speedup gate keep meaning what
            # they say (the candidate index has its own series).
            engine="stream",
            # Every uncached 100k-corpus ranking exceeds the default
            # 1 s slow-request threshold; logging them would bury the
            # bench output (the slow-log path has its own tests).
            slow_request_seconds=None,
        )
        series = []
        all_identical = True
        with ServerThread(config) as thread:
            client = ServeClient(port=thread.port)
            client.wait_healthy()
            client.register_query(query_name, bracket=DEFAULT_QUERIES[name])

            def one_request() -> bool:
                response = client.tasm(query_name, name, k=k)
                served = json.dumps(response["matches"], indent=2, sort_keys=True)
                return served == expected

            # Warm the kernel/label tables once before timing.
            all_identical &= one_request()

            for concurrency in concurrencies:
                scans_before = (
                    client.metrics()["engine_totals"]["dequeued"] // nodes
                )
                with ThreadPoolExecutor(max_workers=concurrency) as pool:
                    t0 = time.perf_counter()
                    outcomes = list(
                        pool.map(lambda _: one_request(), range(concurrency))
                    )
                    elapsed = time.perf_counter() - t0
                scans = (
                    client.metrics()["engine_totals"]["dequeued"] // nodes
                    - scans_before
                )
                identical = all(outcomes)
                all_identical &= identical
                series.append(
                    {
                        "concurrency": concurrency,
                        "requests": len(outcomes),
                        "seconds": round(elapsed, 3),
                        "requests_per_sec": (
                            round(len(outcomes) / elapsed, 3) if elapsed else None
                        ),
                        # Concurrent identical requests coalesce onto
                        # shared scans; < 1 scan per request is the
                        # whole point of the serve-layer coalescer.
                        "document_scans": scans,
                        "scans_per_request": (
                            round(scans / len(outcomes), 3) if outcomes else None
                        ),
                        "rankings_identical": identical,
                    }
                )
            metrics = client.metrics()
    return {
        "dataset": name,
        "doc_nodes": nodes,
        "query_nodes": len(query),
        "k": k,
        "cache": "disabled",
        "kernel_backend": resolve_backend("auto"),
        "cpu_count": os.cpu_count(),
        "note": (
            "one registered query ranked repeatedly with the cache off: "
            "concurrent requests coalesce (single-flight + batching "
            "window) onto shared document scans, so requests_per_sec at "
            "high concurrency measures the one-scan-many-queries "
            "architecture, and scans_per_request shows how many scans "
            "each request actually paid for"
        ),
        "ring_peak_high_water": metrics["ring_peak_high_water"],
        "latency": metrics["latency_by_route"].get("POST /v1/tasm"),
        "engine_stage_seconds": metrics["stage_seconds"],
        "engine_totals": metrics["engine_totals"],
        "coalesce": metrics["coalesce"],
        "rankings_identical_to_tasm_batch": all_identical,
        "series": series,
    }


def bench_index(
    name: str, target_nodes: int, k: int, seed: int, repeats: int = 5
) -> dict:
    """Indexed vs streamed serving latency on the same corpus store.

    The same :class:`repro.serve.TasmServer` is booted twice over one
    IntervalStore file — ``engine="stream"`` then ``engine="indexed"``
    — and ``repeats`` sequential requests are timed against each after
    a warm-up.  Every response pair is compared byte for byte: the
    speedup is only meaningful if the index changes nothing about the
    ranking, so identity is a hard gate whenever this series runs.
    """
    query_name = "bench"
    with tempfile.TemporaryDirectory() as tmp:
        xml_path = os.path.join(tmp, f"{name}.xml")
        nodes = generate(name, xml_path, target_nodes=target_nodes, seed=seed)
        db_path = os.path.join(tmp, f"{name}.db")
        with IntervalStore(db_path) as store:
            store.store_tree(name, tree_from_xml_file(xml_path))

        def timed_series(engine: str):
            config = ServerConfig(
                store=db_path,
                port=0,
                cache_size=0,  # every request pays the full ranking
                engine=engine,
                slow_request_seconds=None,
            )
            with ServerThread(config) as thread:
                client = ServeClient(port=thread.port)
                client.wait_healthy()
                client.register_query(
                    query_name, bracket=DEFAULT_QUERIES[name]
                )
                client.tasm(query_name, name, k=k)  # warm-up
                bodies = []
                t0 = time.perf_counter()
                for _ in range(repeats):
                    response = client.tasm(query_name, name, k=k)
                    bodies.append(
                        json.dumps(
                            response["matches"], indent=2, sort_keys=True
                        )
                    )
                elapsed = time.perf_counter() - t0
                totals = client.metrics()["engine_totals"]
            return elapsed, bodies, totals

        stream_seconds, stream_bodies, _stream_totals = timed_series("stream")
        indexed_seconds, indexed_bodies, totals = timed_series("indexed")

    return {
        "dataset": name,
        "doc_nodes": nodes,
        "k": k,
        "repeats": repeats,
        "cache": "disabled",
        "kernel_backend": resolve_backend("auto"),
        "note": (
            "sequential request latency against the same store served "
            "streaming vs from the candidate index; the index wins by "
            "scanning only the SQL size range, deduplicating repeated "
            "shapes, and skipping candidates on the label-histogram "
            "lower bound"
        ),
        "stream_seconds": round(stream_seconds, 3),
        "indexed_seconds": round(indexed_seconds, 3),
        "speedup_indexed_vs_stream": (
            round(stream_seconds / indexed_seconds, 3)
            if indexed_seconds
            else None
        ),
        "rankings_identical": stream_bodies == indexed_bodies,
        "index_candidates": totals["index_candidates"],
        "index_lb_skips": totals["index_lb_skips"],
        "index_dedup_hits": totals["index_dedup_hits"],
    }


def bench_obs_overhead(
    name: str, target_nodes: int, k: int, seed: int, repeats: int = 5
) -> dict:
    """Cost of the observability layer on the streamed ranking.

    The instrumentation promise is that it is no-op-cheap when
    *disabled*: passing the null recorder (``NULL_SPAN``, what callers
    hold when tracing is off) must cost the same as passing nothing,
    because the engine collapses it to ``None`` up front and every
    later touch sits behind an identity check.  Three interleaved,
    min-of-repeats timings of the same streamed ranking:

    * **bare** — ``stats=None``, ``span=None`` (the free path),
    * **null recorder** — ``span=NULL_SPAN``; its overhead over bare is
      what ``--fail-obs-overhead`` gates,
    * **enabled** — a :class:`PostorderStats` plus a live
      :class:`~repro.obs.Span`; its overhead is recorded for context
      (timing every candidate batch has a real, acceptable cost).
    """
    from repro.obs.trace import NULL_SPAN, Span

    query = Tree.from_bracket(DEFAULT_QUERIES[name])
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, f"{name}.xml")
        nodes = generate(name, path, target_nodes=target_nodes, seed=seed)
        # Materialise the postorder pairs once so the timed paths
        # measure the engine alone, not XML parsing.
        pairs = list(PostorderQueue.from_xml_file(path))
    import gc

    bare, null_rec, enabled = [], [], []
    rankings_agree = True
    # One untimed pass warms allocator pools and interned labels so the
    # first timed variant is not penalised.
    baseline = [m.distance for m in tasm_postorder(query, pairs, k)]
    gc_was_enabled = gc.isenabled()
    gc.disable()  # a collection landing inside one variant skews min()
    try:
        for _ in range(repeats):
            # Interleave the variants so drift (thermal, cache, a noisy
            # neighbour) hits all of them evenly.
            t0 = time.perf_counter()
            off = tasm_postorder(query, pairs, k)
            bare.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            nul = tasm_postorder(query, pairs, k, span=NULL_SPAN)
            null_rec.append(time.perf_counter() - t0)
            stats = PostorderStats()
            span = Span("bench_obs")
            t0 = time.perf_counter()
            on = tasm_postorder(query, pairs, k, stats=stats, span=span)
            enabled.append(time.perf_counter() - t0)
            span.finish()
            rankings_agree &= (
                baseline == [m.distance for m in off]
                == [m.distance for m in nul]
                == [m.distance for m in on]
            )
            gc.collect()  # reclaim between repeats, outside the clocks
    finally:
        if gc_was_enabled:
            gc.enable()
    b_min, n_min, e_min = min(bare), min(null_rec), min(enabled)
    return {
        "dataset": name,
        "doc_nodes": nodes,
        "k": k,
        "repeats": repeats,
        "bare_seconds": round(b_min, 6),
        "null_recorder_seconds": round(n_min, 6),
        "enabled_seconds": round(e_min, 6),
        "null_recorder_overhead": (
            round(n_min / b_min - 1.0, 4) if b_min else 0.0
        ),
        "enabled_overhead": round(e_min / b_min - 1.0, 4) if b_min else 0.0,
        "rankings_agree": rankings_agree,
        "note": (
            "min-of-repeats, interleaved; null_recorder_overhead is the "
            "gated disabled-instrumentation cost, enabled_overhead the "
            "informational cost of full stats+span collection"
        ),
    }


def _load_previous(path: str) -> dict:
    """Previous bench rows keyed by document size (missing file: {})."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return {row["doc_nodes"]: row for row in payload.get("results", [])}
    except (OSError, ValueError, KeyError):
        return {}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes",
        default="200,1000,5000,20000",
        help="comma-separated document sizes (default 200,1000,5000,20000)",
    )
    parser.add_argument("--query-size", type=int, default=6)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--dataset",
        choices=["xmark", "dblp", "psd", "none"],
        default="xmark",
        help="document-scale corpus to stream (default xmark; 'none' skips)",
    )
    parser.add_argument(
        "--dataset-nodes",
        type=int,
        default=100_000,
        help="target node count for the corpus run (default 100000)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                             "BENCH_tasm.json"),
        help="output JSON path (default: repo-root BENCH_tasm.json)",
    )
    parser.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts for the parallel-scaling "
        "series at the corpus size (default 1,2,4; empty skips)",
    )
    parser.add_argument(
        "--serve-concurrency",
        default="1,8,32",
        help="comma-separated client concurrency levels for the serving "
        "series at the corpus size (default 1,8,32; empty skips)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI (overrides --sizes/--k/--dataset)",
    )
    parser.add_argument(
        "--fail-below-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless postorder/dynamic speedup at the largest "
        "size is >= X",
    )
    parser.add_argument(
        "--fail-parallel-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless the best multi-worker wall-clock speedup over "
        "the single pass is >= X; enforced only when cpu_count >= 2 "
        "(a single-core host cannot show a wall-clock win)",
    )
    parser.add_argument(
        "--fail-serve-coalesce-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless req/s at the highest serve concurrency is "
        ">= X times req/s at concurrency 1 (the scan coalescer's win); "
        "enforced only when cpu_count >= 2 — recorded as skipped, "
        "never silently passed, on single-core hosts",
    )
    parser.add_argument(
        "--fail-obs-overhead",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 if disabled instrumentation (the NULL_SPAN null "
        "recorder) slows the streamed corpus ranking by more than the "
        "fraction X (e.g. 0.05 = 5%%) over the bare run; recorded as "
        "skipped when --dataset none",
    )
    parser.add_argument(
        "--fail-index-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless indexed serving is >= X times faster than "
        "streamed serving on the corpus store (or the responses "
        "diverge); enforced only at corpus scale (>= 100000 nodes) — "
        "recorded as skipped, never silently passed, on smaller runs",
    )
    parser.add_argument(
        "--fail-kernel-numpy-speedup",
        type=float,
        default=None,
        metavar="X",
        help="exit 1 unless the numpy kernel's speedup over pure Python "
        "at the largest size is >= X (or the distances diverge); "
        "recorded as skipped — never silently passed — when numpy is "
        "not installed",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes, k, query_size = [60], 3, 4
        dataset, dataset_nodes = "dblp", 5000
        workers_list = [1, 2]
        serve_concurrency = [1, 2]
    else:
        sizes = [int(s) for s in args.sizes.split(",") if s]
        k, query_size = args.k, args.query_size
        dataset, dataset_nodes = args.dataset, args.dataset_nodes
        workers_list = [int(w) for w in args.workers.split(",") if w]
        serve_concurrency = [
            int(c) for c in args.serve_concurrency.split(",") if c
        ]

    previous = _load_previous(args.out)
    results = []
    for n in sizes:
        row = bench_one(n, query_size, k, args.seed, previous)
        results.append(row)
        speedup_note = row.get("kernel_speedup_vs_previous_bench")
        numpy_note = row["ted_kernel_numpy"].get("speedup_vs_python")
        print(
            f"n={n:>7}  kernel {row['ted_kernel']['nodes_per_sec']:>9} n/s  "
            + (f"numpy {numpy_note}x  " if numpy_note is not None else "")
            + f"dynamic {row['dynamic']['nodes_per_sec']:>9} n/s  "
            f"postorder {row['postorder']['nodes_per_sec']:>9} n/s  "
            f"peak_ring={row['postorder']['peak_ring_buffer']}"
            f"/{row['postorder']['ring_capacity']}  "
            f"agree={row['rankings_agree']}"
            + (f"  vs-prev={speedup_note}x" if speedup_note else "")
        )

    dataset_row = None
    if dataset != "none":
        dataset_row = bench_dataset(dataset, dataset_nodes, k, args.seed)
        post = dataset_row["postorder_streamed"]
        print(
            f"{dataset}({dataset_row['doc_nodes']} nodes)  "
            f"streamed {post['nodes_per_sec']} n/s  "
            f"peak_ring={post['peak_ring_buffer']}"
            f"<=bound={dataset_row['ring_bound']}: "
            f"{dataset_row['ring_peak_within_bound']}  "
            f"agree={dataset_row['rankings_agree']}"
        )

    parallel_row = None
    if dataset != "none" and workers_list:
        parallel_row = bench_parallel(
            dataset, dataset_nodes, k, args.seed, workers_list
        )
        for entry in parallel_row["series"]:
            print(
                f"parallel w={entry['workers']} ({entry['shards']} shards)  "
                f"{entry['seconds']}s  "
                f"speedup={entry['speedup_vs_single_pass']}x  "
                f"critical-path={entry['speedup_critical_path']}x  "
                f"identical={entry['ranking_identical_to_single_pass']}  "
                f"peaks<=bound={entry['worker_peaks_within_bound']}"
            )

    obs_row = None
    if dataset != "none":
        obs_row = bench_obs_overhead(dataset, dataset_nodes, k, args.seed)
        print(
            f"obs overhead: bare {obs_row['bare_seconds']}s  "
            f"null-recorder {obs_row['null_recorder_seconds']}s "
            f"({obs_row['null_recorder_overhead'] * 100:+.2f}%)  "
            f"enabled {obs_row['enabled_seconds']}s "
            f"({obs_row['enabled_overhead'] * 100:+.2f}%)  "
            f"agree={obs_row['rankings_agree']}"
        )

    serve_row = None
    if dataset != "none" and serve_concurrency:
        serve_row = bench_serve(dataset, dataset_nodes, k, args.seed, serve_concurrency)
        for entry in serve_row["series"]:
            print(
                f"serve c={entry['concurrency']:>3}  {entry['seconds']}s  "
                f"{entry['requests_per_sec']} req/s  "
                f"identical={entry['rankings_identical']}"
            )

    index_row = None
    if dataset != "none":
        index_row = bench_index(dataset, dataset_nodes, k, args.seed)
        print(
            f"index: stream {index_row['stream_seconds']}s  "
            f"indexed {index_row['indexed_seconds']}s  "
            f"speedup={index_row['speedup_indexed_vs_stream']}x  "
            f"identical={index_row['rankings_identical']}  "
            f"lb_skips={index_row['index_lb_skips']}  "
            f"dedup={index_row['index_dedup_hits']}"
        )

    ok = all(r["rankings_agree"] for r in results)
    # Wherever both kernel engines ran, their prefix arrays must be
    # bit-identical — a hard gate, independent of the speedup flag.
    for row in results:
        if row["ted_kernel_numpy"].get("distances_identical_to_python") is False:
            print(
                f"FAIL: numpy kernel distances diverged from python at "
                f"n={row['doc_nodes']}",
                file=sys.stderr,
            )
            ok = False
    if dataset_row is not None:
        ok = ok and dataset_row["rankings_agree"]
        ok = ok and dataset_row["ring_peak_within_bound"]
    if parallel_row is not None:
        # Hard correctness gates; the wall-clock speedup is gated
        # separately below because it is hardware-bound.
        ok = ok and all(
            e["ranking_identical_to_single_pass"]
            and e["worker_peaks_within_bound"]
            for e in parallel_row["series"]
        )
    if serve_row is not None and not serve_row["rankings_identical_to_tasm_batch"]:
        print("FAIL: a served ranking diverged from tasm_batch", file=sys.stderr)
        ok = False
    if args.fail_serve_coalesce_speedup is not None and serve_row is not None:
        threshold = args.fail_serve_coalesce_speedup
        cpu_count = serve_row["cpu_count"] or 1
        entries = serve_row["series"]
        base = next((e for e in entries if e["concurrency"] == 1), None)
        top = max(
            entries, key=lambda e: e["concurrency"], default=None
        )
        if cpu_count < 2:
            # Same recorded-skip discipline as the parallel gate: a
            # single-core runner must not read as a pass.
            serve_row["coalesce_gate"] = {
                "threshold": threshold,
                "enforced": False,
                "reason": f"cpu_count={cpu_count} < 2",
            }
            print(
                f"serve coalesce gate skipped: cpu_count={cpu_count} "
                "(needs >= 2 cores for a fair req/s comparison)"
            )
        elif (
            base is None
            or top is None
            or top["concurrency"] <= 1
            or not base["requests_per_sec"]
            or not top["requests_per_sec"]
        ):
            serve_row["coalesce_gate"] = {
                "threshold": threshold,
                "enforced": False,
                "reason": "no multi-concurrency serve series",
            }
            print("serve coalesce gate skipped: no multi-concurrency series")
        else:
            speedup = round(
                top["requests_per_sec"] / base["requests_per_sec"], 3
            )
            passed = speedup >= threshold
            serve_row["coalesce_gate"] = {
                "threshold": threshold,
                "enforced": True,
                "concurrency": top["concurrency"],
                "speedup_vs_sequential": speedup,
                "scans_per_request": top["scans_per_request"],
                "passed": passed,
            }
            if not passed:
                print(
                    f"FAIL: coalesced req/s at c={top['concurrency']} is "
                    f"only {speedup}x the sequential baseline "
                    f"(< {threshold})",
                    file=sys.stderr,
                )
                ok = False
    if args.fail_below_speedup is not None and results:
        speedup = results[-1]["speedup_postorder_over_dynamic"] or 0.0
        if speedup < args.fail_below_speedup:
            print(
                f"FAIL: speedup_postorder_over_dynamic {speedup} < "
                f"{args.fail_below_speedup} at n={results[-1]['doc_nodes']}",
                file=sys.stderr,
            )
            ok = False
    if args.fail_parallel_speedup is not None and parallel_row is not None:
        multi = [e for e in parallel_row["series"] if e["workers"] > 1]
        cpu_count = parallel_row["cpu_count"] or 1
        if cpu_count < 2:
            # Explicitly recorded as skipped: a skipped-by-accident gate
            # on a single-core runner must not read as a pass.
            parallel_row["wall_clock_gate"] = {
                "threshold": args.fail_parallel_speedup,
                "enforced": False,
                "reason": f"cpu_count={cpu_count} < 2",
            }
            print(
                f"parallel wall-clock gate skipped: cpu_count={cpu_count} "
                "(needs >= 2 cores to manifest)"
            )
        elif multi:
            best = max(e["speedup_vs_single_pass"] or 0.0 for e in multi)
            passed = best >= args.fail_parallel_speedup
            parallel_row["wall_clock_gate"] = {
                "threshold": args.fail_parallel_speedup,
                "enforced": True,
                "best_speedup": best,
                "passed": passed,
            }
            if not passed:
                print(
                    f"FAIL: best multi-worker wall-clock speedup {best} < "
                    f"{args.fail_parallel_speedup} (cpu_count={cpu_count})",
                    file=sys.stderr,
                )
                ok = False
        else:
            parallel_row["wall_clock_gate"] = {
                "threshold": args.fail_parallel_speedup,
                "enforced": False,
                "reason": "no multi-worker series (--workers has no entry > 1)",
            }
            print(
                "parallel wall-clock gate skipped: no multi-worker series"
            )

    if obs_row is not None and not obs_row["rankings_agree"]:
        print(
            "FAIL: instrumented and bare rankings diverged in the obs "
            "overhead series",
            file=sys.stderr,
        )
        ok = False
    if args.fail_obs_overhead is not None:
        threshold = args.fail_obs_overhead
        if obs_row is None:
            obs_row = {
                "gate": {
                    "threshold": threshold,
                    "enforced": False,
                    "reason": "--dataset none (no corpus to time)",
                }
            }
            print("obs overhead gate skipped: --dataset none")
        else:
            overhead = obs_row["null_recorder_overhead"]
            passed = overhead <= threshold
            obs_row["gate"] = {
                "threshold": threshold,
                "enforced": True,
                "null_recorder_overhead": overhead,
                "passed": passed,
            }
            if not passed:
                print(
                    f"FAIL: disabled-instrumentation (null recorder) "
                    f"overhead {overhead * 100:.2f}% > "
                    f"{threshold * 100:.2f}% on the "
                    f"{obs_row['doc_nodes']}-node corpus",
                    file=sys.stderr,
                )
                ok = False

    if index_row is not None and not index_row["rankings_identical"]:
        print(
            "FAIL: indexed serving diverged from streamed serving",
            file=sys.stderr,
        )
        ok = False
    if args.fail_index_speedup is not None:
        threshold = args.fail_index_speedup
        if index_row is None:
            index_row = {
                "gate": {
                    "threshold": threshold,
                    "enforced": False,
                    "reason": "--dataset none (no corpus to serve)",
                }
            }
            print("index speedup gate skipped: --dataset none")
        elif index_row["doc_nodes"] < 100_000:
            # Recorded-skip discipline: the index's win comes from not
            # scanning the corpus, so a sub-corpus run is noise-bound
            # and must not read as a pass.
            index_row["gate"] = {
                "threshold": threshold,
                "enforced": False,
                "reason": f"doc_nodes={index_row['doc_nodes']} < 100000",
            }
            print(
                f"index speedup gate skipped: corpus has "
                f"{index_row['doc_nodes']} nodes (needs >= 100000)"
            )
        else:
            speedup = index_row["speedup_indexed_vs_stream"] or 0.0
            passed = speedup >= threshold
            index_row["gate"] = {
                "threshold": threshold,
                "enforced": True,
                "speedup_indexed_vs_stream": speedup,
                "passed": passed,
            }
            if not passed:
                print(
                    f"FAIL: indexed serving is only {speedup}x the "
                    f"streamed baseline (< {threshold}) on the "
                    f"{index_row['doc_nodes']}-node corpus",
                    file=sys.stderr,
                )
                ok = False

    kernel_numpy_gate = None
    if args.fail_kernel_numpy_speedup is not None and results:
        threshold = args.fail_kernel_numpy_speedup
        last_numpy = results[-1]["ted_kernel_numpy"]
        speedup = last_numpy.get("speedup_vs_python")
        if speedup is None:
            # Explicitly recorded as skipped, like the cpu-aware
            # parallel gate: an accidental no-numpy environment (or a
            # largest size under the engine cutoff) must not read as a
            # pass.
            reason = last_numpy.get("skipped", "no numpy series")
            kernel_numpy_gate = {
                "threshold": threshold,
                "enforced": False,
                "reason": reason,
            }
            print(f"kernel numpy gate skipped: {reason}")
        else:
            passed = speedup >= threshold
            kernel_numpy_gate = {
                "threshold": threshold,
                "enforced": True,
                "speedup": speedup,
                "passed": passed,
            }
            if not passed:
                print(
                    f"FAIL: numpy kernel speedup {speedup} < {threshold} "
                    f"at n={results[-1]['doc_nodes']}",
                    file=sys.stderr,
                )
                ok = False

    payload = {
        "bench": "tasm",
        "query_size": query_size,
        "k": k,
        "seed": args.seed,
        "cost_model": "unit",
        "numpy_available": numpy_backend_available(),
        "kernel_numpy_gate": kernel_numpy_gate,
        "results": results,
        "dataset": dataset_row,
        "parallel": parallel_row,
        "obs_overhead": obs_row,
        "serve": serve_row,
        "index": index_row,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {os.path.abspath(args.out)}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
