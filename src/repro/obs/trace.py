"""Lightweight spans and request ids — the tracing half of ``repro.obs``.

A :class:`Span` is a named timer with attributes and children; trees of
spans describe where one request's time went (cache lookup, stream
scan, candidate evaluation batches, shard dispatch, merge).  The design
is shaped by two constraints:

* **Zero cost when disabled.**  Every instrumented call site takes an
  optional span and does nothing when it is ``None`` (or the falsy
  :data:`NULL_SPAN`); the hot loops of the streaming core contain no
  tracing calls at all, only ``if span is not None`` guards at batch
  boundaries.  The bench enforces this with an overhead gate.
* **Process boundaries.**  The sharded engine runs in worker processes
  whose clocks are not comparable to the coordinator's.  Spans
  therefore carry *durations*, not absolute timestamps, and serialise
  to plain dicts (:meth:`Span.to_dict`) that travel through the
  picklable ``ShardResult`` path and are grafted back into the
  coordinator's tree with :meth:`Span.graft`.

There is no background collector and no sampling: a span tree lives
exactly as long as the request that created it, and is rendered either
into a structured slow-request log line or the CLI ``--profile``
report.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "Tracer",
    "new_request_id",
    "render_span_tree",
]

#: Children recorded per span before further children are only counted
#: (``attrs["dropped_children"]``) — a request evaluating tens of
#: thousands of candidate batches must not build a span per batch.
MAX_CHILDREN = 64

_id_counter = itertools.count(1)


def new_request_id() -> str:
    """A process-unique request id: ``<pid hex>-<random>-<counter>``.

    Not globally unique like a UUID, but cheap, short enough to read in
    a log line, and unique per process lifetime — which is what request
    correlation needs.  Callers that already have an id (the
    ``X-Request-Id`` header) keep theirs.
    """
    return (
        f"{os.getpid():x}-{os.urandom(4).hex()}-{next(_id_counter):x}"
    )


class Span:
    """One named, nestable timer with attributes.

    Usable as a context manager (``with span.child("scan"):``) or via
    explicit :meth:`finish`.  ``seconds`` is 0.0 until finished.
    """

    __slots__ = ("name", "attrs", "children", "seconds", "_t0")

    def __init__(self, name: str, attrs: Optional[Dict] = None):
        self.name = name
        self.attrs: Dict = attrs if attrs is not None else {}
        self.children: List["Span"] = []
        self.seconds = 0.0
        self._t0 = time.perf_counter()

    def child(self, name: str, **attrs) -> "Span":
        """Start a child span (capped at :data:`MAX_CHILDREN` per span)."""
        if len(self.children) >= MAX_CHILDREN:
            self.attrs["dropped_children"] = (
                self.attrs.get("dropped_children", 0) + 1
            )
            return NULL_SPAN
        span = Span(name, attrs or None)
        if span.attrs is None:  # pragma: no cover - attrs=None normalised
            span.attrs = {}
        self.children.append(span)
        return span

    def finish(self) -> "Span":
        """Stop the timer (idempotent: the first call wins)."""
        if self.seconds == 0.0:
            self.seconds = time.perf_counter() - self._t0
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    # ------------------------------------------------------------------
    # Serialisation across the multiprocessing boundary
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-dict form: picklable, JSON-ready, clock-free."""
        row: Dict[str, Any] = {"name": self.name, "seconds": round(self.seconds, 6)}
        if self.attrs:
            row["attrs"] = self.attrs
        if self.children:
            row["children"] = [c.to_dict() for c in self.children]
        return row

    def graft(self, payload: Dict[str, Any]) -> "Span":
        """Attach a serialised span tree (from another process) as a child."""
        span = Span(payload.get("name", "<span>"), dict(payload.get("attrs", {})))
        span.seconds = float(payload.get("seconds", 0.0))
        self.children.append(span)
        for child in payload.get("children", ()):
            span.graft(child)
        return span


class NullSpan:
    """The disabled recorder: every operation is a no-op, truthiness False.

    Call sites can hold a ``NULL_SPAN`` and use the full span API
    without branching; hot paths that want literally zero work test
    ``if span:`` (or ``is not None`` after normalising) instead.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def child(self, name: str, **attrs) -> "NullSpan":
        return self

    def finish(self) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"name": "<null>", "seconds": 0.0}

    def graft(self, payload: Dict[str, Any]) -> "NullSpan":
        return self

    @property
    def name(self) -> str:
        return "<null>"

    @property
    def seconds(self) -> float:
        return 0.0

    @property
    def attrs(self) -> Dict[str, object]:
        return {}

    @property
    def children(self) -> List["Span"]:
        return []


#: The shared no-op span; safe to pass anywhere a span is accepted.
NULL_SPAN = NullSpan()


class Tracer:
    """Span factory with one switch.

    ``tracer.span(name)`` returns a live :class:`Span` when enabled and
    :data:`NULL_SPAN` otherwise, so the calling code never branches on
    configuration — only on the (falsy) span it got back.
    """

    __slots__ = ("enabled",)

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def span(self, name: str, **attrs):
        if not self.enabled:
            return NULL_SPAN
        return Span(name, attrs or None)


def render_span_tree(span, indent: str = "  ") -> List[str]:
    """Human-readable lines for a span tree (the ``--profile`` report).

    Accepts a :class:`Span` or a :meth:`Span.to_dict` payload.
    """
    if isinstance(span, Span):
        span = span.to_dict()
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        attrs = node.get("attrs") or {}
        extras = " ".join(f"{k}={v}" for k, v in attrs.items())
        lines.append(
            f"{indent * depth}{node.get('name')}"
            f"  {node.get('seconds', 0.0):.6f}s"
            + (f"  {extras}" if extras else "")
        )
        for child in node.get("children", ()):
            walk(child, depth + 1)

    walk(span, 0)
    return lines
