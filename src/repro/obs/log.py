"""Structured JSON log lines.

One event = one JSON object on one line, written to a stream (stderr by
default).  The serving layer uses this for slow-request reports: a
single line carrying the request id, route, status, total latency, and
the per-stage span breakdown, greppable by request id and parseable by
any log pipeline without a logging framework dependency.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Optional, TextIO

__all__ = ["jsonlog"]


def jsonlog(
    event: str,
    stream: Optional[TextIO] = None,
    **fields,
) -> str:
    """Emit (and return) one structured log line.

    ``event`` names the line (e.g. ``slow_request``); ``fields`` are
    arbitrary JSON-serialisable values.  A wall-clock ``ts`` (epoch
    seconds) is stamped here — the only place the observability stack
    uses wall time, since spans carry durations only.  Non-serialisable
    values are degraded to ``repr`` rather than losing the line.
    """
    record = {"event": event, "ts": round(time.time(), 3)}
    record.update(fields)
    try:
        line = json.dumps(record, sort_keys=True, default=repr)
    except (TypeError, ValueError):  # pragma: no cover - default=repr covers
        line = json.dumps(
            {"event": event, "error": "unserialisable record"}, sort_keys=True
        )
    out = stream if stream is not None else sys.stderr
    print(line, file=out, flush=True)
    return line
