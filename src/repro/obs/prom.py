"""Prometheus text exposition — rendering and a strict parser.

The serving layer's ``GET /metrics?format=prometheus`` renders counter,
gauge, and histogram families in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4).  Rendering is a pure function over plain Python
numbers so :class:`repro.serve.metrics.ServeMetrics` stays the single
source of truth; nothing here keeps state.

:func:`parse_prometheus` is the strict inverse used by the CI smoke
script and the tests: it validates line shapes, label syntax, and
``# TYPE`` declarations, and returns samples keyed by
``name{labels}`` so counter monotonicity can be asserted across two
scrapes.  Keeping parser and renderer in one module means a format
drift fails CI instead of silently producing unscrapable output.
"""

from __future__ import annotations

import math
import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricFamily",
    "format_value",
    "histogram_family",
    "parse_prometheus",
    "render_families",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# The labels group matches whole key="value" pairs (with escapes), not
# [^}]* — a label value may legally contain "}" (e.g. a route template
# like /v1/queries/{name}).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>(?:\s*[a-zA-Z_][a-zA-Z0-9_]*\s*=\s*"
    r'"(?:[^"\\]|\\.)*"\s*,?)*)\})?'
    r" (?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value) -> str:
    """Render a sample value; integers stay integral, infinities are ``+Inf``."""
    if value is None:
        return "NaN"
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class MetricFamily:
    """One ``# TYPE`` block: a named metric plus its labelled samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"invalid metric kind: {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        #: (suffix, labels, value) — suffix is "" or "_bucket"/"_sum"/"_count".
        self.samples: List[Tuple[str, Dict[str, str], float]] = []

    def add(self, value, labels: Optional[Dict[str, str]] = None, suffix: str = ""):
        for key in labels or ():
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name: {key!r}")
        self.samples.append((suffix, dict(labels or {}), value))
        return self

    def render(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for suffix, labels, value in self.samples:
            label_str = ""
            if labels:
                inner = ",".join(
                    f'{k}="{_escape_label(v)}"' for k, v in labels.items()
                )
                label_str = "{" + inner + "}"
            lines.append(
                f"{self.name}{suffix}{label_str} {format_value(value)}"
            )
        return lines


def histogram_family(
    name: str,
    buckets: Sequence[Tuple[float, int]],
    total_sum: float,
    help: str = "",
    labels: Optional[Dict[str, str]] = None,
) -> MetricFamily:
    """Build a histogram family from ``(upper_bound, cumulative_count)`` buckets.

    Bounds must be increasing and counts cumulative (non-decreasing);
    a final ``+Inf`` bucket equal to the total count is appended if the
    caller did not include one.
    """
    family = MetricFamily(name, "histogram", help)
    base = dict(labels or {})
    prev_bound = -math.inf
    prev_count = 0
    total = 0
    for bound, count in buckets:
        if bound <= prev_bound:
            raise ValueError(f"histogram buckets not increasing at {bound}")
        if count < prev_count:
            raise ValueError(f"histogram counts not cumulative at {bound}")
        prev_bound, prev_count, total = bound, count, count
        family.add(
            count,
            {**base, "le": format_value(bound)},
            suffix="_bucket",
        )
    if not buckets or not math.isinf(prev_bound):
        family.add(total, {**base, "le": "+Inf"}, suffix="_bucket")
    family.add(total_sum, base or None, suffix="_sum")
    family.add(total, base or None, suffix="_count")
    return family


def render_families(families: Iterable[MetricFamily]) -> str:
    """The full exposition body; ends with a newline as scrapers expect."""
    lines: List[str] = []
    for family in families:
        lines.extend(family.render())
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Strictly parse a text exposition body.

    Returns ``{family_name: {"type": ..., "samples": {sample_key: value}}}``
    where ``sample_key`` is ``name`` or ``name{k="v",...}`` with labels
    sorted — stable across scrapes, so monotonicity checks can compare
    two parses sample by sample.  Raises ``ValueError`` on any malformed
    line, on samples preceding their ``# TYPE``, or on a histogram
    missing its ``_sum``/``_count``/``+Inf`` bucket.
    """
    families: Dict[str, Dict] = {}
    current: Optional[str] = None
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                raise ValueError(f"malformed TYPE line: {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name in TYPE line: {line!r}")
            if name in families:
                raise ValueError(f"duplicate TYPE for {name}")
            families[name] = {"type": parts[3], "samples": {}}
            current = name
            continue
        if line.startswith("#"):
            continue  # HELP / comments
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        family_name = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                family_name = base
                break
        if family_name not in families:
            raise ValueError(f"sample before TYPE declaration: {line!r}")
        if current != family_name:
            raise ValueError(f"sample outside its TYPE block: {line!r}")
        labels_text = match.group("labels")
        labels: Dict[str, str] = {}
        if labels_text:
            consumed = 0
            for pair in _LABEL_PAIR_RE.finditer(labels_text):
                labels[pair.group("key")] = pair.group("value")
                consumed = pair.end()
            leftover = labels_text[consumed:].strip().strip(",")
            if leftover:
                raise ValueError(f"malformed labels in: {line!r}")
        key = sample_name
        if labels:
            inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
            key = f"{sample_name}{{{inner}}}"
        samples = families[family_name]["samples"]
        if key in samples:
            raise ValueError(f"duplicate sample: {key}")
        samples[key] = _parse_value(match.group("value"))
    for name, family in families.items():
        if family["type"] != "histogram":
            continue
        keys = family["samples"].keys()
        if not any(k.startswith(f"{name}_sum") for k in keys):
            raise ValueError(f"histogram {name} missing _sum")
        if not any(k.startswith(f"{name}_count") for k in keys):
            raise ValueError(f"histogram {name} missing _count")
        if not any('le="+Inf"' in k for k in keys if k.startswith(f"{name}_bucket")):
            raise ValueError(f"histogram {name} missing +Inf bucket")
    return families
