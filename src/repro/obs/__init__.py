"""Observability: spans, engine counters exposition, structured logs.

The paper's claims — candidate pruning under ``tau = k + 2|Q| - 1`` and
memory independent of document size — are invariants worth *watching*,
not just testing.  This package is the zero-dependency layer that makes
them visible at runtime:

* :mod:`~repro.obs.trace` — nested :class:`Span` timers with request
  ids, a falsy :data:`NULL_SPAN` null recorder, and dict serialisation
  that survives the multiprocessing shard boundary.
* :mod:`~repro.obs.prom`  — Prometheus text exposition (render *and*
  strict parse, so CI can verify its own output).
* :mod:`~repro.obs.log`   — one-line structured JSON events (slow
  request reports).

The engine itself stays import-free of this package: ``PostorderStats``
carries the counters, and spans are passed in as plain optional
arguments — ``repro.obs`` only defines the vocabulary.
"""

from .log import jsonlog
from .prom import (
    MetricFamily,
    format_value,
    histogram_family,
    parse_prometheus,
    render_families,
)
from .trace import (
    MAX_CHILDREN,
    NULL_SPAN,
    NullSpan,
    Span,
    Tracer,
    new_request_id,
    render_span_tree,
)

__all__ = [
    "MAX_CHILDREN",
    "MetricFamily",
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "Tracer",
    "format_value",
    "histogram_family",
    "jsonlog",
    "new_request_id",
    "parse_prometheus",
    "render_families",
    "render_span_tree",
]
