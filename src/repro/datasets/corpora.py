"""Document-scale synthetic corpora: XMark, DBLP, and PSD lookalikes.

The paper's experiments (Section VI) run on three real-world document
classes: the XMark auction benchmark, the DBLP bibliography, and the
Protein Sequence Database — all record-sequence XML whose documents
reach multi-gigabyte sizes while individual records stay small.  These
generators reproduce that *shape* (tag vocabulary, record structure,
attribute/text mix, fanout) at any requested node count, streaming the
XML straight to disk so a 10^6-node document never exists in memory.

All generators are deterministic given a seed.  The returned value is
the exact number of tree nodes the file parses into under the default
:func:`repro.xmlio.parse.iterparse_postorder` conventions (elements,
``@attribute`` nodes with their text children, non-whitespace text),
which tests assert against the parser itself.
"""

from __future__ import annotations

import random
from typing import Callable, Dict

from ..errors import DatasetError
from .writer import XmlStreamWriter

__all__ = [
    "generate",
    "generate_xmark",
    "generate_dblp",
    "generate_psd",
    "GENERATORS",
    "DEFAULT_QUERIES",
]

_WORDS = (
    "quick brown fox lazy dog amber circuit delta echo futures gold "
    "harbor index jasper kernel lumen matrix nickel onyx prism quartz "
    "raven sierra topaz umber violet willow xenon yonder zephyr"
).split()

_SURNAMES = (
    "Smith Mueller Tanaka Rossi Novak Silva Dubois Larsen Kim Okafor "
    "Petrov Jansen Moreau Costa Haddad Lindgren Bauer Marino Svoboda"
).split()

_AMINO = "ACDEFGHIKLMNPQRSTVWY"


def _words(rng: random.Random, lo: int, hi: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(lo, hi)))


def _person_name(rng: random.Random) -> str:
    return f"{rng.choice(_WORDS).capitalize()} {rng.choice(_SURNAMES)}"


def _open_file(path: str) -> object:
    return open(path, "w", encoding="utf-8")


def generate_xmark(path: str, target_nodes: int = 100_000, seed: int = 0) -> int:
    """XMark-lookalike auction site document; returns the node count.

    ``site`` holds ``people``, ``open_auctions`` and ``regions``
    sections filled with person/auction/item records (attributes,
    nested text, variable bidder fanout) until the node budget is met.
    """
    _check_target(target_nodes)
    rng = random.Random(seed)
    with _open_file(path) as fh:
        w = XmlStreamWriter(fh)
        w.start("site")
        w.start("people")
        while w.nodes < target_nodes * 2 // 5:
            w.start("person", {"id": f"person{rng.randrange(10**6)}"})
            w.leaf("name", _person_name(rng))
            w.leaf("emailaddress", f"mailto:{rng.choice(_WORDS)}@example.org")
            if rng.random() < 0.6:
                w.start("address")
                w.leaf("street", f"{rng.randint(1, 99)} {rng.choice(_WORDS)} St")
                w.leaf("city", rng.choice(_WORDS).capitalize())
                w.leaf("country", rng.choice(("US", "DE", "JP", "BR", "IT")))
                w.end()
            if rng.random() < 0.4:
                w.start("profile", {"income": f"{rng.randint(20, 200)}000"})
                for _ in range(rng.randint(1, 3)):
                    w.leaf("interest", rng.choice(_WORDS))
                w.end()
            w.end()
        w.end()
        w.start("open_auctions")
        while w.nodes < target_nodes * 4 // 5:
            w.start("open_auction", {"id": f"auction{rng.randrange(10**6)}"})
            w.leaf("initial", f"{rng.randint(1, 500)}.{rng.randint(0, 99):02d}")
            for _ in range(rng.randint(0, 4)):
                w.start("bidder")
                w.leaf("date", f"{rng.randint(1, 28):02d}/{rng.randint(1, 12):02d}/2009")
                w.leaf("increase", f"{rng.randint(1, 50)}.00")
                w.end()
            w.leaf("itemref", "", {"item": f"item{rng.randrange(10**6)}"})
            w.leaf("seller", "", {"person": f"person{rng.randrange(10**6)}"})
            w.end()
        w.end()
        w.start("regions")
        w.start("namerica")
        while w.nodes < target_nodes:
            w.start("item", {"id": f"item{rng.randrange(10**6)}"})
            w.leaf("location", rng.choice(("United States", "Canada", "Mexico")))
            w.leaf("quantity", str(rng.randint(1, 9)))
            w.leaf("name", _words(rng, 1, 3))
            w.start("description")
            w.leaf("text", _words(rng, 4, 12))
            w.end()
            w.end()
        w.close()
        return w.nodes


def generate_dblp(path: str, target_nodes: int = 100_000, seed: int = 0) -> int:
    """DBLP-lookalike bibliography document; returns the node count.

    A flat sequence of ``article`` / ``inproceedings`` records under a
    single root — the shallow, wide shape whose record subtrees are the
    natural TASM candidates.
    """
    _check_target(target_nodes)
    rng = random.Random(seed)
    with _open_file(path) as fh:
        w = XmlStreamWriter(fh)
        w.start("dblp")
        while w.nodes < target_nodes:
            kind = rng.choice(("article", "article", "inproceedings"))
            key = f"{kind[:4]}/{rng.choice(_WORDS)}/{rng.randrange(10**5)}"
            w.start(kind, {"key": key, "mdate": f"200{rng.randint(0, 9)}-01-01"})
            for _ in range(rng.randint(1, 4)):
                w.leaf("author", _person_name(rng))
            w.leaf("title", _words(rng, 3, 9).capitalize() + ".")
            if kind == "article":
                w.leaf("journal", f"J. {rng.choice(_WORDS).capitalize()}")
                w.leaf("volume", str(rng.randint(1, 60)))
            else:
                w.leaf("booktitle", f"Proc. {rng.choice(_WORDS).upper()}")
            w.leaf("pages", f"{rng.randint(1, 400)}-{rng.randint(401, 800)}")
            w.leaf("year", str(rng.randint(1990, 2009)))
            if rng.random() < 0.5:
                w.leaf("ee", f"db/{rng.choice(_WORDS)}/{rng.randrange(10**4)}")
            w.end()
        w.close()
        return w.nodes


def generate_psd(path: str, target_nodes: int = 100_000, seed: int = 0) -> int:
    """Protein-Sequence-Database lookalike; returns the node count.

    ``ProteinEntry`` records with nested header/protein/organism
    sections, reference lists of variable fanout, and a long sequence
    text leaf — the deepest of the three shapes.
    """
    _check_target(target_nodes)
    rng = random.Random(seed)
    with _open_file(path) as fh:
        w = XmlStreamWriter(fh)
        w.start("ProteinDatabase")
        while w.nodes < target_nodes:
            uid = f"PSD{rng.randrange(10**7):07d}"
            w.start("ProteinEntry", {"id": uid})
            w.start("header")
            w.leaf("uid", uid)
            w.leaf("accession", f"A{rng.randrange(10**5):05d}")
            w.end()
            w.start("protein")
            w.leaf("name", _words(rng, 2, 5))
            w.leaf("classification", rng.choice(_WORDS))
            w.end()
            w.start("organism")
            w.leaf("source", f"{rng.choice(_WORDS).capitalize()} {rng.choice(_WORDS)}")
            w.leaf("common", rng.choice(_WORDS))
            w.end()
            for _ in range(rng.randint(1, 3)):
                w.start("reference")
                w.start("refinfo", {"refid": str(rng.randrange(10**4))})
                w.start("authors")
                for _ in range(rng.randint(1, 4)):
                    w.leaf("author", _person_name(rng))
                w.end()
                w.leaf("citation", _words(rng, 3, 8))
                w.leaf("year", str(rng.randint(1980, 2009)))
                w.end()
                w.end()
            w.start("sequence")
            w.text("".join(rng.choice(_AMINO) for _ in range(rng.randint(30, 90))))
            w.end()
            w.end()
        w.close()
        return w.nodes


#: Registry: corpus name -> generator function.
GENERATORS: Dict[str, Callable[..., int]] = {
    "xmark": generate_xmark,
    "dblp": generate_dblp,
    "psd": generate_psd,
}

#: A natural TASM query (bracket notation) per corpus, used by the
#: bench and as a CLI starting point.
DEFAULT_QUERIES: Dict[str, str] = {
    "xmark": "{person{name}{emailaddress}}",
    "dblp": "{article{author}{title}{year}}",
    "psd": "{reference{refinfo{authors{author}}{citation}}}",
}


def _check_target(target_nodes: int) -> None:
    if target_nodes < 10:
        raise DatasetError(
            f"target_nodes must be >= 10, got {target_nodes}"
        )


def generate(
    name: str, path: str, target_nodes: int = 100_000, seed: int = 0
) -> int:
    """Generate the corpus ``name`` into ``path``; returns node count.

    Dispatches over the XML corpora here and the JSON/HTML/AST workload
    corpora of :mod:`~repro.datasets.workloads` (lazy import: the
    frontends only load when one of their corpora is asked for).
    """
    from .workloads import WORKLOAD_GENERATORS

    generator = GENERATORS.get(name) or WORKLOAD_GENERATORS.get(name)
    if generator is None:
        known = ", ".join(sorted(GENERATORS) + sorted(WORKLOAD_GENERATORS))
        raise DatasetError(f"unknown dataset {name!r} (known: {known})") from None
    return generator(path, target_nodes=target_nodes, seed=seed)
