"""Streaming XML writer for the synthetic corpora.

Writes well-formed XML incrementally — memory stays O(open-element
depth) no matter how large the document grows — while counting the
nodes of the *tree* the document will parse into.  The accounting
mirrors :mod:`repro.xmlio.parse` exactly: an element is one node, an
attribute contributes two (the ``@name`` node plus its text-value
child), and a non-whitespace text segment is one node.  Whitespace
emitted between elements for readability is dropped by the parser and
therefore not counted.
"""

from __future__ import annotations

from typing import IO, Dict, List, Optional
from xml.sax.saxutils import escape, quoteattr

from ..errors import DatasetError

__all__ = ["XmlStreamWriter"]


class XmlStreamWriter:
    """Incremental XML writer with parser-accurate node accounting.

    ``nodes`` tracks how many nodes the written document will produce
    when parsed by :func:`repro.xmlio.parse.iterparse_postorder` with
    default settings, so corpus generators can stop at a node budget
    without ever materialising the document.
    """

    __slots__ = ("_fh", "_stack", "nodes")

    def __init__(self, fh: IO[str]):
        self._fh = fh
        self._stack: List[str] = []
        #: Number of tree nodes written so far (parser conventions).
        self.nodes = 0

    @property
    def depth(self) -> int:
        return len(self._stack)

    def start(self, tag: str, attrs: Optional[Dict[str, object]] = None) -> None:
        """Open ``<tag ...>``; attributes count two nodes each."""
        parts = [f"<{tag}"]
        if attrs:
            for name in sorted(attrs):
                parts.append(f" {name}={quoteattr(str(attrs[name]))}")
            self.nodes += 2 * len(attrs)
        parts.append(">")
        self._fh.write("".join(parts))
        self._stack.append(tag)
        self.nodes += 1

    def text(self, content: object) -> None:
        """Write character data; counts one node if non-whitespace."""
        raw = str(content)
        if raw.strip():
            self.nodes += 1
        self._fh.write(escape(raw))

    def end(self) -> None:
        """Close the innermost open element (newline-terminated)."""
        if not self._stack:
            raise DatasetError("end() with no open element")
        self._fh.write(f"</{self._stack.pop()}>\n")

    def leaf(self, tag: str, content: object, attrs: Optional[Dict] = None) -> None:
        """Convenience: ``<tag>content</tag>`` in one call."""
        self.start(tag, attrs)
        self.text(content)
        self.end()

    def close(self) -> None:
        """Close every still-open element."""
        while self._stack:
            self.end()
