"""Lookalike corpora for the non-XML workload frontends.

:mod:`~repro.datasets.corpora` reproduces the paper's XML document
classes; this module does the same for the :mod:`repro.frontends`
workloads, so benches and tests can exercise JSON/HTML/AST ranking at
any scale without shipping fixtures:

* ``apilog``  — a JSON API-gateway log: one top-level object whose
  ``entries`` array holds request/response records (nested client
  objects, optional parameter lists) — the repetitive-record shape
  where key-weighted ranking shines;
* ``htmlcat`` — an HTML product-catalog page: repeated ``div`` product
  cards (attributes, feature lists, void ``img`` tags) under a shared
  page skeleton;
* ``pypkg``   — a synthetic Python package directory: modules of
  generated functions and classes, plus one subpackage, for code-clone
  queries over an ingested source tree.

All generators are deterministic given a seed, stream straight to disk
(``pypkg`` writes one module at a time), and return the exact node
count the output parses into under the owning frontend's
``iterparse_postorder`` conventions — asserted against the parsers in
the tests, exactly like the XML corpora.
"""

from __future__ import annotations

import json
import os
import random
from html import escape
from typing import Callable, Dict, List, Optional, TextIO

from ..errors import DatasetError
from .corpora import _check_target, _person_name, _words, _WORDS

__all__ = [
    "generate_apilog",
    "generate_htmlcat",
    "generate_pypkg",
    "WORKLOAD_GENERATORS",
    "WORKLOAD_QUERIES",
]

_METHODS = ("GET", "GET", "GET", "POST", "PUT", "DELETE")
_STATUSES = (200, 200, 200, 201, 301, 404, 500)
_AGENTS = ("curl/8.0", "python-requests", "Mozilla/5.0", "okhttp/4.9")


def generate_apilog(path: str, target_nodes: int = 100_000, seed: int = 0) -> int:
    """JSON API-log lookalike; returns the jsonio node count.

    The file is one object — ``{"service": ..., "entries": [...]}`` —
    written record by record, so the document never exists in memory.
    Node accounting follows :func:`repro.frontends.jsonio.
    json_value_nodes`: one node per object/array/key/scalar.
    """
    _check_target(target_nodes)
    from ..frontends.jsonio import json_value_nodes

    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"service": "api-gateway", "entries": [\n')
        # object + $service + value + $entries + array
        nodes = 5
        first = True
        while nodes < target_nodes:
            record: Dict[str, object] = {
                "method": rng.choice(_METHODS),
                "path": "/" + "/".join(
                    rng.choice(_WORDS) for _ in range(rng.randint(1, 3))
                ),
                "status": rng.choice(_STATUSES),
                "latency_ms": rng.randint(1, 900),
                "client": {
                    "ip": ".".join(str(rng.randint(1, 254)) for _ in range(4)),
                    "agent": rng.choice(_AGENTS),
                },
            }
            if rng.random() < 0.5:
                record["params"] = [
                    rng.choice(_WORDS) for _ in range(rng.randint(1, 3))
                ]
            if rng.random() < 0.3:
                record["user"] = _person_name(rng)
            if rng.random() < 0.2:
                record["cached"] = rng.random() < 0.5
            fh.write(("" if first else ",\n") + json.dumps(record))
            nodes += json_value_nodes(record)
            first = False
        fh.write("\n]}\n")
    return nodes


class _HtmlCountingWriter:
    """Incremental HTML writer with htmlio-accurate node accounting.

    Mirrors :class:`~repro.datasets.writer.XmlStreamWriter`, counting
    under :func:`repro.frontends.htmlio.iterparse_postorder`'s
    conventions: the synthetic ``#document`` root, one node per
    element, two per attribute (``@name`` plus its ``Text`` child,
    empty values included), one per non-whitespace text run.
    """

    def __init__(self, fh: TextIO) -> None:
        self.fh = fh
        self.nodes = 1  # the synthetic #document root
        self._stack: List[str] = []

    def _write_tag(self, tag: str, attrs: Optional[Dict[str, str]]) -> None:
        self.fh.write(f"<{tag}")
        for name, value in (attrs or {}).items():
            self.fh.write(f' {name}="{escape(value, quote=True)}"')
            self.nodes += 2
        self.fh.write(">")
        self.nodes += 1

    def start(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        self._write_tag(tag, attrs)
        self._stack.append(tag)

    def end(self) -> None:
        self.fh.write(f"</{self._stack.pop()}>\n")

    def void(self, tag: str, attrs: Optional[Dict[str, str]] = None) -> None:
        """A void element (``img``, ``br``, ...): start tag only."""
        self._write_tag(tag, attrs)
        self.fh.write("\n")

    def text(self, value: str) -> None:
        self.fh.write(escape(value))
        if value.strip():
            self.nodes += 1

    def leaf(
        self, tag: str, value: str, attrs: Optional[Dict[str, str]] = None
    ) -> None:
        self.start(tag, attrs)
        self.text(value)
        self.end()

    def close(self) -> None:
        while self._stack:
            self.end()


def generate_htmlcat(path: str, target_nodes: int = 100_000, seed: int = 0) -> int:
    """HTML product-catalog lookalike; returns the htmlio node count."""
    _check_target(target_nodes)
    rng = random.Random(seed)
    with open(path, "w", encoding="utf-8") as fh:
        w = _HtmlCountingWriter(fh)
        w.start("html", {"lang": "en"})
        w.start("head")
        w.leaf("title", "Catalog")
        w.void("meta", {"charset": "utf-8"})
        w.end()  # head
        w.start("body")
        w.start("div", {"class": "catalog"})
        while w.nodes < target_nodes:
            pid = f"p{rng.randrange(10**6)}"
            w.start("div", {"class": "product", "id": pid})
            w.leaf("h2", _words(rng, 1, 3).title())
            w.void("img", {"src": f"/img/{pid}.jpg", "alt": pid})
            w.leaf(
                "span",
                f"${rng.randint(1, 500)}.{rng.randint(0, 99):02d}",
                {"class": "price"},
            )
            if rng.random() < 0.7:
                w.start("ul", {"class": "features"})
                for _ in range(rng.randint(1, 4)):
                    w.leaf("li", _words(rng, 2, 5))
                w.end()
            if rng.random() < 0.3:
                w.start("p")
                w.text(_words(rng, 5, 12))
                w.leaf("em", rng.choice(_WORDS))
                w.end()
            w.end()  # div.product
        w.close()
    return w.nodes


_PY_OPS = ("+", "-", "*")


def _py_function(rng: random.Random, name: str) -> str:
    a, b = rng.sample(_WORDS, 2)
    op = rng.choice(_PY_OPS)
    lines = [
        f"def {name}({a}, {b}={rng.randint(0, 9)}):",
        f'    """{_words(rng, 3, 6)}."""',
        f"    total = {a} {op} {b}",
    ]
    if rng.random() < 0.5:
        lines.append(f"    if total > {rng.randint(10, 99)}:")
        lines.append(f"        total = total - {rng.randint(1, 9)}")
    lines.append("    return total")
    return "\n".join(lines)


def _py_class(rng: random.Random, name: str) -> str:
    attr = rng.choice(_WORDS)
    lines = [
        f"class {name.title()}:",
        f"    def __init__(self, {attr}):",
        f"        self.{attr} = {attr}",
        "",
        "    def describe(self):",
        f"        return f\"{name}: {{self.{attr}}}\"",
    ]
    return "\n".join(lines)


def _py_module(rng: random.Random) -> str:
    parts = [f'"""{_words(rng, 3, 7).capitalize()}."""', "", ""]
    for i in range(rng.randint(2, 5)):
        name = f"{rng.choice(_WORDS)}_{i}"
        if rng.random() < 0.3:
            parts.append(_py_class(rng, name))
        else:
            parts.append(_py_function(rng, name))
        parts.append("")
        parts.append("")
    return "\n".join(parts)


def generate_pypkg(path: str, target_nodes: int = 50_000, seed: int = 0) -> int:
    """Synthetic Python package directory; returns the astio node count.

    ``path`` becomes the package root (created if missing, must be
    empty of ``.py`` files): generated modules plus one ``core``
    subpackage, each written and counted one module at a time via
    :func:`repro.frontends.astio.iterparse_postorder`.
    """
    _check_target(target_nodes)
    from ..frontends import astio

    if os.path.isfile(path):
        raise DatasetError(f"pypkg target {path!r} is a file, need a directory")
    os.makedirs(os.path.join(path, "core"), exist_ok=True)
    if any(
        name.endswith(".py")
        for name in os.listdir(path)
        if os.path.isfile(os.path.join(path, name))
    ):
        raise DatasetError(f"pypkg target {path!r} already holds modules")
    rng = random.Random(seed)
    # Root dir node + the `core` subpackage dir node.
    nodes = 2
    for directory, stem in ((path, "__init__"), (os.path.join(path, "core"), "__init__")):
        module = os.path.join(directory, f"{stem}.py")
        with open(module, "w", encoding="utf-8") as fh:
            fh.write(f'"""{_words(rng, 2, 4).capitalize()}."""\n')
        nodes += sum(1 for _ in astio.iterparse_postorder(module))
    i = 0
    while nodes < target_nodes:
        directory = path if i % 3 else os.path.join(path, "core")
        module = os.path.join(directory, f"{rng.choice(_WORDS)}_{i}.py")
        with open(module, "w", encoding="utf-8") as fh:
            fh.write(_py_module(rng))
        nodes += sum(1 for _ in astio.iterparse_postorder(module))
        i += 1
    return nodes


#: Registry: workload corpus name -> generator (separate from the XML
#: :data:`~repro.datasets.corpora.GENERATORS`, whose bench baselines
#: must not shift).
WORKLOAD_GENERATORS: Dict[str, Callable[..., int]] = {
    "apilog": generate_apilog,
    "htmlcat": generate_htmlcat,
    "pypkg": generate_pypkg,
}

#: A natural TASM query (bracket notation) per workload corpus.  Kept
#: out of :data:`~repro.datasets.corpora.DEFAULT_QUERIES`: the nightly
#: bench gates on those exact queries.
WORKLOAD_QUERIES: Dict[str, str] = {
    "apilog": "{object{$method}{$path}{$status}}",
    "htmlcat": "{div{h2}{img{@alt}{@src}}{span{@class}}}",
    "pypkg": "{FunctionDef{arguments{arg}{arg}}{Return}}",
}
