"""Document-scale synthetic corpora (paper Section VI workloads).

The paper evaluates TASM on XMark, DBLP, and Protein Sequence Database
documents up to multi-gigabyte sizes.  This package generates
lookalikes of those three document classes at any node count,
streaming XML to disk so the bench and tests can push 10^5–10^6-node
documents through :func:`repro.xmlio.parse.iterparse_postorder` and
the :class:`repro.postorder.interval.IntervalStore` without ever
holding a document in memory.

* :mod:`~repro.datasets.writer`  — incremental XML writer with
  parser-accurate node accounting.
* :mod:`~repro.datasets.corpora` — the XMark/DBLP/PSD generators, the
  :data:`GENERATORS` registry, and per-corpus default queries.
* :mod:`~repro.datasets.workloads` — lookalike corpora for the
  :mod:`repro.frontends` workloads (JSON API logs, HTML catalogs,
  Python packages) with their own :data:`WORKLOAD_QUERIES`.
"""

from .corpora import (
    DEFAULT_QUERIES,
    GENERATORS,
    generate,
    generate_dblp,
    generate_psd,
    generate_xmark,
)
from .workloads import (
    WORKLOAD_GENERATORS,
    WORKLOAD_QUERIES,
    generate_apilog,
    generate_htmlcat,
    generate_pypkg,
)
from .writer import XmlStreamWriter

__all__ = [
    "XmlStreamWriter",
    "generate",
    "generate_xmark",
    "generate_dblp",
    "generate_psd",
    "generate_apilog",
    "generate_htmlcat",
    "generate_pypkg",
    "GENERATORS",
    "DEFAULT_QUERIES",
    "WORKLOAD_GENERATORS",
    "WORKLOAD_QUERIES",
]
