"""First-class documents: one contract for every workload frontend.

TASM's engine consumes a postorder queue (Definition 2) and nothing
else — XML, JSON, HTML, and program ASTs all reduce to it.  The
:class:`Document` protocol is that reduction made explicit: a postorder
stream, a node count, an optional store/index handle, and a workload
tag, so ``tasm_batch`` / ``tasm_sharded_batch`` / the serve catalog /
the CLI route *any* frontend identically.

Concrete documents (all picklable, frozen path-holders, so the sharded
planner ships them straight to worker processes):

* :class:`StoreDocument` — a document inside an
  :class:`~repro.postorder.interval.IntervalStore` file (any workload;
  this is the only document kind with a :meth:`~Document.store_ref`,
  and hence the only one the candidate-index engine serves);
* :class:`XmlDocument`  — an XML file (:mod:`repro.xmlio`);
* :class:`JsonDocument` — a JSON file (:mod:`repro.frontends.jsonio`);
* :class:`HtmlDocument` — an HTML page (:mod:`repro.frontends.htmlio`);
* :class:`AstDocument`  — a ``*.py`` module or package directory
  (:mod:`repro.frontends.astio`).

``StoreDocument`` and ``XmlDocument`` moved here from
``repro.parallel.sharded``; the old import paths still work but warn
(one release), since nothing about them was parallel-specific.

:func:`document_for` maps a path (plus an optional explicit format) to
the right document, with extension autodetection for ``.xml`` /
``.json`` / ``.html`` / ``.htm`` / ``.py`` / package directories;
unknown extensions raise the typed
:class:`~repro.errors.DocumentFormatError` instead of whatever the
wrong parser would have thrown.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..errors import DocumentFormatError

__all__ = [
    "AstDocument",
    "Document",
    "FORMATS",
    "HtmlDocument",
    "JsonDocument",
    "StoreDocument",
    "XmlDocument",
    "detect_format",
    "document_for",
]


@runtime_checkable
class Document(Protocol):
    """What every workload frontend hands the engine.

    ``workload`` tags the frontend ("xml", "json", "html", "ast",
    "store") for catalogs and health reporting; ``postorder()`` streams
    the queue; ``n_nodes()`` is the planning count (one cheap extra
    pass for file-backed documents); ``store_ref()`` returns
    ``(path, doc_id)`` when the document lives in an
    :class:`~repro.postorder.interval.IntervalStore` — the handle the
    candidate-index engine needs — and ``None`` otherwise.
    """

    @property
    def workload(self) -> str: ...

    def postorder(self) -> Iterator[Tuple[object, int]]: ...

    def n_nodes(self) -> int: ...

    def store_ref(self) -> Optional[Tuple[str, int]]: ...


@dataclass(frozen=True)
class StoreDocument:
    """A document held in an :class:`IntervalStore` database file."""

    path: str
    doc_id: int

    workload = "store"

    def postorder(self) -> Iterator[Tuple[object, int]]:
        from ..postorder.interval import IntervalStore

        store = IntervalStore.open_readonly(self.path)
        try:
            yield from store.postorder_pairs(self.doc_id)
        finally:
            store.close()

    def n_nodes(self) -> int:
        from ..postorder.interval import IntervalStore

        store = IntervalStore.open_readonly(self.path)
        try:
            return store.n_nodes(self.doc_id)
        finally:
            store.close()

    def store_ref(self) -> Optional[Tuple[str, int]]:
        return (self.path, self.doc_id)


class _FileDocument:
    """Shared plumbing for path-backed frontend documents."""

    path: str

    def _pairs(self) -> Iterator[Tuple[object, int]]:
        raise NotImplementedError

    def postorder(self) -> Iterator[Tuple[object, int]]:
        return self._pairs()

    def n_nodes(self) -> int:
        return sum(1 for _ in self._pairs())

    def store_ref(self) -> Optional[Tuple[str, int]]:
        return None


@dataclass(frozen=True)
class XmlDocument(_FileDocument):
    """An XML document on disk, streamed without materialisation.

    Sharded runs make two streaming parses for planning (count + safe
    cuts) and every worker re-parses the file up to its range — more
    parse CPU than shipping pair slices, but memory stays
    O(parse depth + tau) in every process, preserving the streaming
    guarantee for documents that do not fit in memory.
    """

    path: str

    workload = "xml"

    def _pairs(self) -> Iterator[Tuple[object, int]]:
        from ..xmlio.parse import iterparse_postorder

        return iterparse_postorder(self.path)


@dataclass(frozen=True)
class JsonDocument(_FileDocument):
    """A JSON document on disk (:mod:`repro.frontends.jsonio`)."""

    path: str

    workload = "json"

    def _pairs(self) -> Iterator[Tuple[object, int]]:
        from ..frontends.jsonio import iterparse_postorder

        return iterparse_postorder(self.path)


@dataclass(frozen=True)
class HtmlDocument(_FileDocument):
    """An HTML page on disk (:mod:`repro.frontends.htmlio`)."""

    path: str

    workload = "html"

    def _pairs(self) -> Iterator[Tuple[object, int]]:
        from ..frontends.htmlio import iterparse_postorder

        return iterparse_postorder(self.path)


@dataclass(frozen=True)
class AstDocument(_FileDocument):
    """A Python module or package directory
    (:mod:`repro.frontends.astio`)."""

    path: str

    workload = "ast"

    def _pairs(self) -> Iterator[Tuple[object, int]]:
        from ..frontends.astio import iterparse_postorder

        return iterparse_postorder(self.path)


#: Format name -> document constructor, for every file-backed frontend.
FORMATS: Dict[str, Callable[[str], _FileDocument]] = {
    "xml": XmlDocument,
    "json": JsonDocument,
    "html": HtmlDocument,
    "ast": AstDocument,
}

_EXTENSIONS = {
    ".xml": "xml",
    ".json": "json",
    ".html": "html",
    ".htm": "html",
    ".py": "ast",
}


def detect_format(path: str) -> str:
    """Workload format of ``path`` by extension (directories are
    Python packages); raises :class:`DocumentFormatError` on unknowns."""
    if os.path.isdir(path):
        return "ast"
    ext = os.path.splitext(path)[1].lower()
    fmt = _EXTENSIONS.get(ext)
    if fmt is None:
        known = ", ".join(sorted(_EXTENSIONS))
        raise DocumentFormatError(
            f"cannot detect a document format for {path!r} "
            f"(known extensions: {known}; or pass an explicit format)"
        )
    return fmt


def document_for(path: str, fmt: str = "auto") -> _FileDocument:
    """The :class:`Document` for ``path`` in format ``fmt``.

    ``fmt="auto"`` autodetects from the extension via
    :func:`detect_format`; unknown formats and undetectable extensions
    raise :class:`DocumentFormatError`.
    """
    if fmt == "auto":
        fmt = detect_format(path)
    cls = FORMATS.get(fmt)
    if cls is None:
        raise DocumentFormatError(
            f"unknown document format {fmt!r}; expected one of "
            f"{tuple(sorted(FORMATS))}"
        )
    return cls(path)
