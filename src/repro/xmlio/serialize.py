"""Serialise trees back to XML text.

Inverse of :mod:`repro.xmlio.parse` under the shared label conventions
(:mod:`repro.xmlio.types`): ``@name`` nodes become attributes,
:class:`~repro.xmlio.types.Text` leaves become character data, all other
nodes become elements.  ``parse(serialize(t))`` reproduces ``t`` for any
tree built with those conventions (tested round-trip).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import List, Tuple, Union

from ..errors import XmlFormatError
from ..trees.node import Node
from ..trees.tree import Tree
from .types import ATTRIBUTE_PREFIX, Text, is_attribute_label

__all__ = ["element_from_node", "xml_from_tree", "xml_from_node", "write_xml"]


def element_from_node(root: Node) -> ET.Element:
    """Convert a :class:`Node` tree to an ElementTree element."""
    if isinstance(root.label, Text) or is_attribute_label(root.label):
        raise XmlFormatError("document root must be an element node")
    elem = ET.Element(str(root.label))
    stack: List[Tuple[Node, ET.Element]] = [(root, elem)]
    while stack:
        node, e = stack.pop()
        last_child: Union[ET.Element, None] = None
        for child in node.children:
            if is_attribute_label(child.label):
                e.set(str(child.label)[len(ATTRIBUTE_PREFIX):], _attr_value(child))
            elif isinstance(child.label, Text):
                if last_child is None:
                    e.text = (e.text or "") + str(child.label)
                else:
                    last_child.tail = (last_child.tail or "") + str(child.label)
                if child.children:
                    raise XmlFormatError("text nodes must be leaves")
            else:
                sub = ET.SubElement(e, str(child.label))
                stack.append((child, sub))
                last_child = sub
    return elem


def _attr_value(attr_node: Node) -> str:
    if len(attr_node.children) != 1 or not isinstance(
        attr_node.children[0].label, Text
    ):
        raise XmlFormatError(
            f"attribute node {attr_node.label!r} must have exactly one text child"
        )
    return str(attr_node.children[0].label)


def xml_from_node(root: Node, encoding: str = "unicode") -> str:
    """Serialise a :class:`Node` tree to an XML string."""
    return ET.tostring(element_from_node(root), encoding=encoding)


def xml_from_tree(tree: Tree, encoding: str = "unicode") -> str:
    """Serialise a :class:`Tree` to an XML string."""
    return xml_from_node(tree.to_node(), encoding=encoding)


def write_xml(tree: Tree, path: str) -> None:
    """Write ``tree`` to ``path`` as a UTF-8 XML document."""
    ET.ElementTree(element_from_node(tree.to_node())).write(
        path, encoding="utf-8", xml_declaration=True
    )
