"""Label conventions for XML-derived trees.

The paper treats element tags, attribute names, and text content
uniformly as node labels (Section VII: "a dictionary to assign unique
integer identifiers to node labels (element/attribute tags as well as
text content)").  To keep XML round-trips unambiguous this library
marks the three roles in the label itself:

* element tags       — plain ``str`` labels,
* attribute names    — ``str`` labels prefixed with ``@`` and carrying a
  single text child with the attribute value,
* text content       — :class:`Text` labels, a ``str`` subclass.

``Text`` compares and hashes exactly like ``str`` (so two nodes labelled
``Text("db")`` and ``"db"`` are equal for the tree edit distance, as in
the paper's flat label alphabet); the subclass only preserves the role
for serialisation.
"""

from __future__ import annotations

__all__ = ["Text", "ATTRIBUTE_PREFIX", "is_attribute_label"]

ATTRIBUTE_PREFIX = "@"


class Text(str):
    """Marker type for text-content labels.

    Behaves exactly like ``str`` (equality, hashing, sorting); only the
    XML serialiser inspects the type to emit character data instead of
    an element.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Text({str.__repr__(self)})"


def is_attribute_label(label) -> bool:
    """True iff ``label`` denotes an attribute node (``@name``)."""
    return isinstance(label, str) and label.startswith(ATTRIBUTE_PREFIX)
