"""Label dictionary: string labels to dense integer identifiers.

The paper's implementation note (Section VII): "In all algorithms we use
a dictionary to assign unique integer identifiers to node labels
(element/attribute tags as well as text content).  The integer
identifiers provide compression and faster node-to-node comparisons."

The dictionary treats every label as a flat symbol of the alphabet
``Sigma`` — element tags, attribute names and text content share one id
space, exactly as in the paper.  Encoding is stable: the same label
always maps to the same id within one dictionary.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

from ..trees.tree import Tree

__all__ = ["LabelDictionary"]


class LabelDictionary:
    """Bidirectional mapping ``label <-> int`` with insert-on-miss."""

    def __init__(self) -> None:
        self._ids: Dict[object, int] = {}
        self._labels: List[object] = []

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label) -> bool:
        return label in self._ids

    def encode(self, label) -> int:
        """Return the id for ``label``, assigning a fresh one on miss."""
        ids = self._ids
        existing = ids.get(label)
        if existing is not None:
            return existing
        new_id = len(self._labels)
        ids[label] = new_id
        self._labels.append(label)
        return new_id

    def lookup(self, label) -> int:
        """Return the id for ``label``; raise ``KeyError`` if absent."""
        return self._ids[label]

    def decode(self, label_id: int):
        """Return the label for ``label_id``."""
        return self._labels[label_id]

    # ------------------------------------------------------------------
    # Bulk helpers
    # ------------------------------------------------------------------
    def encode_tree(self, tree: Tree) -> Tree:
        """Return a copy of ``tree`` with integer labels.

        The structural arrays are shared views (copied lists), so this
        is a cheap O(n) pass; the output is what the distance kernels
        prefer to run on.
        """
        encode = self.encode
        labels = [None] + [encode(tree.labels[i]) for i in range(1, len(tree.labels))]
        return Tree(labels, list(tree.lmls), list(tree.parents))

    def decode_tree(self, tree: Tree) -> Tree:
        """Inverse of :meth:`encode_tree`."""
        decode = self.decode
        labels = [None] + [decode(tree.labels[i]) for i in range(1, len(tree.labels))]
        return Tree(labels, list(tree.lmls), list(tree.parents))

    def encode_postorder(
        self, pairs: Iterable[Tuple[object, int]]
    ) -> Iterator[Tuple[int, int]]:
        """Encode a streaming postorder queue on the fly."""
        encode = self.encode
        for label, size in pairs:
            yield encode(label), size
