"""XML parsing: documents and streams to trees / postorder queues.

Two paths are provided, matching the paper's architecture:

* :func:`tree_from_xml_string` / :func:`tree_from_xml_file` materialise
  an entire document as a :class:`~repro.trees.tree.Tree` (what
  TASM-dynamic needs);
* :func:`iterparse_postorder` streams ``(label, size)`` pairs in
  postorder — a *postorder queue* (Definition 2) — without ever holding
  the document in memory (what TASM-postorder needs).

Conversion conventions (shared by both paths, see
:mod:`repro.xmlio.types`): attributes become ``@name`` nodes with a text
child, attribute nodes precede text and element children and are sorted
by name for determinism; non-whitespace text segments become
:class:`~repro.xmlio.types.Text` leaf nodes in document order.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO, Iterator, List, Tuple, Union

from ..errors import XmlFormatError
from ..trees.node import Node
from ..trees.tree import Tree
from .types import ATTRIBUTE_PREFIX, Text

__all__ = [
    "node_from_element",
    "tree_from_xml_string",
    "tree_from_xml_file",
    "iterparse_postorder",
]

Source = Union[str, IO]


def _clean_text(raw: Union[str, None], keep_whitespace: bool) -> Union[str, None]:
    """Return text content to keep, or None if it should be dropped."""
    if raw is None:
        return None
    if keep_whitespace:
        return raw if raw else None
    stripped = raw.strip()
    return stripped if stripped else None


def node_from_element(
    elem: ET.Element,
    keep_whitespace: bool = False,
    with_attributes: bool = True,
) -> Node:
    """Convert an :class:`xml.etree.ElementTree.Element` to a tree node.

    Child order: attribute nodes (sorted by name), leading text, then
    each subelement followed by its tail text.
    """
    root = Node(elem.tag)
    stack: List[Tuple[ET.Element, Node]] = [(elem, root)]
    while stack:
        e, node = stack.pop()
        if with_attributes:
            for name in sorted(e.attrib):
                attr = node.add(ATTRIBUTE_PREFIX + name)
                attr.add(Text(e.attrib[name]))
        text = _clean_text(e.text, keep_whitespace)
        if text is not None:
            node.add(Text(text))
        for child in e:
            child_node = node.add(child.tag)
            stack.append((child, child_node))
            tail = _clean_text(child.tail, keep_whitespace)
            if tail is not None:
                node.add(Text(tail))
    return root


def tree_from_xml_string(
    text: str,
    keep_whitespace: bool = False,
    with_attributes: bool = True,
) -> Tree:
    """Parse an XML document string into a :class:`Tree`."""
    try:
        elem = ET.fromstring(text)
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    return Tree.from_node(
        node_from_element(elem, keep_whitespace, with_attributes)
    )


def tree_from_xml_file(
    source: Source,
    keep_whitespace: bool = False,
    with_attributes: bool = True,
) -> Tree:
    """Parse an XML file (path or file object) into a :class:`Tree`.

    Built on the streaming parser so that the intermediate
    representation is the postorder queue itself — this keeps the two
    code paths byte-for-byte consistent (tested).
    """
    return Tree.from_postorder(
        iterparse_postorder(source, keep_whitespace, with_attributes)
    )


class _Frame:
    """Per-open-element state for the streaming parser."""

    __slots__ = ("elem", "descendants", "text_emitted", "prev_child")

    def __init__(self, elem: ET.Element):
        self.elem = elem
        self.descendants = 0  # nodes already emitted inside this element
        self.text_emitted = False
        self.prev_child: Union[ET.Element, None] = None


def iterparse_postorder(
    source: Source,
    keep_whitespace: bool = False,
    with_attributes: bool = True,
) -> Iterator[Tuple[object, int]]:
    """Stream a postorder queue (Definition 2) from an XML document.

    Yields ``(label, size)`` pairs in postorder while keeping only the
    open-element path (plus already-drained empty element shells) in
    memory.  This is the library's implementation of the paper's
    "standard XML parser ... to implement the postorder queues".
    """
    stack: List[_Frame] = []
    produced_root = False
    try:
        for event, elem in ET.iterparse(source, events=("start", "end")):
            if event == "start":
                if stack:
                    parent = stack[-1]
                    for pair in _flush_pending(parent, keep_whitespace):
                        yield pair
                elif produced_root:
                    raise XmlFormatError("multiple document roots")
                frame = _Frame(elem)
                stack.append(frame)
                if with_attributes:
                    # Attributes are fully known at the start tag; they
                    # are the element's first children.
                    for name in sorted(elem.attrib):
                        yield Text(elem.attrib[name]), 1
                        yield ATTRIBUTE_PREFIX + name, 2
                        frame.descendants += 2
            else:  # "end"
                frame = stack.pop()
                # Flushes the last child's tail and, for childless
                # elements, the leading text.
                for pair in _flush_pending(frame, keep_whitespace):
                    yield pair
                size = frame.descendants + 1
                yield elem.tag, size
                if stack:
                    parent = stack[-1]
                    parent.descendants += size
                    parent.prev_child = elem
                    # All children of the parent present at this point
                    # have already ended; drop them to bound memory.
                    # ``elem`` stays alive via ``parent.prev_child`` so
                    # its tail text is still readable.
                    del parent.elem[:]
                else:
                    produced_root = True
                    elem.clear()
    except ET.ParseError as exc:
        raise XmlFormatError(f"malformed XML: {exc}") from exc
    if not produced_root:
        raise XmlFormatError("document contained no root element")


def _flush_pending(
    frame: _Frame, keep_whitespace: bool
) -> Iterator[Tuple[object, int]]:
    """Emit text nodes of ``frame`` that became complete.

    Called when the next event inside the element arrives: the leading
    text is complete at the first child's start tag (or the end tag),
    and a child's tail is complete at the next sibling's start tag (or
    the end tag).
    """
    if frame.prev_child is not None:
        tail = _clean_text(frame.prev_child.tail, keep_whitespace)
        if tail is not None:
            yield Text(tail), 1
            frame.descendants += 1
        frame.prev_child = None
    if not frame.text_emitted:
        frame.text_emitted = True
        text = _clean_text(frame.elem.text, keep_whitespace)
        if text is not None:
            yield Text(text), 1
            frame.descendants += 1
