"""XML input/output substrate.

Streams XML documents into postorder queues (the representation
TASM-postorder scans), materialises them as trees (for TASM-dynamic),
serialises trees back to XML, and interns labels into dense integer ids
(the paper's dictionary compression).
"""

from .dictionary import LabelDictionary
from .parse import (
    iterparse_postorder,
    node_from_element,
    tree_from_xml_file,
    tree_from_xml_string,
)
from .serialize import element_from_node, write_xml, xml_from_node, xml_from_tree
from .types import ATTRIBUTE_PREFIX, Text, is_attribute_label

__all__ = [
    "LabelDictionary",
    "iterparse_postorder",
    "node_from_element",
    "tree_from_xml_file",
    "tree_from_xml_string",
    "element_from_node",
    "write_xml",
    "xml_from_node",
    "xml_from_tree",
    "ATTRIBUTE_PREFIX",
    "Text",
    "is_attribute_label",
]
