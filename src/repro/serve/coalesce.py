"""Scan-sharing request coalescer: one document scan, many queries.

The serve layer is stream-scan-bound — on a 100k-node corpus a single
``POST /v1/tasm`` costs seconds of postorder streaming, and without
coalescing every concurrent request pays that scan again.  The paper's
own algorithm already ranks *many queries in one pass*
(:func:`~repro.tasm.batch.tasm_batch` takes a query list and a shared
ring), so the fix is pure plumbing: merge the queries of concurrent
requests for the same ``(document, version)`` into one engine pass.

Two mechanisms, both keyed off the executor's cache key:

* **Single-flight** — while a result for a key is being computed, any
  request for the *same* key joins the in-flight entry instead of
  ranking again: one engine invocation, one cache fill, every waiter
  gets the identical payload.  The key includes the document version
  (snapshotted before ranking), so a version bump mid-flight gives
  later requests a different key and never a stale answer.
* **Coalescing window** — the first request to miss on a document
  becomes the *leader* of a short batching window
  (``window_ms``, default 5 ms).  Queries from requests arriving
  within the window — or while the leader is still collecting —
  join the batch; the leader then runs the whole batch through
  :meth:`ScanCoalescer.run_passes`, which groups entries by cost
  model, chunks each group at ``max_batch`` queries, ranks every chunk
  at the largest requested ``k``, and slices each ranking down to the
  entry's own ``k``.

The slice is exact, not approximate: :class:`~repro.tasm.heap.TopKHeap`
keeps the ``k`` smallest matches under the total order
``(distance, stream position)`` and breaks ties in favour of the
earlier push, so the first ``k'`` entries of a ``k``-ranking
(``k' <= k``) are byte-identical to a direct ``k'`` run.  The
differential tests in ``tests/test_differential.py`` re-prove this on
random inputs for both the stream and sharded engines.

Concurrency contract: all coalescer state is guarded by ``self._lock``
(the arrivals condition wraps the same lock object); engine passes run
*outside* the lock, and waiters block on per-entry events, never on
the lock.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..distance.cost import CostModel
from ..errors import ServeError
from .registry import RegisteredQuery

__all__ = ["PendingQuery", "ScanCoalescer"]

#: ``rank`` callback: (queries, k, cost, span) -> (rankings, engine, stats).
RankFn = Callable[
    [Sequence[RegisteredQuery], int, CostModel, Any],
    Tuple[List[Any], str, Any],
]

#: ``fulfil`` callback: (entry, sliced ranking, engine) -> response payload.
FulfilFn = Callable[["PendingQuery", List[Any], str], Dict[str, Any]]


class PendingQuery:
    """One query of one request, waiting for (or sharing) a ranking."""

    __slots__ = (
        "query",
        "k",
        "cost",
        "ckey",
        "key",
        "event",
        "payload",
        "error",
        "engine",
        "shared_by",
    )

    def __init__(
        self,
        query: RegisteredQuery,
        k: int,
        cost: CostModel,
        ckey: str,
        key: Tuple,
    ):
        self.query = query
        self.k = k
        self.cost = cost
        #: Canonical cost-model key — entries only share an engine pass
        #: when their cost models agree.
        self.ckey = ckey
        #: Full cache key — the single-flight identity.
        self.key = key
        self.event = threading.Event()
        self.payload: Optional[Dict[str, Any]] = None
        self.error: Optional[BaseException] = None
        self.engine: Optional[str] = None
        #: How many later requests joined this entry instead of ranking.
        self.shared_by = 0


class _Window:
    """Queries collected for one (document, version) pending scan."""

    __slots__ = ("entries", "leading")

    def __init__(self) -> None:
        self.entries: List[PendingQuery] = []
        self.leading = False


class ScanCoalescer:
    """Merges concurrent ranking requests into shared engine passes."""

    def __init__(self, window_ms: float = 5.0, max_batch: int = 32):
        if window_ms < 0:
            raise ServeError(
                f"coalesce window must be >= 0 ms, got {window_ms}"
            )
        if max_batch < 1:
            raise ServeError(
                f"max batch queries must be >= 1, got {max_batch}"
            )
        self.window_ms = window_ms
        self.max_batch = max_batch
        self._lock = threading.Lock()
        #: Signalled on every arrival so a collecting leader can close
        #: its window early once ``max_batch`` queries are pending.
        #: Wraps the same lock — guarded blocks use ``self._lock``.
        self._arrivals = threading.Condition(self._lock)
        self._windows: Dict[Tuple[str, int], _Window] = {}
        self._inflight: Dict[Tuple, PendingQuery] = {}
        # Lifetime counters (reported by payload() and /metrics).
        self._queries = 0
        self._shared = 0
        self._passes = 0
        self._batch_sizes: Counter = Counter()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def execute(
        self,
        doc_key: Tuple[str, int],
        entries: Sequence[PendingQuery],
        rank: RankFn,
        fulfil: FulfilFn,
        span=None,
    ) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
        """Resolve ``entries`` through shared scans of ``doc_key``.

        Every entry either joins an identical in-flight entry
        (single-flight) or enters the document's coalescing window; the
        calling thread leads the window's scan if nobody else is.
        Returns the response payloads in entry order plus a summary
        (role, batch composition, engine stats) for metrics and spans.
        """
        waiters: List[PendingQuery] = []
        shared_here = 0
        lead = False
        with self._lock:
            window = None
            for entry in entries:
                twin = self._inflight.get(entry.key)
                if twin is not None:
                    twin.shared_by += 1
                    self._shared += 1
                    shared_here += 1
                    waiters.append(twin)
                    continue
                if window is None:
                    window = self._windows.get(doc_key)
                    if window is None:
                        window = self._windows[doc_key] = _Window()
                self._inflight[entry.key] = entry
                window.entries.append(entry)
                self._queries += 1
                waiters.append(entry)
            if window is not None and not window.leading:
                window.leading = True
                lead = True
            if window is not None:
                self._arrivals.notify_all()

        summary: Dict[str, Any] = {
            "role": "coalesced",
            "shared": shared_here,
        }
        if lead:
            batch_sizes, engines, stats = self._lead(doc_key, rank, fulfil, span)
            summary["role"] = "leader"
            summary["queries"] = sum(batch_sizes)
            summary["passes"] = len(batch_sizes)
            summary["batch_sizes"] = batch_sizes
            summary["engines"] = engines
            summary["stats"] = stats

        payloads: List[Dict[str, Any]] = []
        for waiter in waiters:
            waiter.event.wait()
            if waiter.error is not None:
                raise waiter.error
            payloads.append(waiter.payload)  # type: ignore[arg-type]
        return payloads, summary

    # ------------------------------------------------------------------
    # Leader path
    # ------------------------------------------------------------------
    def _lead(
        self,
        doc_key: Tuple[str, int],
        rank: RankFn,
        fulfil: FulfilFn,
        span=None,
    ) -> Tuple[List[int], List[str], List[Any]]:
        """Collect the window, run the shared passes, wake every waiter."""
        deadline = time.monotonic() + self.window_ms / 1000.0
        with self._lock:
            window = self._windows[doc_key]
            while len(window.entries) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._arrivals.wait(remaining)
            batch = list(window.entries)
            # Retire the window: the next miss for this document opens
            # a fresh one with its own leader.  Entries in ``batch``
            # stay in ``_inflight`` until fulfilled, so identical
            # requests keep single-flighting onto them meanwhile.
            del self._windows[doc_key]

        passes: List[Tuple[int, str, Any]] = []
        try:
            rankings, passes = self.run_passes(batch, rank, span)
            for entry in batch:
                sliced, engine = rankings[id(entry)]
                entry.engine = engine
                entry.payload = fulfil(entry, sliced, engine)
        except BaseException as exc:
            for entry in batch:
                if entry.payload is None:
                    entry.error = exc
        finally:
            with self._lock:
                for entry in batch:
                    self._inflight.pop(entry.key, None)
                self._passes += len(passes)
                for size, _engine, _stats in passes:
                    self._batch_sizes[size] += 1
            for entry in batch:
                entry.event.set()
        return (
            [size for size, _engine, _stats in passes],
            [engine for _size, engine, _stats in passes],
            [stats for _size, _engine, stats in passes],
        )

    def run_passes(
        self,
        batch: Sequence[PendingQuery],
        rank: RankFn,
        span=None,
    ) -> Tuple[Dict[int, Tuple[List[Any], str]], List[Tuple[int, str, Any]]]:
        """Rank ``batch`` in the fewest engine passes that stay exact.

        Entries are grouped by cost model (a pass has one cost), each
        group is chunked at ``max_batch`` queries, and each chunk runs
        at the largest ``k`` requested within it; every entry's ranking
        is then sliced to its own ``k`` — exact because the top-k heap's
        order and tie-breaking are k-independent (module docstring).

        Pure with respect to coalescer state (only ``max_batch`` is
        read), which is what the differential tests drive directly.
        Returns ``(rankings by id(entry), [(chunk size, engine, stats)])``.
        """
        groups: Dict[str, List[PendingQuery]] = {}
        for entry in batch:
            groups.setdefault(entry.ckey, []).append(entry)
        rankings: Dict[int, Tuple[List[Any], str]] = {}
        passes: List[Tuple[int, str, Any]] = []
        for ckey in sorted(groups):
            group = groups[ckey]
            for start in range(0, len(group), self.max_batch):
                chunk = group[start : start + self.max_batch]
                k_pass = max(entry.k for entry in chunk)
                pass_span = (
                    span.child("rank", queries=len(chunk), k=k_pass)
                    if span is not None
                    else None
                )
                chunk_rankings, engine, stats = rank(
                    [entry.query for entry in chunk],
                    k_pass,
                    chunk[0].cost,
                    pass_span,
                )
                if pass_span is not None:
                    pass_span.attrs["engine"] = engine
                    pass_span.finish()
                for entry, ranking in zip(chunk, chunk_rankings, strict=True):
                    rankings[id(entry)] = (ranking[: entry.k], engine)
                passes.append((len(chunk), engine, stats))
        return rankings, passes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        """Config plus lifetime counters, for /healthz and the executor."""
        with self._lock:
            queries, shared, passes = self._queries, self._shared, self._passes
            histogram = dict(sorted(self._batch_sizes.items()))
        return {
            "window_ms": self.window_ms,
            "max_batch_queries": self.max_batch,
            "queries": queries,
            "shared_queries": shared,
            "engine_passes": passes,
            # Scans a per-request executor would have run, minus scans
            # actually run.  Windows still in flight have queries but
            # no passes yet, so the snapshot can momentarily run ahead;
            # it is exact whenever no scan is in progress.
            "scans_saved": max(0, queries + shared - passes),
            "batch_size_histogram": histogram,
        }
