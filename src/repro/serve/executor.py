"""Request execution: route rankings to the right engine.

Small documents are ranked in-process by the streaming core
(:func:`~repro.tasm.batch.tasm_batch`) with the registry's pre-built
kernels; documents at or above ``shard_threshold`` nodes go to
:func:`~repro.parallel.sharded.tasm_sharded_batch` on a **persistent**
``multiprocessing`` pool, created once at server start so worker
start-up is amortised across requests (``Pool.map`` is thread-safe, so
concurrent request threads share it).

Both paths consult the LRU result cache first, keyed by
``(document name, document version, query bracket, k, cost model)`` —
so a repeated request is one dictionary lookup, and bumping a
document's version transparently invalidates all of its entries.

Kernels reuse internal row buffers, so the in-process path holds each
registered query's lock while streaming; requests for *different*
queries still execute concurrently (up to the front end's thread
pool), and inline ad-hoc queries never contend at all.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..distance.cost import CostModel
from ..errors import ServeError
from ..tasm.batch import tasm_batch
from ..tasm.postorder import PostorderStats
from .cache import ResultCache, result_key
from .catalog import CatalogDocument, DocumentCatalog
from .registry import QueryRegistry, RegisteredQuery
from .wire import cost_key, parse_cost, ranking_payload

__all__ = ["TasmExecutor"]


class TasmExecutor:
    """Routes validated ranking requests to an engine and caches results."""

    def __init__(
        self,
        registry: QueryRegistry,
        catalog: DocumentCatalog,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        shard_threshold: int = 50_000,
        max_k: int = 10_000,
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.registry = registry
        self.catalog = catalog
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.shard_threshold = shard_threshold
        #: Upper bound on a request's ``k``.  The ring buffer is
        #: preallocated at ``k + 2|Q| - 1`` slots, so an unbounded k
        #: would let one request OOM the whole service.
        self.max_k = max_k
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the persistent worker pool (no-op for workers=1).

        Called before the front end accepts connections: the pool must
        fork before request threads exist.
        """
        if self.workers > 1 and self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(processes=self.workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, request: Dict[str, Any], span=None
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Execute one ``/v1/tasm`` request body.

        Returns ``(response_payload, info)`` where ``info`` carries the
        engine/ring/stats instrumentation the front end feeds into
        metrics.  ``span``, if given, collects per-stage child spans.
        """
        if not isinstance(request, dict):
            raise ServeError("request body must be a JSON object")
        query = self.registry.resolve(request.get("query"))
        results, info = self._run_queries(
            [query],
            request.get("document"),
            request.get("k", 5),
            request.get("cost"),
            span=span,
        )
        return results[0], info

    def run_batch(
        self, request: Dict[str, Any], span=None
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Execute one ``/v1/tasm/batch`` request body.

        Uncached queries share a single document pass (the
        :func:`tasm_batch` guarantee); cached ones are answered from
        the LRU without touching the document.
        """
        if not isinstance(request, dict):
            raise ServeError("request body must be a JSON object")
        specs = request.get("queries")
        if not isinstance(specs, (list, tuple)) or not specs:
            raise ServeError("queries must be a non-empty list")
        queries = [self.registry.resolve(spec) for spec in specs]
        results, info = self._run_queries(
            queries,
            request.get("document"),
            request.get("k", 5),
            request.get("cost"),
            span=span,
        )
        return {"document": request.get("document"), "results": results}, info

    def _run_queries(
        self,
        queries: Sequence[RegisteredQuery],
        doc_name,
        k,
        cost_spec,
        span=None,
    ) -> Tuple[List[dict], dict]:
        if not isinstance(doc_name, str) or not doc_name:
            raise ServeError(f"document must be a document name, got {doc_name!r}")
        document = self.catalog.get(doc_name)
        k = self.registry.validate_k(k)
        if k > self.max_k:
            raise ServeError(
                f"k={k} exceeds this server's limit of {self.max_k} "
                f"(the ring buffer is preallocated at k + 2|Q| - 1 slots)"
            )
        cost = self.registry.validate_cost(parse_cost(cost_spec))
        ckey = cost_key(cost)

        # Snapshot the version once per request: bump_version() mutates
        # the document in place, and re-reading it after ranking could
        # cache a pre-bump ranking under the post-bump version.
        doc_version = document.version
        keys = [
            result_key(document.name, doc_version, query.bracket, k, ckey)
            for query in queries
        ]
        if span is not None and not span:
            span = None  # NULL_SPAN: collapse to the no-op path
        results: List[Optional[dict]] = [None] * len(queries)
        misses: List[int] = []
        lookup_span = (
            span.child("cache_lookup", queries=len(queries))
            if span is not None
            else None
        )
        for i, query in enumerate(queries):
            cached = self.cache.get(keys[i])
            if cached is not None:
                # Cached values are query-name-independent (keyed by the
                # canonical bracket); stamp the name this request used.
                results[i] = dict(cached, query=query.name, cached=True)
            else:
                misses.append(i)
        if lookup_span is not None:
            lookup_span.attrs["misses"] = len(misses)
            lookup_span.finish()

        info = {
            "engine": "cache",
            "ring_peak": None,
            "ring_capacity": None,
            "document": document.name,
            "document_version": doc_version,
        }
        if misses:
            miss_queries = [queries[i] for i in misses]
            rank_span = span.child("rank") if span is not None else None
            rankings, engine, stats = self._rank(
                miss_queries, document, k, cost, span=rank_span
            )
            if rank_span is not None:
                rank_span.attrs["engine"] = engine
                rank_span.finish()
            info["engine"] = engine
            if stats is not None:
                info["ring_peak"] = stats.peak_buffered
                info["ring_capacity"] = stats.ring_capacity
                info["stats"] = stats.payload()
            for i, query, ranking in zip(misses, miss_queries, rankings, strict=True):
                payload = {
                    "bracket": query.bracket,
                    "document": document.name,
                    "document_version": doc_version,
                    "k": k,
                    "cost": ckey,
                    "engine": engine,
                    "matches": ranking_payload(ranking),
                }
                self.cache.put(keys[i], payload)
                results[i] = dict(payload, query=query.name, cached=False)
        return results, info  # type: ignore[return-value]

    def _rank(
        self,
        queries: Sequence[RegisteredQuery],
        document: CatalogDocument,
        k: int,
        cost: CostModel,
        span=None,
    ):
        """One engine pass over ``document`` for ``queries``."""
        if self._pool is not None and document.n_nodes >= self.shard_threshold:
            from ..parallel.sharded import ShardedStats, tasm_sharded_batch

            stats = ShardedStats()
            rankings = tasm_sharded_batch(
                [q.tree for q in queries],
                document.shard_source(),
                k,
                cost,
                workers=self.workers,
                stats=stats,
                pool=self._pool,
                backend=self.registry.backend,
                span=span,
            )
            return rankings, "sharded", stats
        stats = PostorderStats()
        with ExitStack() as held:
            kernels = []
            # Deterministic acquisition order prevents deadlock when two
            # batch requests overlap on the same registered queries.
            for query in sorted(
                {q for q in queries if q.version > 0},
                key=lambda q: id(q.lock),
            ):
                held.enter_context(query.lock)
            for query in queries:
                kernels.append(query.kernel(cost))
            rankings = tasm_batch(
                [q.tree for q in queries],
                document.queue(),
                k,
                cost,
                stats=stats,
                kernels=kernels,
                span=span,
            )
        return rankings, "stream", stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "shard_threshold": self.shard_threshold,
            "kernel_backend": self.registry.backend,
            "pool_running": self._pool is not None,
            "cache": self.cache.payload(),
        }
