"""Request execution: one scan, many queries.

Cache misses do not go straight to an engine — they enter the
:class:`~repro.serve.coalesce.ScanCoalescer`, which merges the queries
of concurrent requests for the same ``(document, version)`` into
shared engine passes (and single-flights identical requests onto one
computation).  Each pass is then routed exactly as before: small
documents are ranked in-process by the streaming core
(:func:`~repro.tasm.batch.tasm_batch`); documents at or above
``shard_threshold`` nodes go to
:func:`~repro.parallel.sharded.tasm_sharded_batch` on a **persistent**
``multiprocessing`` pool, created once at server start so worker
start-up is amortised across requests (``Pool.map`` is thread-safe, so
concurrent request threads share it).

Both paths consult the LRU result cache first, keyed by
``(document name, document version, query bracket, k, cost model)`` —
so a repeated request is one dictionary lookup, and bumping a
document's version transparently invalidates all of its entries.

Kernels reuse internal row buffers, so every in-process pass streams
with private clones of the registry's warm template kernels
(:meth:`~repro.serve.registry.RegisteredQuery.kernel_instance`);
no lock is held across a scan, and concurrent requests for the *same*
query no longer serialise.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..distance.cost import CostModel
from ..errors import ServeError
from ..tasm.batch import tasm_batch
from ..tasm.options import TasmOptions
from ..tasm.postorder import PostorderStats
from .cache import ResultCache, result_key
from .catalog import CatalogDocument, DocumentCatalog
from .coalesce import PendingQuery, ScanCoalescer
from .registry import QueryRegistry, RegisteredQuery
from .wire import cost_key, parse_cost, ranking_payload

__all__ = ["TasmExecutor"]


class TasmExecutor:
    """Routes validated ranking requests to an engine and caches results."""

    def __init__(
        self,
        registry: QueryRegistry,
        catalog: DocumentCatalog,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        shard_threshold: int = 50_000,
        max_k: int = 10_000,
        coalesce_window_ms: float = 5.0,
        max_batch_queries: int = 32,
        engine: str = "auto",
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if engine not in ("auto", "stream", "indexed"):
            raise ServeError(
                f"unknown engine {engine!r}; expected one of "
                "('auto', 'stream', 'indexed')"
            )
        self.registry = registry
        self.catalog = catalog
        #: Engine policy for store-backed documents: ``"auto"`` serves
        #: from the candidate index when the document has one,
        #: ``"stream"``/``"indexed"`` force their path (``"indexed"``
        #: rejects requests for unindexed documents).
        self.engine = engine
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.shard_threshold = shard_threshold
        #: Upper bound on a request's ``k``.  The ring buffer is
        #: preallocated at ``k + 2|Q| - 1`` slots, so an unbounded k
        #: would let one request OOM the whole service.
        self.max_k = max_k
        self.coalescer = ScanCoalescer(
            window_ms=coalesce_window_ms, max_batch=max_batch_queries
        )
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up the persistent worker pool (no-op for workers=1).

        Called before the front end accepts connections: the pool must
        fork before request threads exist.
        """
        if self.workers > 1 and self._pool is None:
            import multiprocessing

            self._pool = multiprocessing.Pool(processes=self.workers)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, request: Dict[str, Any], span=None
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Execute one ``/v1/tasm`` request body.

        Returns ``(response_payload, info)`` where ``info`` carries the
        engine/ring/stats instrumentation the front end feeds into
        metrics.  ``span``, if given, collects per-stage child spans.
        """
        if not isinstance(request, dict):
            raise ServeError("request body must be a JSON object")
        query = self.registry.resolve(request.get("query"))
        results, info = self._run_queries(
            [query],
            request.get("document"),
            request.get("k", 5),
            request.get("cost"),
            span=span,
        )
        return results[0], info

    def run_batch(
        self, request: Dict[str, Any], span=None
    ) -> Tuple[Dict[str, Any], Dict[str, Any]]:
        """Execute one ``/v1/tasm/batch`` request body.

        Uncached queries share a single document pass (the
        :func:`tasm_batch` guarantee); cached ones are answered from
        the LRU without touching the document.
        """
        if not isinstance(request, dict):
            raise ServeError("request body must be a JSON object")
        specs = request.get("queries")
        if not isinstance(specs, (list, tuple)) or not specs:
            raise ServeError("queries must be a non-empty list")
        queries = [self.registry.resolve(spec) for spec in specs]
        results, info = self._run_queries(
            queries,
            request.get("document"),
            request.get("k", 5),
            request.get("cost"),
            span=span,
        )
        return {"document": request.get("document"), "results": results}, info

    def _run_queries(
        self,
        queries: Sequence[RegisteredQuery],
        doc_name,
        k,
        cost_spec,
        span=None,
    ) -> Tuple[List[dict], dict]:
        if not isinstance(doc_name, str) or not doc_name:
            raise ServeError(f"document must be a document name, got {doc_name!r}")
        document = self.catalog.get(doc_name)
        k = self.registry.validate_k(k)
        if k > self.max_k:
            raise ServeError(
                f"k={k} exceeds this server's limit of {self.max_k} "
                f"(the ring buffer is preallocated at k + 2|Q| - 1 slots)"
            )
        cost = self.registry.validate_cost(parse_cost(cost_spec))
        ckey = cost_key(cost)

        # Snapshot the version once per request: bump_version() mutates
        # the document in place, and re-reading it after ranking could
        # cache a pre-bump ranking under the post-bump version.
        doc_version = document.version
        keys = [
            result_key(document.name, doc_version, query.bracket, k, ckey)
            for query in queries
        ]
        if span is not None and not span:
            span = None  # NULL_SPAN: collapse to the no-op path
        results: List[Optional[dict]] = [None] * len(queries)
        misses: List[int] = []
        lookup_span = (
            span.child("cache_lookup", queries=len(queries))
            if span is not None
            else None
        )
        for i, query in enumerate(queries):
            cached = self.cache.get(keys[i])
            if cached is not None:
                # Cached values are query-name-independent (keyed by the
                # canonical bracket); stamp the name this request used.
                results[i] = dict(cached, query=query.name, cached=True)
            else:
                misses.append(i)
        if lookup_span is not None:
            lookup_span.attrs["misses"] = len(misses)
            lookup_span.finish()

        info = {
            "engine": "cache",
            "ring_peak": None,
            "ring_capacity": None,
            "document": document.name,
            "document_version": doc_version,
        }
        if misses:
            entries = [
                PendingQuery(queries[i], k, cost, ckey, keys[i])
                for i in misses
            ]
            coalesce_span = (
                span.child("coalesce", queries=len(entries))
                if span is not None
                else None
            )

            def rank_pass(pass_queries, pass_k, pass_cost, pass_span):
                return self._rank(
                    pass_queries, document, pass_k, pass_cost, span=pass_span
                )

            def fulfil(entry, ranking, engine):
                payload = {
                    "bracket": entry.query.bracket,
                    "document": document.name,
                    "document_version": doc_version,
                    "k": entry.k,
                    "cost": entry.ckey,
                    "engine": engine,
                    "matches": ranking_payload(ranking),
                }
                self.cache.put(entry.key, payload)
                return payload

            try:
                payloads, summary = self.coalescer.execute(
                    (document.name, doc_version),
                    entries,
                    rank_pass,
                    fulfil,
                    span=coalesce_span,
                )
            except BaseException:
                if coalesce_span is not None:
                    coalesce_span.finish()
                raise
            info["coalesce"] = {
                key_: value
                for key_, value in summary.items()
                if key_ != "stats"
            }
            if coalesce_span is not None:
                coalesce_span.attrs.update(info["coalesce"])
                coalesce_span.finish()
            if summary["role"] == "leader":
                engines = summary["engines"]
                info["engine"] = engines[0] if engines else "stream"
                stats_payload = _merged_stats(summary["stats"])
                if stats_payload is not None:
                    info["ring_peak"] = stats_payload.get("peak_buffered")
                    info["ring_capacity"] = stats_payload.get("ring_capacity")
                    info["stats"] = stats_payload
            else:
                # Every missed query was answered by another request's
                # in-flight scan — this request triggered no engine pass.
                info["engine"] = "coalesced"
            for i, payload in zip(misses, payloads, strict=True):
                results[i] = dict(
                    payload, query=queries[i].name, cached=False
                )
        return results, info  # type: ignore[return-value]

    def _rank(
        self,
        queries: Sequence[RegisteredQuery],
        document: CatalogDocument,
        k: int,
        cost: CostModel,
        span=None,
    ):
        """One engine pass over ``document`` for ``queries``."""
        if self.engine == "indexed" and not (
            document.kind == "store" and document.has_index
        ):
            raise ServeError(
                f"document {document.name!r} has no candidate index "
                "(this server runs with engine='indexed'; re-ingest or "
                "run `repro index` on the store file)"
            )
        if self.engine != "stream" and document.kind == "store" and document.has_index:
            stats = PostorderStats()
            kernels = [query.kernel_instance(cost) for query in queries]
            rankings = tasm_batch(
                [q.tree for q in queries],
                document.shard_source(),
                k,
                cost,
                TasmOptions(
                    stats=stats, kernels=kernels, span=span, engine="indexed"
                ),
            )
            for query, kernel in zip(queries, kernels, strict=True):
                if query.version > 0:
                    query.absorb_kernel(cost, kernel)
            return rankings, "indexed", stats
        if self._pool is not None and document.n_nodes >= self.shard_threshold:
            from ..parallel.sharded import ShardedStats, tasm_sharded_batch

            stats = ShardedStats()
            rankings = tasm_sharded_batch(
                [q.tree for q in queries],
                document.shard_source(),
                k,
                cost,
                TasmOptions(
                    workers=self.workers,
                    stats=stats,
                    pool=self._pool,
                    backend=self.registry.backend,
                    span=span,
                ),
            )
            return rankings, "sharded", stats
        stats = PostorderStats()
        # Private clones of the warm templates: no lock is held across
        # the scan, so passes for the same query run concurrently.
        kernels = [query.kernel_instance(cost) for query in queries]
        rankings = tasm_batch(
            [q.tree for q in queries],
            document.queue(),
            k,
            cost,
            TasmOptions(stats=stats, kernels=kernels, span=span),
        )
        for query, kernel in zip(queries, kernels, strict=True):
            if query.version > 0:
                # Offer the now-warmer clone back as the template.
                query.absorb_kernel(cost, kernel)
        return rankings, "stream", stats

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, object]:
        return {
            "workers": self.workers,
            "engine": self.engine,
            "shard_threshold": self.shard_threshold,
            "kernel_backend": self.registry.backend,
            "pool_running": self._pool is not None,
            "cache": self.cache.payload(),
            "coalesce": self.coalescer.payload(),
        }


def _merged_stats(stats_list: Sequence[Any]) -> Optional[Dict[str, Any]]:
    """One stats payload summarising every engine pass of a batch.

    Counter keys add up, stage/wall seconds add up, ring occupancy adds
    elementwise, and the ring peak/capacity are maxima — the same
    shape :meth:`ServeMetrics.observe` accumulates, so a multi-pass
    leader request feeds the metrics exactly once.
    """
    payloads = [s.payload() for s in stats_list if s is not None]
    if not payloads:
        return None
    if len(payloads) == 1:
        return payloads[0]
    merged: Dict[str, Any] = dict(payloads[0])
    for extra in payloads[1:]:
        for key, value in extra.items():
            if key == "stage_seconds":
                base = dict(merged.get(key) or {})
                for stage, seconds in value.items():
                    base[stage] = base.get(stage, 0.0) + seconds
                merged[key] = base
            elif key == "ring_occupancy":
                base_list = list(merged.get(key) or [])
                for i, v in enumerate(value):
                    if i < len(base_list):
                        base_list[i] += v
                    else:
                        base_list.append(v)
                merged[key] = base_list
            elif key in ("ring_capacity", "peak_buffered"):
                merged[key] = max(merged.get(key) or 0, value or 0)
            elif isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                # Strings and flags (kernel_backend, ...): keep the first.
                continue
            else:
                merged[key] = (merged.get(key) or 0) + value
    return merged
