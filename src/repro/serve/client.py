"""Minimal stdlib client for the TASM service.

Wraps ``http.client`` — one fresh connection per call, so a single
:class:`ServeClient` may be shared freely across threads (the bench
drives one from dozens of them).  Non-2xx responses raise
:class:`ServeHttpError` carrying the status and the server's decoded
error payload.  Used by the test suite, the ``service-smoke`` CI job,
and the ``serve`` bench series; it is also a usable starting point for
real callers.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any, Dict, List, Optional

from ..errors import ServeError

__all__ = ["ServeClient", "ServeHttpError"]


class ServeHttpError(ServeError):
    """The server answered with a non-2xx status."""

    def __init__(self, status: int, payload):
        message = (
            payload.get("error", str(payload))
            if isinstance(payload, dict)
            else str(payload)
        )
        super().__init__(f"HTTP {status}: {message}", status=status)
        self.payload = payload


class ServeClient:
    """A tiny JSON-over-HTTP client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8077, timeout: float = 60.0
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def raw(self, method: str, path: str, payload=None, headers=None):
        """One round trip; returns ``(status, headers dict, body bytes)``.

        No status checking or JSON decoding — what the smoke script
        needs to assert on response *headers* (``X-Request-Id``) and
        non-JSON bodies (Prometheus exposition).  Header names are
        lowercased; ``headers`` adds request headers.
        """
        body = None
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            send_headers["Content-Type"] = "application/json"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        return (
            response.status,
            {name.lower(): value for name, value in response.getheaders()},
            raw,
        )

    def request(self, method: str, path: str, payload=None):
        """One round trip; returns the decoded JSON response body."""
        status, _, raw = self.raw(method, path, payload)
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else None
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if not 200 <= status < 300:
            raise ServeHttpError(status, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def wait_healthy(
        self, timeout: float = 15.0, interval: float = 0.1
    ) -> Dict[str, Any]:
        """Poll ``/healthz`` until it answers ``ok`` (hard deadline)."""
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                health = self.health()
                if health.get("status") == "ok":
                    return health
            except (OSError, socket.timeout, ServeHttpError) as exc:
                last_error = exc
            time.sleep(interval)
        raise ServeError(
            f"server at {self.host}:{self.port} not healthy after "
            f"{timeout}s (last error: {last_error})"
        )

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text exposition of ``/metrics``."""
        status, _, body = self.raw("GET", "/metrics?format=prometheus")
        if status != 200:
            raise ServeHttpError(status, body.decode("utf-8", "replace"))
        return body.decode("utf-8")

    def documents(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/v1/documents")["documents"]

    def queries(self) -> List[Dict[str, Any]]:
        return self.request("GET", "/v1/queries")["queries"]

    def register_query(
        self,
        name: str,
        bracket: Optional[str] = None,
        xml: Optional[str] = None,
    ) -> Dict[str, Any]:
        if (bracket is None) == (xml is None):
            raise ServeError("give exactly one of bracket= or xml=")
        body = {"bracket": bracket} if bracket is not None else {"xml": xml}
        return self.request("PUT", f"/v1/queries/{name}", body)["query"]

    def register_document(
        self, name: str, path: str, fmt: str = "auto"
    ) -> Dict[str, Any]:
        """Register a file document (any workload; ``fmt`` or autodetect)."""
        return self.request(
            "PUT", f"/v1/documents/{name}", {"path": path, "format": fmt}
        )["document"]

    def tasm(
        self,
        query: str,
        document: str,
        k: int = 5,
        cost: object = "unit",
    ) -> Dict[str, Any]:
        """Rank ``query`` (a registered name or inline bracket tree)."""
        return self.request(
            "POST",
            "/v1/tasm",
            {"query": query, "document": document, "k": k, "cost": cost},
        )

    def tasm_batch(
        self,
        queries: List[str],
        document: str,
        k: int = 5,
        cost: object = "unit",
    ) -> Dict[str, Any]:
        return self.request(
            "POST",
            "/v1/tasm/batch",
            {"queries": queries, "document": document, "k": k, "cost": cost},
        )
