"""LRU result cache for served rankings.

Rankings are pure functions of ``(document identity+version, query
bracket, k, cost model)`` — the ROADMAP's "persistent result cache"
item.  The cache therefore needs no explicit invalidation hooks:
bumping a document's version (or re-registering a query, which changes
nothing if the bracket is unchanged and changes the key if it is not)
makes every stale entry unreachable, and the LRU discipline ages it
out.

Thread-safe; capacity 0 disables caching (every lookup is a miss and
nothing is stored), which the bench uses to measure raw engine
throughput.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

__all__ = ["ResultCache", "result_key"]


def result_key(
    doc_name: str,
    doc_version: int,
    query_bracket: str,
    k: int,
    cost: str,
) -> Tuple:
    """The canonical cache key for one ranking request."""
    return (doc_name, doc_version, query_bracket, k, cost)


class ResultCache:
    """A bounded, thread-safe LRU mapping of result keys to payloads."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Completed :meth:`put` calls — the single-flight tests read
        #: this to prove N identical requests produced one cache fill.
        self.stores = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[object]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: object) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def payload(self) -> Dict[str, object]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
                "hit_rate": round(self.hits / total, 4) if total else None,
            }
