"""Document catalog: the corpora a TASM server ranks against.

Two document kinds, matching the two streaming backends of the
library:

* ``store`` — a document inside a read-only
  :class:`~repro.postorder.interval.IntervalStore` database file.  The
  catalog enumerates the file's documents once at attach time; every
  request later opens its own read-only connection (SQLite connections
  are not shareable across threads), scans ``postorder_pairs``, and the
  sharded path hands workers a
  :class:`~repro.documents.StoreDocument` so each ranges over the same
  file.
* file documents — any :mod:`repro.documents` workload on disk (XML,
  JSON, HTML, a Python source tree), re-parsed streamingly on demand;
  the sharded path re-parses per worker via the same
  :class:`~repro.documents.Document` value.

Every document carries a **version**, starting at 1.  Re-registering a
name (the file changed on disk) bumps it; since the result cache keys
on ``(name, version, ...)``, a bump retires every cached ranking for
the document without any scanning.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from typing import Dict, List, Optional

from ..documents import FORMATS, StoreDocument, detect_format, document_for
from ..errors import DocumentFormatError, ServeError
from ..postorder.interval import IntervalStore
from ..postorder.queue import PostorderQueue

__all__ = ["CatalogDocument", "DocumentCatalog"]


class CatalogDocument:
    """One servable document: where it lives and how big it is."""

    __slots__ = (
        "name",
        "kind",
        "path",
        "doc_id",
        "n_nodes",
        "version",
        "has_index",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        path: str,
        n_nodes: int,
        doc_id: Optional[int] = None,
        version: int = 1,
        has_index: bool = False,
    ):
        self.name = name
        # "store", or a repro.documents format name (xml/json/html/ast)
        self.kind = kind
        self.path = path
        self.doc_id = doc_id
        self.n_nodes = n_nodes
        self.version = version
        # Candidate-index presence, detected at attach time; file
        # documents never have one.
        self.has_index = has_index

    @property
    def workload(self) -> str:
        """The workload tag /healthz reports for this document."""
        if self.kind == "store":
            return "store"
        return self.document().workload

    def document(self):
        """The :class:`~repro.documents.Document` value for this entry."""
        if self.kind == "store":
            return StoreDocument(self.path, self.doc_id)
        return document_for(self.path, self.kind)

    def queue(self) -> PostorderQueue:
        """A fresh postorder queue over this document (one per request)."""
        if self.kind == "store":
            store = IntervalStore.open_readonly(self.path)
            return PostorderQueue(
                self._closing_pairs(store, self.doc_id)
            )
        return PostorderQueue(self.document().postorder())

    @staticmethod
    def _closing_pairs(store: IntervalStore, doc_id: int):
        try:
            yield from store.postorder_pairs(doc_id)
        finally:
            store.close()

    def shard_source(self):
        """The document as a :mod:`repro.parallel` shardable source.

        Document values are frozen path-holders, so they pickle to
        workers and each worker re-parses its own streaming scan.
        """
        return self.document()

    def payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "format": self.kind,
            "workload": self.workload,
            "nodes": self.n_nodes,
            "version": self.version,
            "index": self.has_index,
        }


class DocumentCatalog:
    """Named documents over store files and on-demand XML sources."""

    def __init__(self, store_path: Optional[str] = None):
        self._documents: Dict[str, CatalogDocument] = {}
        self._lock = threading.Lock()
        self.store_path = store_path
        if store_path is not None:
            self.attach_store(store_path)

    def __len__(self) -> int:
        return len(self._documents)

    def __contains__(self, name: str) -> bool:
        return name in self._documents

    def names(self) -> List[str]:
        return sorted(self._documents)

    def attach_store(self, path: str) -> List[CatalogDocument]:
        """Register every document of an IntervalStore file.

        The store is opened read-only just long enough to read the
        document table; a name collision with an already-registered
        document bumps that document's version (the store replaced it).
        """
        store = IntervalStore.open_readonly(path)
        try:
            rows = store.documents()
            indexed = {doc_id: store.has_index(doc_id) for doc_id, _, _ in rows}
        except sqlite3.Error as exc:
            raise ServeError(
                f"{path!r} is not an IntervalStore database: {exc}"
            ) from None
        finally:
            store.close()
        if not rows:
            raise ServeError(f"store {path!r} holds no documents")
        registered = []
        for doc_id, name, n_nodes in rows:
            registered.append(
                self._register(
                    CatalogDocument(
                        name,
                        "store",
                        path,
                        n_nodes,
                        doc_id=doc_id,
                        has_index=indexed[doc_id],
                    )
                )
            )
        return registered

    def register_file(
        self, name: str, path: str, fmt: str = "auto"
    ) -> CatalogDocument:
        """Register (or re-register, bumping the version) a file document.

        Any :mod:`repro.documents` workload is accepted; ``fmt`` is a
        format name or ``"auto"`` (extension / directory detection).
        The node count — needed for stream-vs-sharded routing — is
        taken with one streaming parse at registration, so a broken
        file is rejected here rather than at request time.
        """
        if not os.path.exists(path):
            raise ServeError(f"no such document file: {path!r}", status=404)
        try:
            if fmt == "auto":
                fmt = detect_format(path)
            elif fmt not in FORMATS:
                raise ServeError(
                    f"unknown document format {fmt!r}; expected one of "
                    f"{', '.join(sorted(FORMATS))} or 'auto'"
                )
            document = document_for(path, fmt)
            n_nodes = document.n_nodes()
        except DocumentFormatError as exc:
            # Catalog callers speak HTTP; keep the 400 contract.
            raise ServeError(str(exc)) from exc
        if n_nodes == 0:
            raise ServeError(f"no nodes parsed from {path!r}")
        return self._register(CatalogDocument(name, fmt, path, n_nodes))

    def register_xml(self, name: str, path: str) -> CatalogDocument:
        """Back-compat wrapper: :meth:`register_file` with ``fmt="xml"``."""
        return self.register_file(name, path, "xml")

    def _register(self, doc: CatalogDocument) -> CatalogDocument:
        with self._lock:
            previous = self._documents.get(doc.name)
            if previous is not None:
                doc.version = previous.version + 1
            self._documents[doc.name] = doc
        return doc

    def bump_version(self, name: str) -> CatalogDocument:
        """Invalidate every cached ranking for ``name`` (file changed)."""
        with self._lock:
            doc = self._documents.get(name)
            if doc is None:
                raise ServeError(f"no document named {name!r}", status=404)
            doc.version += 1
            return doc

    def get(self, name: str) -> CatalogDocument:
        doc = self._documents.get(name)
        if doc is None:
            raise ServeError(f"no document named {name!r}", status=404)
        return doc

    def payload(self) -> List[Dict[str, object]]:
        return [self._documents[name].payload() for name in self.names()]
