"""Wire format shared by the serving layer and the CLI.

The service contract requires that a ``POST /v1/tasm`` ranking and a
``repro tasm --json`` run over the same store, query, and ``k`` are
**byte-identical** (the ``service-smoke`` CI job compares the two).
Both therefore build their match payloads through this module — one
source of truth for the JSON shape of a ranking.
"""

from __future__ import annotations

from typing import List, Sequence, TypedDict

from ..distance.cost import CostModel, UnitCostModel, WeightedCostModel
from ..errors import ServeError
from ..tasm.heap import Match

__all__ = ["MatchPayload", "cost_key", "parse_cost", "ranking_payload"]


class MatchPayload(TypedDict):
    """One ranked match on the wire — the unit of the identity contract."""

    rank: int
    distance: float
    root: int
    subtree: str


def ranking_payload(matches: Sequence[Match]) -> List[MatchPayload]:
    """One ranking as JSON-ready dicts: rank, distance, root, subtree."""
    return [
        {
            "rank": rank,
            "distance": m.distance,
            "root": m.root,
            "subtree": m.subtree.to_bracket(),
        }
        for rank, m in enumerate(matches, 1)
    ]


def parse_cost(spec: object) -> CostModel:
    """A request's cost field as a cost model.

    Accepts ``"unit"`` (or omitted/None), a ``[rename, delete, insert]``
    list, or the CLI's ``"REN,DEL,INS"`` string.  Invalid specs raise
    :class:`~repro.errors.ServeError` (HTTP 400); cost-model constraint
    violations (``cst >= 1``) propagate as
    :class:`~repro.errors.CostModelError`.
    """
    if spec is None or spec == "unit":
        return UnitCostModel()
    if isinstance(spec, str):
        parts = spec.split(",")
    elif isinstance(spec, (list, tuple)):
        parts = list(spec)
    else:
        raise ServeError(f"cost must be 'unit' or [REN, DEL, INS], got {spec!r}")
    if len(parts) != 3:
        raise ServeError(f"cost needs exactly 3 components, got {spec!r}")
    try:
        rename, delete, insert = (float(part) for part in parts)
    except (TypeError, ValueError):
        raise ServeError(
            f"cost components must be numbers, got {spec!r}"
        ) from None
    return WeightedCostModel(rename, delete, insert)


def cost_key(cost: CostModel) -> str:
    """A stable string identifying a cost model (cache/kernel key)."""
    if isinstance(cost, UnitCostModel):
        return "unit"
    if isinstance(cost, WeightedCostModel):
        return f"w:{cost.rename_cost:g},{cost.delete_cost:g},{cost.insert_cost:g}"
    return f"{type(cost).__module__}.{type(cost).__qualname__}@{id(cost):x}"
