"""Query registry: parse and validate each registered query once.

A long-lived TASM service answers many requests for the same small set
of query trees.  The registry front-loads everything per-query that is
request-independent:

* parsing/validation (bracket or XML source) happens at registration —
  a malformed query is rejected with a 400 before it can ever poison a
  request path;
* one :class:`~repro.distance.ted.PrefixDistanceKernel` per cost model
  is built lazily and then reused for every request (the kernel interns
  document labels incrementally across calls, so its label table only
  warms up over the server's lifetime);
* the per-query pruning threshold ``k + 2|Q| - 1`` (unit costs; the
  weighted-cost generalisation of
  :func:`~repro.tasm.postorder.prune_threshold`) is a method away.

Kernels reuse internal row buffers across calls and are therefore not
safe for concurrent use.  Rather than serialising requests on a
per-query lock, each registered query keeps one *warm template* kernel
per cost model and hands concurrent rankings independent clones of it
(:meth:`RegisteredQuery.kernel_instance`): the clone shares the
template's interned document-label dictionary at clone time but owns
fresh row buffers, so two requests for the same query stream documents
fully in parallel.  After a ranking the executor offers its clone back
(:meth:`RegisteredQuery.absorb_kernel`); the clone that has interned
the most document labels becomes the new template, so the warm state
keeps improving without any lock being held across a scan.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, List, Optional

from ..distance.cost import CostModel, validate_cost_model
from ..distance.ted import PrefixDistanceKernel, resolve_backend
from ..errors import ServeError
from ..tasm.postorder import prune_threshold
from ..trees.tree import Tree
from .wire import cost_key

__all__ = ["QueryRegistry", "RegisteredQuery"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,128}$")


class RegisteredQuery:
    """One validated query plus its per-cost-model kernels."""

    __slots__ = (
        "name",
        "tree",
        "bracket",
        "version",
        "backend",
        "lock",
        "_kernels",
    )

    def __init__(
        self, name: str, tree: Tree, version: int = 1, backend: str = "auto"
    ):
        self.name = name
        self.tree = tree
        #: Canonical bracket form — the identity used in cache keys.
        self.bracket = tree.to_bracket()
        self.version = version
        #: Resolved kernel row engine every kernel of this query uses.
        self.backend = resolve_backend(backend)
        #: Guards the warm-template map only — never held across a scan.
        self.lock = threading.Lock()
        self._kernels: Dict[str, PrefixDistanceKernel] = {}

    def __len__(self) -> int:
        return len(self.tree)

    def kernel(self, cost: CostModel) -> PrefixDistanceKernel:
        """The warm template kernel for ``cost`` (built on first use).

        The template itself must only be streamed single-threaded;
        concurrent callers want :meth:`kernel_instance`.
        """
        key = cost_key(cost)
        with self.lock:
            kernel = self._kernels.get(key)
            if kernel is None:
                kernel = PrefixDistanceKernel(self.tree, cost, self.backend)
                self._kernels[key] = kernel
        return kernel

    def kernel_instance(self, cost: CostModel) -> PrefixDistanceKernel:
        """A private clone of the warm template, safe to stream with.

        The clone copies the template's interned document-label
        dictionary (so a warmed-up server never re-interns common
        labels) but owns fresh DP row buffers — the only state a scan
        mutates — so any number of clones run concurrently.
        """
        key = cost_key(cost)
        with self.lock:
            template = self._kernels.get(key)
            if template is None:
                template = PrefixDistanceKernel(self.tree, cost, self.backend)
                self._kernels[key] = template
            return template.clone()

    def absorb_kernel(
        self, cost: CostModel, kernel: PrefixDistanceKernel
    ) -> None:
        """Offer a used clone back as the warm template.

        The clone becomes the template when it has interned more
        document labels than the current one — the next
        :meth:`kernel_instance` then starts warmer.  Publishing the
        whole kernel is safe because templates are only ever cloned,
        never streamed, once absorbed.
        """
        key = cost_key(cost)
        with self.lock:
            template = self._kernels.get(key)
            if (
                template is None
                or kernel.interned_doc_labels > template.interned_doc_labels
            ):
                self._kernels[key] = kernel

    def threshold(self, k: int, cost: CostModel) -> int:
        """Largest candidate-subtree size for this query at ``k``."""
        return prune_threshold(k, len(self.tree), cost)

    def payload(
        self, k: int = 5, cost: Optional[CostModel] = None
    ) -> Dict[str, object]:
        row = {
            "name": self.name,
            "bracket": self.bracket,
            "nodes": len(self.tree),
            "version": self.version,
        }
        if cost is not None:
            row["threshold"] = self.threshold(k, cost)
        return row


class QueryRegistry:
    """Named, validated queries with pre-built distance kernels.

    ``backend`` picks the kernel row engine for every query registered
    here; it is resolved at construction, so a server asked for the
    numpy engine on a host without numpy fails at startup with a clear
    error instead of on the first request.
    """

    def __init__(self, backend: str = "auto"):
        self.backend = resolve_backend(backend)
        self._queries: Dict[str, RegisteredQuery] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, name: str) -> bool:
        return name in self._queries

    def names(self) -> List[str]:
        return sorted(self._queries)

    def register(
        self, name: str, source: str, fmt: str = "bracket"
    ) -> RegisteredQuery:
        """Parse, validate, and (re-)register a query under ``name``.

        ``fmt`` is ``"bracket"`` or ``"xml"`` (``source`` is the raw
        query text either way).  Re-registering a name replaces the
        query and bumps its version, which retires every cache entry
        keyed on the old bracket.  Parse failures raise the library's
        ordinary :class:`~repro.errors.BracketSyntaxError` /
        :class:`~repro.errors.XmlFormatError` — the HTTP layer maps
        them to 400s.
        """
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ServeError(
                f"query name must match {_NAME_RE.pattern}, got {name!r}"
            )
        if not isinstance(source, str) or not source.strip():
            raise ServeError(f"query {name!r} needs a non-empty source")
        if fmt == "bracket":
            tree = Tree.from_bracket(source)
        elif fmt == "xml":
            from ..xmlio.parse import tree_from_xml_string

            tree = tree_from_xml_string(source)
        else:
            raise ServeError(f"query format must be bracket or xml, got {fmt!r}")
        with self._lock:
            previous = self._queries.get(name)
            version = previous.version + 1 if previous is not None else 1
            entry = RegisteredQuery(name, tree, version, self.backend)
            self._queries[name] = entry
        return entry

    def get(self, name: str) -> RegisteredQuery:
        entry = self._queries.get(name)
        if entry is None:
            raise ServeError(f"no registered query named {name!r}", status=404)
        return entry

    def resolve(self, spec: str) -> RegisteredQuery:
        """A request's query field as a registered (or ad-hoc) query.

        A spec starting with ``{`` is an inline bracket tree — parsed
        into an unregistered, request-local entry (fresh kernel, no
        contention).  Anything else is looked up by name.
        """
        if not isinstance(spec, str) or not spec:
            raise ServeError(f"query must be a name or bracket tree, got {spec!r}")
        if spec.lstrip().startswith("{"):
            return RegisteredQuery(
                "<inline>", Tree.from_bracket(spec), 0, self.backend
            )
        return self.get(spec)

    def validate_k(self, k) -> int:
        """The request's ``k`` as a positive int (400 otherwise)."""
        if isinstance(k, bool) or not isinstance(k, int) or k <= 0:
            raise ServeError(f"k must be a positive integer, got {k!r}")
        return k

    def validate_cost(self, cost: CostModel) -> CostModel:
        return validate_cost_model(cost)

    def payload(self) -> List[dict]:
        return [self._queries[name].payload() for name in self.names()]
