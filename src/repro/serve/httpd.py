"""Minimal HTTP/1.1 over asyncio streams — no runtime dependencies.

The serving layer needs exactly this much HTTP: JSON request bodies
sized by ``Content-Length``, JSON responses, keep-alive.  Rather than
pull in a framework, a ~hundred lines of protocol code read requests
from an :class:`asyncio.StreamReader` and write responses to the
matching writer; :mod:`repro.serve.server` supplies the routing on
top.

Limits are deliberately tight (16 KiB of request head, 8 MiB of body):
a TASM request is a few names and numbers, and the server should shed
malformed or abusive traffic before buffering it.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl

__all__ = [
    "HttpError",
    "Request",
    "TextResponse",
    "query_params",
    "read_request",
    "write_response",
]

_MAX_HEAD_BYTES = 16 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A protocol-level failure that maps straight to a status code."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


class TextResponse:
    """A plain-text response body (e.g. Prometheus exposition).

    Route handlers normally return JSON-serialisable payloads; wrapping
    a string in this class makes :func:`encode_response` send it
    verbatim with the given content type instead.
    """

    __slots__ = ("text", "content_type")

    def __init__(
        self, text: str, content_type: str = "text/plain; charset=utf-8"
    ):
        self.text = text
        self.content_type = content_type


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(
        self, method: str, path: str, headers: Dict[str, str], body: bytes
    ):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self):
        """The body as JSON (400 on syntax errors; ``None`` if empty)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request, or return None on a clean connection close."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # peer closed between requests: normal keep-alive end
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large") from None
    if len(head) > _MAX_HEAD_BYTES:
        raise HttpError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, path, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0 or length > _MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes refused")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise HttpError(400, "truncated request body") from None
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return Request(method, path, headers, body)


def encode_response(
    status: int,
    payload: object,
    keep_alive: bool = True,
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """A full response (status line, headers, body) as bytes.

    ``payload`` is JSON-encoded — byte-identical to what it always was,
    since ``headers`` only adds head lines — unless it is a
    :class:`TextResponse`, which is sent verbatim.  ``headers`` adds
    extra response headers (e.g. ``X-Request-Id``).
    """
    if isinstance(payload, TextResponse):
        body = payload.text.encode("utf-8")
        content_type = payload.content_type
    else:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        content_type = "application/json"
    reason = _REASONS.get(status, "Unknown")
    extra = ""
    if headers:
        extra = "".join(f"{name}: {value}\r\n" for name, value in headers.items())
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extra}"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    payload: object,
    keep_alive: bool = True,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    writer.write(encode_response(status, payload, keep_alive, headers))
    await writer.drain()


def route_key(method: str, path: str) -> Tuple[str, str]:
    """Normalise a request target for routing (drop the query string)."""
    path = path.split("?", 1)[0]
    return method.upper(), path


def query_params(path: str) -> Dict[str, str]:
    """The query-string parameters of a request target (last value wins)."""
    _, sep, query = path.partition("?")
    if not sep:
        return {}
    return dict(parse_qsl(query, keep_blank_values=True))
