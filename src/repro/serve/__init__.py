"""Async TASM serving layer: the step from library to service.

The paper's prefix-ring memory bound makes top-k subtree matching a
constant-memory *streaming* operation — exactly what a long-lived
process wants.  This package runs the matching engine behind an
asyncio HTTP front end so registered queries keep their pre-built
:class:`~repro.distance.ted.PrefixDistanceKernel`s warm across
requests, documents are served from read-only
:class:`~repro.postorder.interval.IntervalStore` files or on-demand
XML, and repeated requests hit an LRU result cache keyed by
``(document, version, query, k, cost model)``.

* :mod:`~repro.serve.registry` — validated queries + per-cost kernels.
* :mod:`~repro.serve.catalog`  — store/XML documents with versions.
* :mod:`~repro.serve.cache`    — the LRU result cache.
* :mod:`~repro.serve.metrics`  — request/latency/ring-peak counters.
* :mod:`~repro.serve.coalesce` — one-scan-many-queries request merging.
* :mod:`~repro.serve.executor` — stream vs sharded-pool routing.
* :mod:`~repro.serve.httpd`    — dependency-free HTTP/1.1 on asyncio.
* :mod:`~repro.serve.server`   — routes, lifecycle, ``ServerThread``.
* :mod:`~repro.serve.client`   — stdlib client (tests, CI, bench).
* :mod:`~repro.serve.wire`     — the JSON ranking format shared with
  the CLI (the byte-identity contract CI enforces).

Start one from the command line::

    repro serve --store corpus.db --port 8077 --workers 4
"""

from importlib import import_module
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from .cache import ResultCache, result_key
    from .catalog import CatalogDocument, DocumentCatalog
    from .client import ServeClient, ServeHttpError
    from .coalesce import PendingQuery, ScanCoalescer
    from .executor import TasmExecutor
    from .metrics import ServeMetrics
    from .registry import QueryRegistry, RegisteredQuery
    from .server import ServerConfig, ServerThread, TasmServer, run_server
    from .wire import cost_key, parse_cost, ranking_payload

#: Public name -> defining submodule.  Resolved lazily (PEP 562) so a
#: one-shot CLI run that only needs the wire format never pays for the
#: asyncio/http server stack.
_EXPORTS = {
    "CatalogDocument": ".catalog",
    "DocumentCatalog": ".catalog",
    "PendingQuery": ".coalesce",
    "QueryRegistry": ".registry",
    "RegisteredQuery": ".registry",
    "ResultCache": ".cache",
    "ScanCoalescer": ".coalesce",
    "ServeClient": ".client",
    "ServeHttpError": ".client",
    "ServeMetrics": ".metrics",
    "ServerConfig": ".server",
    "ServerThread": ".server",
    "TasmExecutor": ".executor",
    "TasmServer": ".server",
    "cost_key": ".wire",
    "parse_cost": ".wire",
    "ranking_payload": ".wire",
    "result_key": ".cache",
    "run_server": ".server",
}


def __getattr__(name: str):
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(submodule, __name__), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CatalogDocument",
    "DocumentCatalog",
    "PendingQuery",
    "QueryRegistry",
    "RegisteredQuery",
    "ResultCache",
    "ScanCoalescer",
    "ServeClient",
    "ServeHttpError",
    "ServeMetrics",
    "ServerConfig",
    "ServerThread",
    "TasmExecutor",
    "TasmServer",
    "cost_key",
    "parse_cost",
    "ranking_payload",
    "result_key",
    "run_server",
]
