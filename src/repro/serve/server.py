"""The TASM HTTP service: configuration, routing, lifecycle.

``TasmServer`` composes the serving subsystem — query registry,
document catalog, result cache, metrics, executor — behind the asyncio
front end of :mod:`repro.serve.httpd`:

========================  ====================================================
``GET /healthz``          liveness + registry/catalog counts (CI polls this)
``GET /metrics``          request counts, p50/p95 latency, ring high-water
``GET /v1/queries``       registered queries
``PUT /v1/queries/NAME``  register/replace a query (body: bracket or xml)
``GET /v1/documents``     servable documents
``PUT /v1/documents/NAME``register/re-register an XML file (bumps version)
``POST /v1/tasm``         rank one query against one document
``POST /v1/tasm/batch``   rank a query workload in one shared document pass
========================  ====================================================

Ranking work is CPU-bound and blocking, so the event loop hands it to a
bounded thread pool (`run_in_executor`) and stays free to accept and
parse connections; large documents fan out further to the executor's
persistent process pool.  Every request — success or failure — lands in
the metrics reservoirs.

``ServerThread`` hosts a server on a private event loop in a daemon
thread, which is how the test suite and the bench drive a real server
in-process; ``repro serve`` runs :func:`run_server` in the foreground.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import sys
import threading
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional, Tuple

from .. import __version__
from ..errors import ReproError, ServeError
from ..obs.log import jsonlog
from ..obs.trace import Span, new_request_id
from .cache import ResultCache
from .catalog import DocumentCatalog
from .executor import TasmExecutor
from .httpd import (
    HttpError,
    Request,
    TextResponse,
    query_params,
    read_request,
    route_key,
    write_response,
)
from .metrics import ServeMetrics
from .registry import QueryRegistry

__all__ = ["ServerConfig", "ServerThread", "TasmServer", "run_server"]


@dataclass
class ServerConfig:
    """Everything needed to boot one TASM server."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = pick a free port (tests, bench)
    store: Optional[str] = None  # IntervalStore file to attach
    xml_documents: Dict[str, str] = field(default_factory=dict)  # name -> path
    queries: Dict[str, str] = field(default_factory=dict)  # name -> bracket
    workers: int = 1  # >1 enables the persistent shard pool
    shard_threshold: int = 50_000  # nodes at which requests go sharded
    cache_size: int = 256  # LRU entries; 0 disables caching
    request_threads: int = 8  # concurrent blocking rankings
    max_k: int = 10_000  # per-request k ceiling (ring is O(k)-allocated)
    backend: str = "auto"  # kernel row engine ("auto"/"python"/"numpy")
    #: Ranking engine for store documents: "auto" uses the candidate
    #: index when present, "stream" forces scans, "indexed" requires
    #: the index (rejecting requests for unindexed documents).
    engine: str = "auto"
    #: How long the first cache-missing request for a document waits
    #: for more queries to coalesce into its scan; 0 still single-
    #: flights and merges whatever is already pending.
    coalesce_window_ms: float = 5.0
    #: Queries per shared engine pass; larger batches chunk.
    max_batch_queries: int = 32
    #: Requests slower than this emit one structured JSON log line with
    #: the per-stage span breakdown; None disables slow-request logging.
    slow_request_seconds: Optional[float] = 1.0
    #: Record a span tree per request (cheap: a handful of timers per
    #: request, bounded children).  Off, only counters are collected.
    trace: bool = True
    #: Log the full resolved config at startup (``repro serve -v``).
    verbose: bool = False


def _log(message: str) -> None:
    print(
        f"[repro.serve {time.strftime('%H:%M:%S')}] {message}",
        file=sys.stderr,
        flush=True,
    )


class TasmServer:
    """One configured service instance on one asyncio event loop."""

    def __init__(self, config: ServerConfig):
        self.config = config
        # Backend resolution happens here: a server explicitly asked to
        # run the numpy engine on a host without numpy dies at startup
        # with BackendError, before it can accept a single request.
        self.registry = QueryRegistry(config.backend)
        self.catalog = DocumentCatalog(config.store)
        self.cache = ResultCache(config.cache_size)
        self.metrics = ServeMetrics(kernel_backend=self.registry.backend)
        self.executor = TasmExecutor(
            self.registry,
            self.catalog,
            cache=self.cache,
            workers=config.workers,
            shard_threshold=config.shard_threshold,
            max_k=config.max_k,
            coalesce_window_ms=config.coalesce_window_ms,
            max_batch_queries=config.max_batch_queries,
            engine=config.engine,
        )
        for name, path in config.xml_documents.items():
            self.catalog.register_xml(name, path)
        for name, bracket in config.queries.items():
            self.registry.register(name, bracket)
        self._server: Optional[asyncio.AbstractServer] = None
        self._threads: Optional[ThreadPoolExecutor] = None
        self._connections: "set[asyncio.Task[None]]" = set()
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        # The process pool must fork before request threads exist.
        self.executor.start()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.request_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log(
            f"listening on http://{self.config.host}:{self.port} "
            f"({len(self.catalog)} documents, {len(self.registry)} queries, "
            f"workers={self.config.workers}, "
            f"coalesce_window_ms={self.config.coalesce_window_ms}, "
            f"max_batch_queries={self.config.max_batch_queries})"
        )
        if self.config.verbose:
            _log(f"config {json.dumps(asdict(self.config), sort_keys=True)}")

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Idle keep-alive connections sit parked in read_request; cancel
        # them so the loop can wind down without orphaned tasks.
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None
        self.executor.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServeError("serve_forever() before start()")
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await write_response(
                        writer,
                        exc.status,
                        {"error": str(exc)},
                        keep_alive=False,
                    )
                    break
                if request is None:
                    break
                # Propagate the caller's request id or assign one; it is
                # echoed in the response headers (never in the body, so
                # the byte-identity contract with the CLI JSON holds).
                request_id = (
                    request.headers.get("x-request-id") or new_request_id()
                )
                status, payload, info = await self._dispatch(
                    request, request_id
                )
                await write_response(
                    writer,
                    status,
                    payload,
                    keep_alive=request.keep_alive,
                    headers={"X-Request-Id": request_id},
                )
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError):
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request, request_id: str = ""
    ) -> Tuple[int, object, dict]:
        method, path = route_key(request.method, request.path)
        route = f"{method} {path}"
        started = time.perf_counter()
        span = (
            Span(route, {"request_id": request_id})
            if self.config.trace
            else None
        )
        info: Dict[str, Any] = {}
        try:
            status, payload, info = await self._route(
                method, path, request, span
            )
        except ServeError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except HttpError as exc:
            status, payload = exc.status, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 400, {
                "error": str(exc),
                "kind": type(exc).__name__,
            }
        except Exception as exc:  # noqa: BLE001 - the 500 boundary
            _log(f"internal error on {route}: {exc}\n{traceback.format_exc()}")
            status, payload = 500, {"error": f"internal error: {exc}"}
        if span is not None:
            span.finish()
        elapsed = time.perf_counter() - started
        self.metrics.observe(
            self._metrics_route(method, path),
            status,
            elapsed,
            engine=info.get("engine"),
            ring_peak=info.get("ring_peak"),
            ring_capacity=info.get("ring_capacity"),
            stats=info.get("stats"),
            coalesce=info.get("coalesce"),
        )
        slow = self.config.slow_request_seconds
        if slow is not None and elapsed >= slow:
            jsonlog(
                "slow_request",
                request_id=request_id,
                route=route,
                status=status,
                seconds=round(elapsed, 6),
                engine=info.get("engine"),
                stages=span.to_dict() if span is not None else None,
                stats=info.get("stats"),
            )
        if status >= 400:
            _log(f"{route} -> {status} ({payload.get('error', '')})")
        return status, payload, info

    _KNOWN_PATHS = frozenset(
        ("/healthz", "/metrics", "/v1/queries", "/v1/documents",
         "/v1/tasm", "/v1/tasm/batch")
    )

    @staticmethod
    def _metrics_route(method: str, path: str) -> str:
        # Collapse per-name and unrouted paths so metrics cardinality
        # stays bounded — otherwise a path-scanning client would grow a
        # counter and a latency reservoir per probed URL.
        if path.startswith("/v1/queries/"):
            path = "/v1/queries/{name}"
        elif path.startswith("/v1/documents/"):
            path = "/v1/documents/{name}"
        elif path not in TasmServer._KNOWN_PATHS:
            path = "<unknown>"
        return f"{method} {path}"

    async def _route(
        self, method: str, path: str, request: Request, span=None
    ) -> Tuple[int, object, dict]:
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, self._health_payload(), {}
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            fmt = query_params(request.path).get("format", "json")
            if fmt == "prometheus":
                return 200, TextResponse(
                    self.metrics.prometheus(),
                    "text/plain; version=0.0.4; charset=utf-8",
                ), {}
            if fmt != "json":
                raise HttpError(
                    400, f"unknown metrics format {fmt!r} (json|prometheus)"
                )
            return 200, self.metrics.payload(), {}
        if path == "/v1/queries":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, {"queries": self.registry.payload()}, {}
        if path.startswith("/v1/queries/"):
            return await self._route_query(method, path, request)
        if path == "/v1/documents":
            if method != "GET":
                raise HttpError(405, f"{method} not allowed on {path}")
            return 200, {"documents": self.catalog.payload()}, {}
        if path.startswith("/v1/documents/"):
            return await self._route_document(method, path, request)
        if path == "/v1/tasm":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            payload, info = await self._blocking(
                self.executor.run, request.json(), span
            )
            return 200, payload, info
        if path == "/v1/tasm/batch":
            if method != "POST":
                raise HttpError(405, f"{method} not allowed on {path}")
            payload, info = await self._blocking(
                self.executor.run_batch, request.json(), span
            )
            return 200, payload, info
        raise HttpError(404, f"no route for {method} {path}")

    async def _route_query(
        self, method: str, path: str, request: Request
    ) -> Tuple[int, object, dict]:
        name = path[len("/v1/queries/"):]
        if method == "PUT":
            body = request.json()
            if not isinstance(body, dict):
                raise ServeError("body must be a JSON object")
            if "bracket" in body:
                source, fmt = body["bracket"], "bracket"
            elif "xml" in body:
                source, fmt = body["xml"], "xml"
            else:
                raise ServeError("body needs a 'bracket' or 'xml' field")
            entry = await self._blocking(
                self.registry.register, name, source, fmt
            )
            return 200, {"query": entry.payload()}, {}
        if method == "GET":
            return 200, {"query": self.registry.get(name).payload()}, {}
        raise HttpError(405, f"{method} not allowed on {path}")

    async def _route_document(
        self, method: str, path: str, request: Request
    ) -> Tuple[int, object, dict]:
        name = path[len("/v1/documents/"):]
        if method == "PUT":
            body = request.json()
            if not isinstance(body, dict):
                raise ServeError("body must be a JSON object")
            if "path" in body:
                path, fmt = body["path"], body.get("format", "auto")
            elif "xml_path" in body:
                # Pre-0.10 registration shape; format is implied.
                path, fmt = body["xml_path"], "xml"
            else:
                raise ServeError(
                    "body needs a 'path' field (optionally with "
                    "'format': xml|json|html|ast) or the legacy "
                    "'xml_path' field"
                )
            doc = await self._blocking(
                self.catalog.register_file, name, path, fmt
            )
            return 200, {"document": doc.payload()}, {}
        if method == "GET":
            return 200, {"document": self.catalog.get(name).payload()}, {}
        raise HttpError(405, f"{method} not allowed on {path}")

    async def _blocking(self, fn, *args):
        if self._threads is None:
            raise ServeError("request dispatched before start()")
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._threads, lambda: fn(*args))

    def _health_payload(self) -> Dict[str, object]:
        documents = self.catalog.payload()
        return {
            "status": "ok",
            "version": __version__,
            "started_at": round(self.metrics.started_at, 3),
            "uptime_seconds": round(self.metrics.uptime_seconds(), 3),
            "documents": len(self.catalog),
            "queries": len(self.registry),
            "workers": self.config.workers,
            "shard_threshold": self.config.shard_threshold,
            "kernel_backend": self.registry.backend,
            "engine": self.executor.engine,
            "index": {doc["name"]: doc["index"] for doc in documents},
            "workloads": {doc["name"]: doc["workload"] for doc in documents},
            "cache": self.cache.payload(),
            "coalesce": self.executor.coalescer.payload(),
        }


class ServerThread:
    """A live server on a private event loop in a daemon thread.

    Context-manager: entering starts the loop and blocks until the
    listening socket is bound (or raises the startup error); exiting
    stops the loop and joins the thread.  ``server.port`` is the bound
    port — configs default to port 0, so parallel tests never collide.
    """

    def __init__(self, config: ServerConfig):
        self.config = config
        self.server: Optional[TasmServer] = None
        self.port: Optional[int] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("server thread failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if (
            self._loop is not None
            and self._stop is not None
            and not self._loop.is_closed()
        ):
            # The loop may close between the check and the call.
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        self._stop = asyncio.Event()
        server = None
        try:
            server = TasmServer(self.config)
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._ready.set()
            if server is not None:
                await server.close()
            return
        self.server = server
        self.port = server.port
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await server.close()


def run_server(config: ServerConfig) -> int:
    """Run a server in the foreground until interrupted (the CLI path).

    Prints the bound address to stdout once listening — the
    ``service-smoke`` CI job parses that line to find the port when the
    config asked for an ephemeral one.
    """

    async def _amain() -> None:
        server = TasmServer(config)
        await server.start()
        print(
            f"repro serve: listening on http://{config.host}:{server.port}",
            flush=True,
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(_amain())
    except KeyboardInterrupt:
        _log("interrupted; shutting down")
    return 0
