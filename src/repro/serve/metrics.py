"""Service metrics: request counts, latency quantiles, ring high-water.

``GET /metrics`` answers with a JSON snapshot of these counters.  Three
groups:

* **requests** — total / per-route counts and error counts (by status
  class), so traffic and failure mix are visible at a glance;
* **latency** — p50/p95 (and max) over a bounded reservoir of the most
  recent observations, per route; bounded so a long-lived server's
  memory stays flat, recent so the quantiles track current behaviour;
* **engine** — the ring-buffer peak high-water mark and capacity
  observed across all streamed requests (the paper's ``k + 2|Q| - 1``
  memory guarantee, continuously monitored in production), plus how
  many requests took the in-process stream vs the sharded pool path.
"""

from __future__ import annotations

import threading
from collections import Counter, deque
from typing import Deque, Dict, Optional

__all__ = ["ServeMetrics"]

#: Latency observations kept per route (a deque, oldest dropped first).
_RESERVOIR = 512


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of a non-empty ascending list."""
    idx = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[idx]


class ServeMetrics:
    """Thread-safe counters behind ``GET /metrics``.

    ``kernel_backend`` names the distance-kernel row engine the server
    resolved at startup ("python" or "numpy") — operators reading
    latency numbers need to know which engine produced them.
    """

    def __init__(self, kernel_backend: str = "python"):
        self.kernel_backend = kernel_backend
        self._lock = threading.Lock()
        self.requests_total = 0
        self.errors_total = 0
        self._by_route: Counter = Counter()
        self._by_status: Counter = Counter()
        self._latency: Dict[str, Deque[float]] = {}
        self._engine: Counter = Counter()
        self.ring_peak_high_water = 0
        self.ring_capacity_high_water = 0

    def observe(
        self,
        route: str,
        status: int,
        seconds: float,
        engine: Optional[str] = None,
        ring_peak: Optional[int] = None,
        ring_capacity: Optional[int] = None,
    ) -> None:
        """Record one finished request."""
        with self._lock:
            self.requests_total += 1
            self._by_route[route] += 1
            self._by_status[f"{status // 100}xx"] += 1
            if status >= 400:
                self.errors_total += 1
            reservoir = self._latency.get(route)
            if reservoir is None:
                reservoir = self._latency[route] = deque(maxlen=_RESERVOIR)
            reservoir.append(seconds)
            if engine is not None:
                self._engine[engine] += 1
            if ring_peak is not None and ring_peak > self.ring_peak_high_water:
                self.ring_peak_high_water = ring_peak
            if (
                ring_capacity is not None
                and ring_capacity > self.ring_capacity_high_water
            ):
                self.ring_capacity_high_water = ring_capacity

    def payload(self) -> dict:
        """A JSON-ready snapshot of every counter."""
        with self._lock:
            latency = {}
            for route, reservoir in sorted(self._latency.items()):
                values = sorted(reservoir)
                latency[route] = {
                    "observations": len(values),
                    "p50_seconds": round(_quantile(values, 0.50), 6),
                    "p95_seconds": round(_quantile(values, 0.95), 6),
                    "max_seconds": round(values[-1], 6),
                }
            return {
                "kernel_backend": self.kernel_backend,
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "requests_by_route": dict(sorted(self._by_route.items())),
                "responses_by_status_class": dict(
                    sorted(self._by_status.items())
                ),
                "latency_by_route": latency,
                "engine_requests": dict(sorted(self._engine.items())),
                "ring_peak_high_water": self.ring_peak_high_water,
                "ring_capacity_high_water": self.ring_capacity_high_water,
            }
