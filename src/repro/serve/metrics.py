"""Service metrics: request counts, latency, and engine telemetry.

``GET /metrics`` answers with a JSON snapshot of these counters, and
``GET /metrics?format=prometheus`` with the same data in Prometheus
text exposition (rendered by :mod:`repro.obs.prom`).  Four groups:

* **requests** — total / per-route counts and error counts, with 4xx
  (client) and 5xx (server) failures broken out — they are different
  signals — and ``errors_total`` kept for compatibility;
* **latency** — p50/p95 (and max) over a bounded reservoir of the most
  recent observations per route, plus fixed-bucket histograms suitable
  for Prometheus quantile queries; bounded so a long-lived server's
  memory stays flat;
* **engine** — the ring-buffer peak high-water mark and capacity
  observed across all streamed requests (the paper's ``k + 2|Q| - 1``
  memory guarantee, continuously monitored in production), how many
  requests took the stream / sharded / cache path, and the running
  totals of every :class:`~repro.tasm.postorder.PostorderStats`
  counter — candidates vs static/dynamic prunes, kernel invocations
  and rows per backend, stage seconds, ring occupancy;
* **process** — ``started_at`` / ``uptime_seconds`` / package version,
  so operators can tell how long the counters have accumulated.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, List, Optional

from .. import __version__
from ..obs.prom import MetricFamily, format_value, render_families
from ..tasm.postorder import RING_OCCUPANCY_BUCKETS

__all__ = ["COALESCE_BATCH_BUCKETS", "LATENCY_BUCKETS", "ServeMetrics"]

#: Latency observations kept per route (a deque, oldest dropped first).
_RESERVOIR = 512

#: Histogram bucket upper bounds (seconds) for request latency — spans
#: cache hits (sub-ms) through 100k-corpus scans (~10 s).
LATENCY_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: PostorderStats payload keys accumulated into the engine totals.
_ENGINE_COUNTER_KEYS = (
    "dequeued",
    "candidates_evaluated",
    "subtrees_scored",
    "pruned_large",
    "pruned_buffered",
    "pruned_static",
    "pruned_dynamic",
    "head_flushes",
    "wholesale_flushes",
    "kernel_invocations",
    "kernel_invocations_numpy",
    "kernel_rows",
    "kernel_rows_numpy",
    "index_candidates",
    "index_lb_skips",
    "index_dedup_hits",
)

_STAGE_KEYS = ("total", "scan", "candidate_eval", "kernel")

#: Histogram bucket upper bounds for queries-per-engine-pass (the
#: coalescer's batch sizes); the executor's default max batch is 32.
COALESCE_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32)


def _quantile(sorted_values, q: float) -> float:
    """Nearest-rank quantile of a non-empty ascending list."""
    idx = max(0, min(len(sorted_values) - 1, int(q * len(sorted_values))))
    return sorted_values[idx]


class ServeMetrics:
    """Thread-safe counters behind ``GET /metrics``.

    ``kernel_backend`` names the distance-kernel row engine the server
    resolved at startup ("python" or "numpy") — operators reading
    latency numbers need to know which engine produced them.
    """

    def __init__(self, kernel_backend: str = "python"):
        self.kernel_backend = kernel_backend
        self._lock = threading.Lock()
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.requests_total = 0
        self.errors_total = 0
        self.errors_4xx = 0
        self.errors_5xx = 0
        self._by_route: Counter = Counter()
        self._by_status: Counter = Counter()
        self._latency: Dict[str, Deque[float]] = {}
        #: Per route: per-bucket counts (len(LATENCY_BUCKETS) + 1, the
        #: last slot is the +Inf overflow), running sum, running count.
        self._hist: Dict[str, List[int]] = {}
        self._hist_sum: Counter = Counter()
        self._engine: Counter = Counter()
        self._engine_totals: Counter = Counter()
        self._stage_seconds: Dict[str, float] = dict.fromkeys(_STAGE_KEYS, 0.0)
        self._ring_occupancy = [0] * RING_OCCUPANCY_BUCKETS
        self.ring_peak_high_water = 0
        self.ring_capacity_high_water = 0
        #: Coalescer accounting: requests that went through the
        #: coalescer, requests fully answered by another request's
        #: in-flight scan, queries ranked by leaders, queries that
        #: joined an in-flight entry, and engine passes actually run.
        self._coalesce: Counter = Counter()
        #: Queries-per-pass histogram (last slot = +Inf overflow).
        self._coalesce_batch = [0] * (len(COALESCE_BATCH_BUCKETS) + 1)
        self._coalesce_batch_sum = 0
        self._coalesce_batch_count = 0

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    def observe(
        self,
        route: str,
        status: int,
        seconds: float,
        engine: Optional[str] = None,
        ring_peak: Optional[int] = None,
        ring_capacity: Optional[int] = None,
        stats: Optional[dict] = None,
        coalesce: Optional[dict] = None,
    ) -> None:
        """Record one finished request.

        ``stats``, when the request ran the matching engine, is a
        :meth:`~repro.tasm.postorder.PostorderStats.payload` dict; its
        counters accumulate into the server-lifetime engine totals.
        ``coalesce`` is the executor's per-request coalescing summary
        (role, batch sizes, shared-query count) for requests whose
        misses went through the scan coalescer.
        """
        with self._lock:
            self.requests_total += 1
            self._by_route[route] += 1
            self._by_status[f"{status // 100}xx"] += 1
            if status >= 400:
                self.errors_total += 1
                if status >= 500:
                    self.errors_5xx += 1
                else:
                    self.errors_4xx += 1
            reservoir = self._latency.get(route)
            if reservoir is None:
                reservoir = self._latency[route] = deque(maxlen=_RESERVOIR)
            reservoir.append(seconds)
            hist = self._hist.get(route)
            if hist is None:
                hist = self._hist[route] = [0] * (len(LATENCY_BUCKETS) + 1)
            for i, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    hist[i] += 1
                    break
            else:
                hist[-1] += 1
            self._hist_sum[route] += seconds
            if engine is not None:
                self._engine[engine] += 1
            if ring_peak is not None and ring_peak > self.ring_peak_high_water:
                self.ring_peak_high_water = ring_peak
            if (
                ring_capacity is not None
                and ring_capacity > self.ring_capacity_high_water
            ):
                self.ring_capacity_high_water = ring_capacity
            if stats is not None:
                for key in _ENGINE_COUNTER_KEYS:
                    value = stats.get(key)
                    if value:
                        self._engine_totals[key] += value
                stages = stats.get("stage_seconds") or {}
                for key in _STAGE_KEYS:
                    self._stage_seconds[key] += stages.get(key, 0.0)
                occupancy = stats.get("ring_occupancy")
                if occupancy:
                    for i, v in enumerate(occupancy[:RING_OCCUPANCY_BUCKETS]):
                        self._ring_occupancy[i] += v
            if coalesce is not None:
                self._coalesce["requests"] += 1
                if coalesce.get("role") == "coalesced":
                    self._coalesce["coalesced_requests"] += 1
                self._coalesce["queries"] += coalesce.get("queries", 0)
                self._coalesce["shared_queries"] += coalesce.get("shared", 0)
                self._coalesce["engine_passes"] += coalesce.get("passes", 0)
                for size in coalesce.get("batch_sizes") or ():
                    for i, bound in enumerate(COALESCE_BATCH_BUCKETS):
                        if size <= bound:
                            self._coalesce_batch[i] += 1
                            break
                    else:
                        self._coalesce_batch[-1] += 1
                    self._coalesce_batch_sum += size
                    self._coalesce_batch_count += 1

    def payload(self) -> Dict[str, object]:
        """A JSON-ready snapshot of every counter."""
        with self._lock:
            latency = {}
            for route, reservoir in sorted(self._latency.items()):
                values = sorted(reservoir)
                latency[route] = {
                    "observations": len(values),
                    "p50_seconds": round(_quantile(values, 0.50), 6),
                    "p95_seconds": round(_quantile(values, 0.95), 6),
                    "max_seconds": round(values[-1], 6),
                }
            return {
                "kernel_backend": self.kernel_backend,
                "version": __version__,
                "started_at": round(self.started_at, 3),
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "requests_total": self.requests_total,
                "errors_total": self.errors_total,
                "errors_4xx": self.errors_4xx,
                "errors_5xx": self.errors_5xx,
                "requests_by_route": dict(sorted(self._by_route.items())),
                "responses_by_status_class": dict(
                    sorted(self._by_status.items())
                ),
                "latency_by_route": latency,
                "engine_requests": dict(sorted(self._engine.items())),
                "engine_totals": {
                    key: self._engine_totals.get(key, 0)
                    for key in _ENGINE_COUNTER_KEYS
                },
                "stage_seconds": {
                    key: round(self._stage_seconds[key], 6)
                    for key in _STAGE_KEYS
                },
                "ring_occupancy": list(self._ring_occupancy),
                "ring_peak_high_water": self.ring_peak_high_water,
                "ring_capacity_high_water": self.ring_capacity_high_water,
                "coalesce": {
                    "requests": self._coalesce.get("requests", 0),
                    "coalesced_requests": self._coalesce.get(
                        "coalesced_requests", 0
                    ),
                    "queries": self._coalesce.get("queries", 0),
                    "shared_queries": self._coalesce.get("shared_queries", 0),
                    "engine_passes": self._coalesce.get("engine_passes", 0),
                    "scans_saved": max(
                        0,
                        self._coalesce.get("queries", 0)
                        + self._coalesce.get("shared_queries", 0)
                        - self._coalesce.get("engine_passes", 0),
                    ),
                    "batch_size_histogram": {
                        **{
                            format_value(bound): count
                            for bound, count in zip(
                                COALESCE_BATCH_BUCKETS,
                                self._coalesce_batch,
                                strict=False,
                            )
                        },
                        "+Inf": self._coalesce_batch[-1],
                    },
                },
            }

    def prometheus(self) -> str:
        """The same counters as Prometheus text exposition."""
        with self._lock:
            families = [
                MetricFamily(
                    "repro_build_info", "gauge",
                    "Constant 1 labelled with version and kernel backend",
                ).add(
                    1,
                    {
                        "version": __version__,
                        "kernel_backend": self.kernel_backend,
                    },
                ),
                MetricFamily(
                    "repro_uptime_seconds", "gauge",
                    "Seconds since server start",
                ).add(self.uptime_seconds()),
                MetricFamily(
                    "repro_requests_total", "counter", "Requests by route"
                ),
                MetricFamily(
                    "repro_errors_total", "counter",
                    "Error responses by status class",
                )
                .add(self.errors_4xx, {"class": "4xx"})
                .add(self.errors_5xx, {"class": "5xx"}),
                MetricFamily(
                    "repro_responses_total", "counter",
                    "Responses by status class",
                ),
                MetricFamily(
                    "repro_engine_requests_total", "counter",
                    "Requests by execution path (stream/sharded/cache)",
                ),
            ]
            requests = families[2]
            for route, count in sorted(self._by_route.items()):
                requests.add(count, {"route": route})
            responses = families[4]
            for klass, count in sorted(self._by_status.items()):
                responses.add(count, {"class": klass})
            engines = families[5]
            for engine, count in sorted(self._engine.items()):
                engines.add(count, {"engine": engine})
            # One histogram family holding every route's buckets — the
            # exposition format wants all samples of a family under a
            # single # TYPE block.
            latency_hist = MetricFamily(
                "repro_request_seconds", "histogram",
                "Request latency by route",
            )
            for route in sorted(self._hist):
                hist = self._hist[route]
                running = 0
                for bound, count in zip(LATENCY_BUCKETS, hist, strict=False):
                    running += count
                    latency_hist.add(
                        running,
                        {"route": route, "le": format_value(bound)},
                        suffix="_bucket",
                    )
                total = running + hist[-1]
                latency_hist.add(
                    total, {"route": route, "le": "+Inf"}, suffix="_bucket"
                )
                latency_hist.add(
                    self._hist_sum[route], {"route": route}, suffix="_sum"
                )
                latency_hist.add(total, {"route": route}, suffix="_count")
            if latency_hist.samples:
                # An empty histogram family would fail the parser's
                # completeness check (no _sum/_count yet).
                families.append(latency_hist)
            totals = MetricFamily(
                "repro_engine_events_total", "counter",
                "Streaming-engine counters (PostorderStats totals)",
            )
            for key in _ENGINE_COUNTER_KEYS:
                totals.add(self._engine_totals.get(key, 0), {"counter": key})
            families.append(totals)
            stages = MetricFamily(
                "repro_engine_stage_seconds_total", "counter",
                "Engine time by stage across all ranked requests",
            )
            for key in _STAGE_KEYS:
                stages.add(self._stage_seconds[key], {"stage": key})
            families.append(stages)
            occupancy = MetricFamily(
                "repro_ring_occupancy_flushes_total", "counter",
                "Flush events by ring occupancy octile (1 = emptiest)",
            )
            for i, count in enumerate(self._ring_occupancy):
                occupancy.add(count, {"octile": str(i + 1)})
            families.append(occupancy)
            coalesce_events = MetricFamily(
                "repro_coalesce_events_total", "counter",
                "Scan-coalescer accounting (requests, queries, shared "
                "queries, engine passes)",
            )
            for key in (
                "requests",
                "coalesced_requests",
                "queries",
                "shared_queries",
                "engine_passes",
            ):
                coalesce_events.add(self._coalesce.get(key, 0), {"event": key})
            families.append(coalesce_events)
            batch_hist = MetricFamily(
                "repro_coalesce_batch_queries", "histogram",
                "Queries per coalesced engine pass",
            )
            running = 0
            for bound, count in zip(
                COALESCE_BATCH_BUCKETS, self._coalesce_batch, strict=False
            ):
                running += count
                batch_hist.add(
                    running, {"le": format_value(bound)}, suffix="_bucket"
                )
            batch_hist.add(
                self._coalesce_batch_count, {"le": "+Inf"}, suffix="_bucket"
            )
            batch_hist.add(self._coalesce_batch_sum, suffix="_sum")
            batch_hist.add(self._coalesce_batch_count, suffix="_count")
            families.append(batch_hist)
            families.append(
                MetricFamily(
                    "repro_ring_peak_high_water", "gauge",
                    "Largest ring occupancy peak across streamed requests",
                ).add(self.ring_peak_high_water)
            )
            families.append(
                MetricFamily(
                    "repro_ring_capacity_high_water", "gauge",
                    "Largest ring capacity across streamed requests",
                ).add(self.ring_capacity_high_water)
            )
            return render_families(families)
