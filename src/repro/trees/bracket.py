"""Bracket notation for ordered labeled trees.

The bracket format is the de-facto interchange format of the tree edit
distance literature: a tree is ``{label child1 child2 ...}`` with no
separators, e.g. the paper's example query ``G`` (Figure 2) is
``{a{b}{c}}``.

Labels may contain arbitrary characters; ``{``, ``}`` and ``\\`` must be
escaped with a backslash.  Whitespace *between* tokens is ignored so
hand-written fixtures can be indented.
"""

from __future__ import annotations

from typing import List

from ..errors import BracketSyntaxError
from .node import Node

__all__ = ["parse_bracket", "to_bracket"]

_ESCAPABLE = {"{", "}", "\\"}


def parse_bracket(text: str) -> Node:
    """Parse bracket notation into a :class:`Node` tree.

    Raises :class:`BracketSyntaxError` with the offending offset when
    the input is malformed (unbalanced braces, trailing garbage, ...).
    """
    pos = 0
    length = len(text)

    # Skip leading whitespace.
    while pos < length and text[pos].isspace():
        pos += 1
    if pos >= length or text[pos] != "{":
        raise BracketSyntaxError("expected '{'", pos)

    root: Node = None  # type: ignore[assignment]
    stack: List[Node] = []
    while pos < length:
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        if ch == "{":
            pos += 1
            label_chars: List[str] = []
            while pos < length and text[pos] not in ("{", "}"):
                if text[pos] == "\\":
                    if pos + 1 >= length or text[pos + 1] not in _ESCAPABLE:
                        raise BracketSyntaxError("dangling escape", pos)
                    label_chars.append(text[pos + 1])
                    pos += 2
                else:
                    label_chars.append(text[pos])
                    pos += 1
            node = Node("".join(label_chars).strip())
            if stack:
                stack[-1].children.append(node)
            elif root is None:
                root = node
            else:
                raise BracketSyntaxError("multiple roots", pos)
            stack.append(node)
        elif ch == "}":
            if not stack:
                raise BracketSyntaxError("unbalanced '}'", pos)
            stack.pop()
            pos += 1
            if not stack:
                break
        else:  # pragma: no cover - unreachable: label chars consumed above
            raise BracketSyntaxError(f"unexpected character {ch!r}", pos)

    if stack:
        raise BracketSyntaxError("unbalanced '{'", length)
    # Only whitespace may follow the closing brace of the root.
    while pos < length:
        if not text[pos].isspace():
            raise BracketSyntaxError("trailing input after tree", pos)
        pos += 1
    if root is None:  # pragma: no cover - guarded by the first check
        raise BracketSyntaxError("empty input", 0)
    return root


def _escape(label: str) -> str:
    out: List[str] = []
    for ch in label:
        if ch in _ESCAPABLE:
            out.append("\\")
        out.append(ch)
    return "".join(out)


def to_bracket(root: Node) -> str:
    """Serialize a :class:`Node` tree to bracket notation.

    Round-trips with :func:`parse_bracket` for string labels that carry
    no leading/trailing whitespace.
    """
    parts: List[str] = []
    # (node, opened?) stack — emit '{label' on first visit, '}' after
    # all children are done.
    stack = [(root, False)]
    while stack:
        node, opened = stack.pop()
        if opened:
            parts.append("}")
            continue
        parts.append("{" + _escape(str(node.label)))
        stack.append((node, True))
        for child in reversed(node.children):
            stack.append((child, False))
    return "".join(parts)
