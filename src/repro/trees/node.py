"""Pointer-based ordered labeled tree nodes.

:class:`Node` is the *construction* representation: a small mutable
object with a label and an ordered list of children.  It is convenient
for building trees by hand (examples, dataset generators, tests).  All
algorithms in this library run on the array-based
:class:`repro.trees.tree.Tree` representation instead, which a
:class:`Node` converts to via :meth:`repro.trees.tree.Tree.from_node`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

__all__ = ["Node"]


class Node:
    """A node of an ordered labeled tree.

    Parameters
    ----------
    label:
        Any hashable value; in XML trees this is the element tag, the
        attribute name (prefixed with ``@``), or the text content.
    children:
        Optional iterable of child nodes, kept in order.
    """

    __slots__ = ("label", "children")

    def __init__(self, label, children: Optional[Iterable["Node"]] = None):
        self.label = label
        self.children: List[Node] = list(children) if children is not None else []

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_child(self, child: "Node") -> "Node":
        """Append ``child`` as the rightmost child and return it."""
        self.children.append(child)
        return child

    def add(self, label) -> "Node":
        """Create a node with ``label``, append it, and return it."""
        return self.add_child(Node(label))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def fanout(self) -> int:
        return len(self.children)

    def size(self) -> int:
        """Number of nodes in the subtree rooted here (iterative)."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count

    def height(self) -> int:
        """Number of nodes on the longest root-to-leaf path (>= 1)."""
        best = 0
        stack = [(self, 1)]
        while stack:
            node, depth = stack.pop()
            if depth > best:
                best = depth
            for child in node.children:
                stack.append((child, depth + 1))
        return best

    # ------------------------------------------------------------------
    # Traversals (all iterative; documents may be deep)
    # ------------------------------------------------------------------
    def preorder(self) -> Iterator["Node"]:
        """Yield nodes in preorder (parent before children)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def postorder(self) -> Iterator["Node"]:
        """Yield nodes in postorder (children before parent).

        This is the canonical node order of the paper (Section IV-A):
        the i-th yielded node has postorder identifier ``i``.
        """
        # (node, next-child-index) explicit stack.
        stack = [(self, 0)]
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(node.children):
                stack.append((node, child_idx + 1))
                stack.append((node.children[child_idx], 0))
            else:
                yield node

    def leaves(self) -> Iterator["Node"]:
        for node in self.postorder():
            if node.is_leaf:
                yield node

    # ------------------------------------------------------------------
    # Comparison / debugging
    # ------------------------------------------------------------------
    def equals(self, other: "Node") -> bool:
        """Structural equality: same labels, same child order."""
        if not isinstance(other, Node):
            return False
        stack = [(self, other)]
        while stack:
            a, b = stack.pop()
            if a.label != b.label or len(a.children) != len(b.children):
                return False
            stack.extend(zip(a.children, b.children, strict=True))
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.label!r}, {len(self.children)} children)"

    def pretty(self, indent: str = "  ") -> str:
        """Multi-line ASCII rendering, one node per line."""
        lines: List[str] = []
        stack = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            lines.append(f"{indent * depth}{node.label}")
            for child in reversed(node.children):
                stack.append((child, depth + 1))
        return "\n".join(lines)
