"""Random ordered-tree generators.

These generators provide controlled structural variety for tests,
property-based checks, and micro-benchmarks: abstract shapes (spines,
stars, caterpillars, random attachments) with single-character labels.
For document-scale *corpora* — XMark/DBLP/PSD-lookalike XML streamed to
disk, as used by the paper's experiments — use
:func:`repro.datasets.generate` and friends instead.

All generators are deterministic given a seed (or an explicit
:class:`random.Random`), which the experiment harness relies on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Union

from .node import Node
from .tree import Tree

__all__ = [
    "random_tree",
    "random_forest_tree",
    "left_spine",
    "right_spine",
    "star",
    "full_binary",
    "caterpillar",
]

RngLike = Union[int, random.Random, None]


def _rng(seed: RngLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_tree(
    n: int,
    seed: RngLike = None,
    labels: Sequence = ("a", "b", "c", "d"),
    max_fanout: int = 4,
) -> Tree:
    """Uniformly-shaped random tree with exactly ``n`` nodes.

    Grows the tree by attaching each new node to a random existing node
    whose fanout is below ``max_fanout``; labels are drawn uniformly
    from ``labels``.  This yields the bushy/shallow shapes typical of
    data-centric XML when ``max_fanout`` is large and degenerate deep
    shapes when ``max_fanout`` is 1.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)
    root = Node(rng.choice(labels))
    nodes: List[Node] = [root]
    open_nodes: List[Node] = [root]
    for _ in range(n - 1):
        idx = rng.randrange(len(open_nodes))
        parent = open_nodes[idx]
        child = Node(rng.choice(labels))
        parent.children.append(child)
        nodes.append(child)
        open_nodes.append(child)
        if len(parent.children) >= max_fanout:
            # Swap-remove keeps the choice O(1).
            open_nodes[idx] = open_nodes[-1]
            open_nodes.pop()
    return Tree.from_node(root)


def random_forest_tree(
    n: int,
    seed: RngLike = None,
    labels: Sequence = ("a", "b", "c", "d"),
    p_leaf: float = 0.4,
) -> Tree:
    """Random tree grown by recursive subtree budgets.

    Splits the node budget among a random number of children, which
    produces more varied heights than :func:`random_tree`.  Useful for
    hypothesis-style structural coverage.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)

    def build(budget: int) -> Node:
        node = Node(rng.choice(labels))
        budget -= 1
        while budget > 0:
            if rng.random() < p_leaf:
                share = 1
            else:
                share = rng.randint(1, budget)
            node.children.append(build(share))
            budget -= share
        return node

    # Recursion depth is bounded by tree height; rebuild iteratively for
    # big budgets to avoid Python's recursion limit.
    if n > 900:
        return random_tree(n, rng, labels=labels)
    return Tree.from_node(build(n))


def left_spine(n: int, label="a") -> Tree:
    """Degenerate tree: every node has one child, leftmost-path only.

    The whole tree is a single relevant subtree (one keyroot), the best
    case for Zhang-Shasha.
    """
    root = Node(label)
    node = root
    for _ in range(n - 1):
        node = node.add(label)
    return Tree.from_node(root)


def right_spine(n: int, label="a") -> Tree:
    """Tree where each node has two children and the right one recurses.

    Every internal right child is a keyroot — the worst case for the
    number of relevant subtrees at a given size.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    root = Node(label)
    node = root
    remaining = n - 1
    while remaining >= 2:
        node.add(label)
        node = node.add(label)
        remaining -= 2
    if remaining == 1:
        node.add(label)
    return Tree.from_node(root)


def star(n: int, root_label="r", leaf_label="x") -> Tree:
    """A root with ``n - 1`` leaf children (shallow and wide)."""
    root = Node(root_label)
    for _ in range(n - 1):
        root.add(leaf_label)
    return Tree.from_node(root)


def full_binary(height: int, label="a") -> Tree:
    """Perfect binary tree with ``2**height - 1`` nodes."""
    if height < 1:
        raise ValueError("height must be >= 1")

    def build(h: int) -> Node:
        node = Node(label)
        if h > 1:
            node.children.append(build(h - 1))
            node.children.append(build(h - 1))
        return node

    return Tree.from_node(build(height))


def caterpillar(spine: int, legs: int, label="a", leg_label="x") -> Tree:
    """A spine of ``spine`` nodes, each carrying ``legs`` leaf children.

    Mimics record sequences under a shallow root — the shape for which
    the paper's simple pruning degenerates (Section V-B).
    """
    if spine < 1:
        raise ValueError("spine must be >= 1")
    root = Node(label)
    node = root
    for i in range(spine):
        for _ in range(legs):
            node.add(leg_label)
        if i < spine - 1:
            node = node.add(label)
    return Tree.from_node(root)
