"""Array-based ordered labeled trees in postorder numbering.

:class:`Tree` is the workhorse representation of the library.  It stores
a tree as flat arrays indexed by *postorder identifier* (1-based, as in
the paper, Section IV-A):

* ``labels[i]`` — label of the i-th node in postorder,
* ``lmls[i]``   — postorder id of the leftmost leaf of the subtree
  rooted at node ``i`` (``lml(T_i)``, Definition 7 context),
* ``parents[i]``— postorder id of the parent (``0`` for the root).

From ``lml`` the subtree size follows as ``size(i) = i - lml(i) + 1``
because the nodes of a subtree occupy consecutive postorder positions
(used throughout the paper, e.g. in the proof of Lemma 5).

Index ``0`` of every array is a padding slot so that the public API can
use the paper's 1-based node ids directly.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Tuple

from ..errors import PostorderQueueError, TreeStructureError
from .node import Node

__all__ = ["Tree"]


class Tree:
    """An ordered labeled tree over postorder arrays.

    Instances are created through the ``from_*`` constructors and are
    treated as immutable; algorithms never mutate a :class:`Tree`.
    """

    __slots__ = ("labels", "lmls", "parents", "_keyroots")

    def __init__(self, labels: List, lmls: List[int], parents: List[int]):
        if not (len(labels) == len(lmls) == len(parents)):
            raise TreeStructureError("postorder arrays must have equal length")
        if len(labels) < 2:
            raise TreeStructureError("a tree has at least one node")
        self.labels = labels
        self.lmls = lmls
        self.parents = parents
        self._keyroots: List[int] = []

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_node(cls, root: Node) -> "Tree":
        """Build a :class:`Tree` from a pointer-based :class:`Node`."""
        labels: List = [None]
        lmls: List[int] = [0]
        parents: List[int] = [0]
        # Iterative postorder with explicit stack; assigns ids on the fly.
        # Stack frames: (node, next-child-index, lml-of-node-so-far,
        # list of completed child ids).
        stack: List[List] = [[root, 0, 0, []]]
        while stack:
            frame = stack[-1]
            node, child_idx = frame[0], frame[1]
            if child_idx < len(node.children):
                frame[1] += 1
                stack.append([node.children[child_idx], 0, 0, []])
            else:
                stack.pop()
                my_id = len(labels)
                lml = frame[2] if frame[2] else my_id
                labels.append(node.label)
                lmls.append(lml)
                parents.append(0)
                for child_id in frame[3]:
                    parents[child_id] = my_id
                if stack:
                    parent_frame = stack[-1]
                    if not parent_frame[2]:
                        parent_frame[2] = lml
                    parent_frame[3].append(my_id)
        return cls(labels, lmls, parents)

    @classmethod
    def from_postorder(cls, pairs: Iterable[Tuple[object, int]]) -> "Tree":
        """Build a :class:`Tree` from ``(label, size)`` pairs.

        This is the inverse of :meth:`postorder` and realises the
        paper's claim (Section IV-B) that a postorder queue uniquely
        defines an ordered labeled tree.  Raises
        :class:`PostorderQueueError` when the sizes are inconsistent.
        """
        labels: List = [None]
        lmls: List[int] = [0]
        parents: List[int] = [0]
        # Roots of already-completed subtrees waiting for a parent.
        pending: List[int] = []
        for label, size in pairs:
            my_id = len(labels)
            if size < 1:
                raise PostorderQueueError(
                    f"node {my_id}: subtree size must be >= 1, got {size}"
                )
            lml = my_id - size + 1
            if lml < 1:
                raise PostorderQueueError(
                    f"node {my_id}: size {size} exceeds nodes seen so far"
                )
            labels.append(label)
            lmls.append(lml)
            parents.append(0)
            # Adopt completed subtrees that fall inside [lml, my_id - 1].
            while pending and pending[-1] >= lml:
                child = pending.pop()
                if lmls[child] < lml:
                    raise PostorderQueueError(
                        f"node {my_id}: size {size} splits a sibling subtree"
                    )
                parents[child] = my_id
            pending.append(my_id)
        if len(labels) == 1:
            raise PostorderQueueError("empty postorder queue")
        if len(pending) != 1:
            raise PostorderQueueError(
                f"postorder queue describes a forest of {len(pending)} trees, "
                "expected a single root"
            )
        if lmls[pending[0]] != 1:
            raise PostorderQueueError("root does not cover all nodes")
        return cls(labels, lmls, parents)

    @classmethod
    def from_bracket(cls, text: str) -> "Tree":
        """Parse bracket notation, e.g. ``{a{b}{c}}``; see
        :mod:`repro.trees.bracket`."""
        from .bracket import parse_bracket

        return cls.from_node(parse_bracket(text))

    # ------------------------------------------------------------------
    # Size / structure accessors (1-based postorder ids)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of nodes ``|T|``."""
        return len(self.labels) - 1

    @property
    def n(self) -> int:
        return len(self)

    @property
    def root(self) -> int:
        """Postorder id of the root (always ``|T|``)."""
        return len(self)

    def label(self, i: int):
        return self.labels[i]

    def lml(self, i: int) -> int:
        """Leftmost leaf descendant of node ``i`` (inclusive of ``i``)."""
        return self.lmls[i]

    def size(self, i: int) -> int:
        """Size of the subtree rooted at node ``i``."""
        return i - self.lmls[i] + 1

    def parent(self, i: int) -> int:
        """Postorder id of ``i``'s parent, or ``0`` for the root."""
        return self.parents[i]

    def is_leaf(self, i: int) -> bool:
        return self.lmls[i] == i

    def children(self, i: int) -> List[int]:
        """Postorder ids of the children of ``i``, left to right."""
        result: List[int] = []
        child = i - 1
        lml = self.lmls[i]
        while child >= lml:
            result.append(child)
            child = self.lmls[child] - 1
        result.reverse()
        return result

    def fanout(self, i: int) -> int:
        count = 0
        child = i - 1
        lml = self.lmls[i]
        while child >= lml:
            count += 1
            child = self.lmls[child] - 1
        return count

    def ancestors(self, i: int) -> Iterator[int]:
        """Yield the ancestors of ``i`` from parent up to the root."""
        i = self.parents[i]
        while i:
            yield i
            i = self.parents[i]

    def depth(self, i: int) -> int:
        """Number of edges from the root down to node ``i``."""
        return sum(1 for _ in self.ancestors(i))

    def height(self) -> int:
        """Number of nodes on the longest root-to-leaf path."""
        best = 1
        for i in range(1, len(self.labels)):
            if self.is_leaf(i):
                d = 1 + sum(1 for _ in self.ancestors(i))
                if d > best:
                    best = d
        return best

    def node_ids(self) -> range:
        """All postorder ids, ascending (= postorder traversal)."""
        return range(1, len(self.labels))

    # ------------------------------------------------------------------
    # Keyroots (the roots of the paper's *relevant subtrees*, Def. 8)
    # ------------------------------------------------------------------
    def keyroots(self) -> List[int]:
        """Postorder ids of relevant-subtree roots, ascending.

        A node is a keyroot iff it is not on the leftmost path from any
        proper ancestor, i.e. no ancestor shares its leftmost leaf.
        These are exactly the subtrees that are *not* prefixes of a
        larger subtree (Definition 8); the Zhang-Shasha algorithm
        evaluates forest distances only for keyroot pairs.
        """
        if not self._keyroots:
            lmls = self.lmls
            parents = self.parents
            roots = [
                i
                for i in range(1, len(lmls))
                if parents[i] == 0 or lmls[parents[i]] != lmls[i]
            ]
            self._keyroots = roots
        return self._keyroots

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def postorder(self) -> Iterator[Tuple[object, int]]:
        """Yield the ``(label, size)`` pairs of Definition 2."""
        lmls = self.lmls
        labels = self.labels
        for i in range(1, len(labels)):
            yield labels[i], i - lmls[i] + 1

    def subtree(self, i: int) -> "Tree":
        """Extract the subtree ``T_i`` as a standalone :class:`Tree`.

        Node ids are renumbered to ``1 .. size(i)``; postorder order is
        preserved because subtree nodes are postorder-consecutive.
        """
        lo = self.lmls[i]
        shift = lo - 1
        labels: List = [None]
        lmls: List[int] = [0]
        parents: List[int] = [0]
        for j in range(lo, i + 1):
            labels.append(self.labels[j])
            lmls.append(self.lmls[j] - shift)
            p = self.parents[j]
            parents.append(p - shift if lo <= p <= i and j != i else 0)
        return Tree(labels, lmls, parents)

    def to_node(self) -> Node:
        """Convert back to a pointer-based :class:`Node` tree."""
        nodes = [None] + [Node(self.labels[i]) for i in range(1, len(self.labels))]
        root = None
        for i in range(1, len(nodes)):
            p = self.parents[i]
            if p:
                nodes[p].children.append(nodes[i])
            else:
                root = nodes[i]
        # Children were appended in postorder, which preserves the
        # left-to-right sibling order (smaller postorder ids first).
        if root is None:
            raise TreeStructureError(
                "postorder arrays encode no root (every node has a parent)"
            )
        return root

    def to_bracket(self) -> str:
        from .bracket import to_bracket

        return to_bracket(self.to_node())

    # ------------------------------------------------------------------
    # Equality / representation
    # ------------------------------------------------------------------
    def equals(self, other: "Tree") -> bool:
        """Structural equality (labels + shape)."""
        return (
            isinstance(other, Tree)
            and self.labels == other.labels
            and self.lmls == other.lmls
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tree(n={len(self)}, root_label={self.labels[-1]!r})"


def validate_tree(tree: Tree) -> None:
    """Check internal consistency of a :class:`Tree` (test helper).

    Verifies that lml values are self-consistent, parents agree with
    subtree intervals, and the root covers all nodes.  Raises
    :class:`TreeStructureError` on the first violation.
    """
    n = len(tree)
    if tree.lmls[n] != 1:
        raise TreeStructureError("root subtree must span all nodes")
    for i in range(1, n + 1):
        lml = tree.lmls[i]
        if not 1 <= lml <= i:
            raise TreeStructureError(f"node {i}: lml {lml} out of range")
        p = tree.parents[i]
        if i == n:
            if p != 0:
                raise TreeStructureError("root must have parent 0")
        else:
            if not i < p <= n:
                raise TreeStructureError(f"node {i}: parent {p} not an ancestor")
            if not tree.lmls[p] <= lml:
                raise TreeStructureError(f"node {i}: outside parent interval")
        if tree.is_leaf(i):
            if lml != i:
                raise TreeStructureError(f"leaf {i}: lml must be i")
        else:
            first_child = tree.children(i)[0]
            if tree.lmls[first_child] != lml:
                raise TreeStructureError(
                    f"node {i}: lml must equal first child's lml"
                )
