"""Descriptive statistics for ordered labeled trees.

The experiment harness reports these alongside benchmark numbers so the
synthetic documents can be compared against the shapes the paper cites
(DBLP: height 6, shallow and wide; XMark: height 13; PSD: height 7).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

from .tree import Tree

__all__ = ["TreeStats", "tree_stats", "subtree_size_histogram"]


@dataclass
class TreeStats:
    """Summary statistics of a tree; see :func:`tree_stats`."""

    n: int
    height: int
    leaf_count: int
    max_fanout: int
    avg_fanout: float
    distinct_labels: int
    label_histogram: Dict[object, int] = field(repr=False, default_factory=dict)

    def describe(self) -> str:
        """One-line human-readable summary for harness logs."""
        return (
            f"n={self.n} height={self.height} leaves={self.leaf_count} "
            f"max_fanout={self.max_fanout} avg_fanout={self.avg_fanout:.2f} "
            f"labels={self.distinct_labels}"
        )


def tree_stats(tree: Tree) -> TreeStats:
    """Compute :class:`TreeStats` in a single postorder pass."""
    n = len(tree)
    leaf_count = 0
    max_fanout = 0
    internal = 0
    labels: Counter = Counter()
    # depth[i] is needed for height; compute from parents top-down is
    # awkward in postorder, so go bottom-up on leaves via ancestors but
    # memoise depths to stay linear.
    depths = [0] * (n + 1)
    height = 1
    for i in range(n, 0, -1):
        labels[tree.label(i)] += 1
        f = tree.fanout(i)
        if f == 0:
            leaf_count += 1
            if depths[i] + 1 > height:
                height = depths[i] + 1
        else:
            internal += 1
            if f > max_fanout:
                max_fanout = f
            for c in tree.children(i):
                depths[c] = depths[i] + 1
    avg_fanout = (n - 1) / internal if internal else 0.0
    return TreeStats(
        n=n,
        height=height,
        leaf_count=leaf_count,
        max_fanout=max_fanout,
        avg_fanout=avg_fanout,
        distinct_labels=len(labels),
        label_histogram=dict(labels),
    )


def subtree_size_histogram(tree: Tree) -> Dict[int, int]:
    """Histogram ``size -> count`` over all n subtrees of ``tree``.

    This is the raw material of the paper's Figure 11 plots (where it is
    restricted to the *relevant* subtrees actually computed).
    """
    hist: Counter = Counter()
    for i in tree.node_ids():
        hist[tree.size(i)] += 1
    return dict(hist)
