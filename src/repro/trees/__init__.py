"""Ordered labeled tree substrate (paper Section IV-A).

Public entry points:

* :class:`~repro.trees.node.Node` — pointer-based construction trees.
* :class:`~repro.trees.tree.Tree` — array-based postorder representation
  used by every algorithm in the library.
* :mod:`~repro.trees.bracket` — bracket-notation parsing/serialisation.
* :mod:`~repro.trees.generators` — random/parametric tree shapes.
* :mod:`~repro.trees.stats` — descriptive statistics.
"""

from .bracket import parse_bracket, to_bracket
from .generators import (
    caterpillar,
    full_binary,
    left_spine,
    random_forest_tree,
    random_tree,
    right_spine,
    star,
)
from .node import Node
from .stats import TreeStats, subtree_size_histogram, tree_stats
from .tree import Tree, validate_tree

__all__ = [
    "Node",
    "Tree",
    "validate_tree",
    "parse_bracket",
    "to_bracket",
    "random_tree",
    "random_forest_tree",
    "left_spine",
    "right_spine",
    "star",
    "full_binary",
    "caterpillar",
    "TreeStats",
    "tree_stats",
    "subtree_size_histogram",
]
