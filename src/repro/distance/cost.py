"""Cost models for tree edit operations.

The tree edit distance is parameterised by a cost model assigning a
non-negative cost to every rename and a positive cost to every delete
and insert.  Following the paper, delete/insert costs must satisfy
``cst(x) >= 1``: this is what makes the size lower bound

    ``ted(Q, T) >= min_indel * abs(|T| - |Q|)``

valid, which both pruning rules of TASM-postorder rely on.  A model
additionally publishes two scalar bounds used by the pruning math:

* ``min_indel`` — a lower bound on every delete/insert cost (>= 1),
* ``max_cost``  — an upper bound on every single-operation cost.

Models may additionally publish ``min_rename`` — a lower bound on the
cost of any *non-identity* rename (>= 0).  It is optional and only ever
strengthens the candidate-index label-histogram lower bound
(:func:`repro.index.lb.histogram_lower_bound`); consumers read it with
``getattr(..., 0.0)``, and 0 is always a sound value.

Violations raise :class:`~repro.errors.CostModelError`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..errors import CostModelError

__all__ = [
    "CostModel",
    "UnitCostModel",
    "WeightedCostModel",
    "validate_cost_model",
]


@runtime_checkable
class CostModel(Protocol):
    """Protocol every cost model must implement."""

    #: Lower bound on all delete/insert costs; must be >= 1.
    min_indel: float
    #: Upper bound on the cost of any single edit operation.
    max_cost: float

    def rename(self, a, b) -> float:
        """Cost of renaming label ``a`` to label ``b`` (0 for ``a == b``)."""
        ...

    def delete(self, label) -> float:
        """Cost of deleting a node labeled ``label``."""
        ...

    def insert(self, label) -> float:
        """Cost of inserting a node labeled ``label``."""
        ...


class UnitCostModel:
    """The paper's default: every operation costs 1, renames to the
    same label cost 0."""

    __slots__ = ()

    min_indel = 1.0
    max_cost = 1.0
    #: Every non-identity rename costs exactly 1.
    min_rename = 1.0

    def rename(self, a, b) -> float:
        return 0.0 if a == b else 1.0

    def delete(self, label) -> float:
        return 1.0

    def insert(self, label) -> float:
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UnitCostModel()"


class WeightedCostModel:
    """Label-independent weighted costs.

    Parameters are the rename, delete, and insert costs.  The paper's
    constraint ``cst(x) >= 1`` applies to delete and insert; the rename
    cost must be non-negative.
    """

    __slots__ = (
        "rename_cost",
        "delete_cost",
        "insert_cost",
        "min_indel",
        "max_cost",
        "min_rename",
    )

    def __init__(
        self,
        rename_cost: float = 1.0,
        delete_cost: float = 1.0,
        insert_cost: float = 1.0,
    ):
        if rename_cost < 0:
            raise CostModelError(f"rename cost must be >= 0, got {rename_cost}")
        if delete_cost < 1:
            raise CostModelError(f"delete cost must be >= 1, got {delete_cost}")
        if insert_cost < 1:
            raise CostModelError(f"insert cost must be >= 1, got {insert_cost}")
        self.rename_cost = float(rename_cost)
        self.delete_cost = float(delete_cost)
        self.insert_cost = float(insert_cost)
        self.min_indel = min(self.delete_cost, self.insert_cost)
        self.max_cost = max(self.rename_cost, self.delete_cost, self.insert_cost)
        self.min_rename = self.rename_cost

    def rename(self, a, b) -> float:
        return 0.0 if a == b else self.rename_cost

    def delete(self, label) -> float:
        return self.delete_cost

    def insert(self, label) -> float:
        return self.insert_cost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedCostModel(rename={self.rename_cost}, "
            f"delete={self.delete_cost}, insert={self.insert_cost})"
        )


def validate_cost_model(model: CostModel) -> CostModel:
    """Check that ``model`` satisfies the paper's requirements.

    Verifies the protocol shape and the published bounds; raises
    :class:`CostModelError` on the first violation.  Returns the model
    so callers can validate inline.
    """
    for attr in ("rename", "delete", "insert"):
        if not callable(getattr(model, attr, None)):
            raise CostModelError(f"cost model lacks a callable {attr!r}")
    min_indel = getattr(model, "min_indel", None)
    max_cost = getattr(model, "max_cost", None)
    if min_indel is None or max_cost is None:
        raise CostModelError("cost model must publish min_indel and max_cost")
    if min_indel < 1:
        raise CostModelError(
            f"min_indel must be >= 1 (paper: cst(x) >= 1), got {min_indel}"
        )
    if max_cost < min_indel:
        raise CostModelError(
            f"max_cost ({max_cost}) must be >= min_indel ({min_indel})"
        )
    return model
