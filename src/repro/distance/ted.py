"""Zhang–Shasha tree edit distance over the keyroot decomposition.

The classic dynamic program [Zhang & Shasha, SIAM J. Comput. 1989] as
the paper uses it (Section III): for every pair of *keyroots* — roots of
relevant subtrees, :meth:`repro.trees.tree.Tree.keyroots` — a forest
distance table is filled left-to-right over the postorder prefixes of
the two relevant subtrees.  Whenever both prefixes happen to be complete
subtrees the cell is also the *tree* distance of that subtree pair, so a
single run fills ``td[i][j] = ted(T1_i, T2_j)`` for **all** node pairs.

:func:`prefix_distance` exploits exactly this: the row ``td[root(Q)][*]``
holds the edit distance between the whole query and every subtree of the
document, which is the quantity TASM ranks (Algorithm 1, *prefix array*).

The hot path lives in :class:`PrefixDistanceKernel`, a reusable kernel
that follows the paper's implementation note (Section VII: labels are
interned "to assign unique integer identifiers ... for compression and
faster node-to-node comparisons"):

* labels are interned to dense integer ids — the query side once at
  construction, the document side incrementally across calls — so the
  inner loop never touches label objects (labels must be hashable);
* delete/insert costs are precomputed per *label id* and expanded to
  per-node flat vectors, and rename costs sit in a ``query-id x doc-id``
  lookup table, so the inner loop performs no cost-model calls;
* the forest-distance table is a bank of flat row buffers that is
  allocated once and reused across keyroot pairs *and* across calls.

A note on the buffer bank: a strict two-row scheme is impossible for
Zhang–Shasha, because the match case of the recurrence reads
``fd[lml(u)-li][lml(v)-lj]`` — the distance between the *forests* left
of the current subtrees — and those cells come from arbitrarily old rows
and are genuine forest-forest distances, not tree distances that ``td``
could supply.  What the rewrite eliminates is the per-keyroot-pair
``(m+1) x (n+1)`` nested-list allocation: each row buffer is written in
place for every pair, and within one pair all rows below the current one
are intact, which is exactly the prefix the recurrence reads from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..trees.tree import Tree
from .cost import CostModel, UnitCostModel, validate_cost_model

__all__ = ["PrefixDistanceKernel", "ted", "ted_matrix", "prefix_distance"]


class PrefixDistanceKernel:
    """Reusable flat-array Zhang–Shasha kernel with a fixed left tree.

    Construct once per query (and cost model), then call
    :meth:`distances` for every candidate document subtree.  TASM calls
    this thousands of times per run with the same small query, so all
    query-side preprocessing — interning, per-node delete costs, the
    keyroot list — happens once here, and the document-side label
    dictionary, rename lookup, and DP row buffers persist and grow
    across calls instead of being reallocated per evaluation.

    Memory note: like the paper's own implementation (the Section VII
    dictionary), the kernel retains one entry — plus ``|Q|`` rename
    floats — per *distinct* document label ever seen.  For documents
    whose text content is largely unique this grows linearly in the
    number of distinct labels (it is what buys the constant-time label
    comparisons); construct a fresh kernel to reset it.
    """

    __slots__ = (
        "query",
        "cost",
        "_n1",
        "_lmls1",
        "_keyroots1",
        "_ids1",
        "_qlabels",
        "_dc1",
        "_plans",
        "_doc_ids",
        "_icost",
        "_ic_uniform",
        "_ic_value",
        "_ren",
        "_td",
        "_rows",
        "_cols",
        "_row0_scalar_cols",
    )

    def __init__(self, query: Tree, cost: Optional[CostModel] = None):
        if cost is None:
            cost = UnitCostModel()
        validate_cost_model(cost)
        self.query = query
        self.cost = cost
        n1 = len(query)
        self._n1 = n1
        self._lmls1 = query.lmls
        self._keyroots1 = query.keyroots()
        # Intern the query labels into a private dense id space.
        qids: Dict = {}
        qlabels: List = []
        ids1 = [0] * (n1 + 1)
        for u in range(1, n1 + 1):
            label = query.labels[u]
            i1 = qids.get(label)
            if i1 is None:
                i1 = len(qlabels)
                qids[label] = i1
                qlabels.append(label)
            ids1[u] = i1
        self._ids1 = ids1
        self._qlabels = qlabels
        per_label_delete = [cost.delete(label) for label in qlabels]
        dc1 = [0.0] * (n1 + 1)
        for u in range(1, n1 + 1):
            dc1[u] = per_label_delete[ids1[u]]
        self._dc1 = dc1
        # Per query keyroot: the delete-cost prefix sums of its relevant
        # subtree (the DP's column 0, fixed for the kernel's lifetime)
        # and a row plan (node, row of fd to read the match case from,
        # label id or -1 for off-left-path nodes, delete cost) so the
        # inner loops unpack one tuple instead of re-deriving per row.
        lmls1 = query.lmls
        plans = []
        for i in self._keyroots1:
            li = lmls1[i]
            c0 = [0.0] * (i - li + 2)
            plan = []
            acc = 0.0
            for di, u in enumerate(range(li, i + 1), 1):
                acc += dc1[u]
                c0[di] = acc
                lu = lmls1[u]
                plan.append(
                    (u, lu - li, ids1[u] if lu == li else -1, dc1[u])
                )
            plans.append((c0, plan))
        self._plans = plans
        # Document-side dictionary; grows across calls so repeated
        # labels (the common case in XML) never re-enter the cost model.
        self._doc_ids: Dict = {}
        self._icost: List[float] = []  # insert cost per document label id
        # While every insert cost seen so far is the same scalar (true
        # for the unit and weighted models), the inner loops use it
        # directly and skip the per-cell cost stream entirely.
        self._ic_uniform = True
        self._ic_value: Optional[float] = None
        self._ren: List[List[float]] = [[] for _ in qlabels]  # [qid][did]
        # Reusable flat buffers: n1+1 tree-distance rows and n1+1 forest
        # scratch rows, widened on demand to the largest document seen.
        self._td: List[List[float]] = [[] for _ in range(n1 + 1)]
        self._rows: List[List[float]] = [[] for _ in range(n1 + 1)]
        self._cols = 0
        # Columns of rows[0] already holding x * insert_cost (the row-0
        # prefix sums are position-proportional while inserts are
        # uniform, so they are filled once, not once per keyroot).
        self._row0_scalar_cols = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def distances(self, doc: Tree) -> List[float]:
        """Prefix array: ``dist[j] = ted(query, T_j)`` for every subtree.

        ``dist[0]`` is padding.  The returned list is a fresh copy; the
        kernel's internal buffers are reused by the next call.
        """
        self._compute(doc)
        return self._td[self._n1][: len(doc) + 1]

    def matrix(self, doc: Tree) -> List[List[float]]:
        """All-pairs subtree distances ``td[i][j] = ted(Q_i, T_j)``."""
        self._compute(doc)
        width = len(doc) + 1
        return [row[:width] for row in self._td]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_width(self, need: int) -> None:
        if need <= self._cols:
            return
        for row in self._td:
            row.extend([0.0] * (need - len(row)))
        for row in self._rows:
            row.extend([0.0] * (need - len(row)))
        self._cols = need

    def _encode_doc(self, labels2: List, n2: int) -> List[int]:
        """Intern the document labels, extending the cost lookups."""
        enc = self._doc_ids
        icost = self._icost
        ren = self._ren
        cost = self.cost
        qlabels = self._qlabels
        ids2 = [0] * (n2 + 1)
        for v in range(1, n2 + 1):
            label = labels2[v]
            i2 = enc.get(label)
            if i2 is None:
                i2 = len(icost)
                enc[label] = i2
                ic = cost.insert(label)
                icost.append(ic)
                if self._ic_value is None:
                    self._ic_value = ic
                elif ic != self._ic_value:
                    self._ic_uniform = False
                for qi, qlabel in enumerate(qlabels):
                    ren[qi].append(cost.rename(qlabel, label))
            ids2[v] = i2
        return ids2

    def _compute(self, doc: Tree) -> None:
        """Fill ``self._td`` for ``doc`` (all keyroot pairs)."""
        n2 = len(doc)
        if n2 + 1 > self._cols:
            self._ensure_width(n2 + 1)
        lmls2 = doc.lmls
        ids2 = self._encode_doc(doc.labels, n2)
        ren = self._ren
        td = self._td
        rows = self._rows
        keyroots1 = self._keyroots1
        plans = self._plans
        icost = self._icost
        icc = self._ic_value if self._ic_uniform else None
        if icc is None:
            ic2 = [0.0] * (n2 + 1)
            for v in range(1, n2 + 1):
                ic2[v] = icost[ids2[v]]
        elif self._row0_scalar_cols < n2 + 1:
            row0 = rows[0]
            for x in range(self._row0_scalar_cols, n2 + 1):
                row0[x] = x * icc
            self._row0_scalar_cols = n2 + 1

        # Document keyroots drive the outer loop so the per-column data
        # below is computed once per document keyroot, not once per
        # pair.  Validity of the order: the ``else`` branch reads
        # td[u][v] whose owning keyroot pair has a strictly smaller
        # document keyroot, or the same one with a smaller query
        # keyroot — both already processed.
        for j in doc.keyroots():
            lj = lmls2[j]
            nj = j - lj + 1
            if nj == 1:
                # Leaf document keyroot — half the keyroots of typical
                # documents.  The forest table degenerates to a single
                # column, whose inputs (column 0 and the leaf's insert
                # cost) are already known, so the pair runs without
                # touching the row buffers or allocating any slice.
                i2 = ids2[j]
                icv = icc if icc is not None else icost[i2]
                for (c0, plan) in plans:
                    prevc = icv  # fd[row above][leaf column]
                    di = 0
                    for u, off1, i1, dc in plan:
                        td_u = td[u]
                        if i1 >= 0:
                            # Both prefixes complete: match by rename.
                            best = c0[di] + ren[i1][i2]
                        else:
                            best = c0[off1] + td_u[j]
                        alt = prevc + dc
                        if alt < best:
                            best = alt
                        di += 1
                        alt = c0[di] + icv
                        if alt < best:
                            best = alt
                        if i1 >= 0:
                            td_u[j] = best
                        prevc = best
                continue
            njp1 = nj + 1
            off2_slice = [x - lj for x in lmls2[lj : j + 1]]
            id2_slice = ids2[lj : j + 1]
            row0 = rows[0]
            if icc is not None and nj <= 48:
                # Small non-leaf document keyroot, uniform inserts: an
                # indexed loop beats the zip pipelines because it does
                # not allocate the two per-row slice views.
                for (c0, plan) in plans:
                    for di in range(1, len(c0)):
                        rows[di][0] = c0[di]
                    prev_row = row0
                    di = 0
                    for u, off1, i1, dc in plan:
                        di += 1
                        row = rows[di]
                        bnd = rows[off1]
                        td_u = td[u]
                        acc = row[0]
                        if i1 >= 0:
                            ren_row = ren[i1]
                            diag = prev_row[0]
                            for dj in range(1, njp1):
                                pr = prev_row[dj]
                                off2 = off2_slice[dj - 1]
                                v = lj + dj - 1
                                if off2:
                                    best = bnd[off2] + td_u[v]
                                else:
                                    best = diag + ren_row[id2_slice[dj - 1]]
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                if not off2:
                                    td_u[v] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                        else:
                            for dj in range(1, njp1):
                                off2 = off2_slice[dj - 1]
                                best = bnd[off2] + td_u[lj + dj - 1]
                                alt = prev_row[dj] + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                        prev_row = row
                continue
            if icc is None:
                # Row 0: insert-cost prefix sums (independent of the
                # query keyroot, shared by every pair with this
                # document keyroot).  For uniform inserts row 0 is
                # already position-proportional; see _compute above.
                ic_slice = ic2[lj : j + 1]
                row0[0] = 0.0
                acc = 0.0
                dj = 0
                for ic in ic_slice:
                    dj += 1
                    acc += ic
                    row0[dj] = acc
            for (c0, plan) in plans:
                # Column 0: delete-cost prefix sums, precomputed.
                for di in range(1, len(c0)):
                    rows[di][0] = c0[di]
                prev_row = row0
                di = 0
                for u, off1, i1, dc in plan:
                    di += 1
                    row = rows[di]
                    bnd = rows[off1]  # fd over the forest left of T1_u
                    td_u = td[u]
                    # Snapshot td[u][lj..j]; every value read below was
                    # written by an earlier keyroot pair, never by this
                    # row (reads and writes target disjoint cells).
                    td_view = td_u[lj : j + 1]
                    prev_view = prev_row[1:njp1]
                    acc = row[0]
                    if i1 >= 0:
                        # Left-path node: the query prefix is a complete
                        # subtree, so whenever the document prefix is
                        # too (off2 == 0) the match case applies and the
                        # cell doubles as the tree distance td[u][v].
                        ren_row = ren[i1]
                        diag = prev_row[0]
                        base2 = lj - 1  # td_u write index is base2 + dj
                        dj = 0
                        if icc is None:
                            for pr, ic, off2, i2, tdv in zip(
                                prev_view,
                                ic_slice,
                                off2_slice,
                                id2_slice,
                                td_view,
                            ):
                                dj += 1
                                if off2:
                                    best = bnd[off2] + tdv
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + ic
                                    if alt < best:
                                        best = alt
                                else:
                                    best = diag + ren_row[i2]
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + ic
                                    if alt < best:
                                        best = alt
                                    td_u[base2 + dj] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                        else:
                            for pr, off2, i2, tdv in zip(
                                prev_view, off2_slice, id2_slice, td_view
                            ):
                                dj += 1
                                if off2:
                                    best = bnd[off2] + tdv
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + icc
                                    if alt < best:
                                        best = alt
                                else:
                                    best = diag + ren_row[i2]
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + icc
                                    if alt < best:
                                        best = alt
                                    td_u[base2 + dj] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                    else:
                        # Off the left path: the query prefix is a
                        # forest, the match case always goes through the
                        # already-known tree distance td[u][v].
                        dj = 0
                        if icc is None:
                            for pr, ic, off2, tdv in zip(
                                prev_view, ic_slice, off2_slice, td_view
                            ):
                                dj += 1
                                best = bnd[off2] + tdv
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + ic
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                        else:
                            for pr, off2, tdv in zip(
                                prev_view, off2_slice, td_view
                            ):
                                dj += 1
                                best = bnd[off2] + tdv
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                    prev_row = row


def ted_matrix(
    t1: Tree, t2: Tree, cost: Optional[CostModel] = None
) -> List[List[float]]:
    """All-pairs subtree distances ``td[i][j] = ted(T1_i, T2_j)``.

    ``td`` is ``(|T1|+1) x (|T2|+1)`` with the usual 1-based padding.
    Runs the Zhang–Shasha loop over all keyroot pairs; every node pair
    is covered because each node belongs to exactly one keyroot's
    relevant subtree with the same leftmost leaf.
    """
    return PrefixDistanceKernel(t1, cost).matrix(t2)


def ted(t1: Tree, t2: Tree, cost: Optional[CostModel] = None) -> float:
    """Tree edit distance between ``t1`` and ``t2``."""
    kernel = PrefixDistanceKernel(t1, cost)
    kernel._compute(t2)
    return kernel._td[len(t1)][len(t2)]


def prefix_distance(
    query: Tree, tree: Tree, cost: Optional[CostModel] = None
) -> List[float]:
    """Distances between ``query`` and **every** subtree of ``tree``.

    Returns ``dist`` with ``dist[j] = ted(query, T_j)`` for each
    postorder id ``j`` of ``tree`` (``dist[0]`` is padding).  This is
    the paper's prefix-array byproduct: one Zhang–Shasha run instead of
    ``|tree|`` independent distance computations.
    """
    return PrefixDistanceKernel(query, cost).distances(tree)
