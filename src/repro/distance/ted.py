"""Zhang–Shasha tree edit distance over the keyroot decomposition.

The classic dynamic program [Zhang & Shasha, SIAM J. Comput. 1989] as
the paper uses it (Section III): for every pair of *keyroots* — roots of
relevant subtrees, :meth:`repro.trees.tree.Tree.keyroots` — a forest
distance table is filled left-to-right over the postorder prefixes of
the two relevant subtrees.  Whenever both prefixes happen to be complete
subtrees the cell is also the *tree* distance of that subtree pair, so a
single run fills ``td[i][j] = ted(T1_i, T2_j)`` for **all** node pairs.

:func:`prefix_distance` exploits exactly this: the row ``td[root(Q)][*]``
holds the edit distance between the whole query and every subtree of the
document, which is the quantity TASM ranks (Algorithm 1, *prefix array*).

The hot path lives in :class:`PrefixDistanceKernel`, a reusable kernel
that follows the paper's implementation note (Section VII: labels are
interned "to assign unique integer identifiers ... for compression and
faster node-to-node comparisons"):

* labels are interned to dense integer ids — the query side once at
  construction, the document side incrementally across calls — so the
  inner loop never touches label objects (labels must be hashable);
* delete/insert costs are precomputed per *label id* and expanded to
  per-node flat vectors, and rename costs sit in a ``query-id x doc-id``
  lookup table, so the inner loop performs no cost-model calls;
* the forest-distance table is a bank of flat row buffers that is
  allocated once and reused across keyroot pairs *and* across calls.

A note on the buffer bank: a strict two-row scheme is impossible for
Zhang–Shasha, because the match case of the recurrence reads
``fd[lml(u)-li][lml(v)-lj]`` — the distance between the *forests* left
of the current subtrees — and those cells come from arbitrarily old rows
and are genuine forest-forest distances, not tree distances that ``td``
could supply.  What the rewrite eliminates is the per-keyroot-pair
``(m+1) x (n+1)`` nested-list allocation: each row buffer is written in
place for every pair, and within one pair all rows below the current one
are intact, which is exactly the prefix the recurrence reads from.

Backends
--------

The kernel has two interchangeable row engines, selected at
construction with ``backend="auto" | "python" | "numpy"``:

* ``python`` — the scalar loops above; no dependencies.
* ``numpy``  — the same dynamic program as whole-row array sweeps.  The
  match case is a gather (``bnd[off2] + td[u, lj:j+1]``), the rename
  diagonal an elementwise override at the complete-subtree positions,
  the delete case a shifted row add, and the sequential insert chain
  ``row[dj] = min(b[dj], row[dj-1] + ins[dj])`` becomes a prefix scan:
  with ``S`` the insert-cost prefix sums (row 0 of the table),

      ``row = minimum(b, S + minimum.accumulate(b - S)``  shifted by 1``)``

  which is the classic min-plus scan with linear drift — for the
  uniform-insert specialisation ``S`` is just ``insert_cost * arange``.
  Keyroot pairs that are individually too narrow to amortise array
  dispatch are batched *across pairs*: keyroot subtree intervals are
  laminar, so grouping keyroots into nesting layers (leaves are layer
  0, a keyroot's layer is one above the deepest keyroot it contains)
  yields, within each layer, pairs whose reads and writes touch
  disjoint columns — every equal-width group in a layer runs as one
  3-D ``(pairs x rows x columns)`` sweep.  Leaf document keyroots
  (typically half of all keyroots, one column each) get a dedicated
  2-D sweep over all leaves at once.  Documents below
  ``NUMPY_MIN_DOC`` nodes run the scalar engine unchanged — array
  dispatch cannot beat the scalar loops on tiny tables, and TASM's
  small-candidate evaluations stay at full scalar speed.
* ``auto``   — ``numpy`` when importable, else ``python``.

Both engines compute the same minimum over the same edit scripts.  The
scan reassociates the insert/delete chain sums, so bit-identical
results across backends are guaranteed when every cost is a dyadic
rational (the unit model, the built-in weighted models, and the test
strategies — all chosen as multiples of 1/4 for exactly this reason);
arbitrary float costs may differ in the last ulp between backends.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import BackendError
from ..trees.tree import Tree
from .cost import CostModel, UnitCostModel, validate_cost_model

__all__ = [
    "KERNEL_BACKENDS",
    "PrefixDistanceKernel",
    "numpy_backend_available",
    "prefix_distance",
    "resolve_backend",
    "ted",
    "ted_matrix",
]

#: Accepted ``backend=`` arguments, in documentation order.
KERNEL_BACKENDS = ("auto", "python", "numpy")

#: Row width at which the numpy engine runs a keyroot pair as its own
#: per-pair row sweep; narrower pairs are batched across same-layer,
#: same-width groups so array dispatch amortises over many pairs.
VECTOR_MIN_COLS = 48

#: Document size below which the numpy backend runs the scalar engine:
#: tiny tables are dominated by array-dispatch overhead, and TASM's
#: candidate evaluations (documents of ~``k + 2|Q| - 1`` nodes) must
#: keep their scalar speed.
NUMPY_MIN_DOC = 512

#: Cap on ``rows x pairs x columns`` scratch elements per batched
#: sweep; larger width groups are chunked so the per-sweep scratch
#: allocation stays cache- and memory-friendly (a few MB) regardless
#: of query or group size.
_BATCH_MAX_ELEMENTS = 1 << 20

_np_cache = None  # None = not probed yet; False = unavailable; module otherwise


def _load_numpy():
    """The numpy module, or ``None`` — probed once, then cached."""
    global _np_cache
    if _np_cache is None:
        try:
            import numpy

            _np_cache = numpy
        except ImportError:
            _np_cache = False
    return _np_cache or None


def numpy_backend_available() -> bool:
    """Whether the optional numpy row engine can be used."""
    return _load_numpy() is not None


def resolve_backend(backend: str = "auto") -> str:
    """Resolve a ``backend=`` argument to ``"python"`` or ``"numpy"``.

    ``"auto"`` degrades to the pure-Python engine when numpy is not
    installed; asking for ``"numpy"`` explicitly without numpy raises
    :class:`~repro.errors.BackendError` with install guidance.
    """
    if backend not in KERNEL_BACKENDS:
        raise BackendError(
            f"kernel backend must be one of {', '.join(KERNEL_BACKENDS)}, "
            f"got {backend!r}"
        )
    if backend == "auto":
        return "numpy" if numpy_backend_available() else "python"
    if backend == "numpy" and not numpy_backend_available():
        raise BackendError(
            "backend='numpy' requires numpy, which is not installed; "
            "install the fast extra (pip install 'repro-tasm[fast]') or "
            "use backend='auto'/'python' for the pure-Python fallback"
        )
    return backend


class PrefixDistanceKernel:
    """Reusable flat-array Zhang–Shasha kernel with a fixed left tree.

    Construct once per query (and cost model), then call
    :meth:`distances` for every candidate document subtree.  TASM calls
    this thousands of times per run with the same small query, so all
    query-side preprocessing — interning, per-node delete costs, the
    keyroot list — happens once here, and the document-side label
    dictionary, rename lookup, and DP row buffers persist and grow
    across calls instead of being reallocated per evaluation.

    Memory note: like the paper's own implementation (the Section VII
    dictionary), the kernel retains one entry — plus ``|Q|`` rename
    floats — per *distinct* document label ever seen.  For documents
    whose text content is largely unique this grows linearly in the
    number of distinct labels (it is what buys the constant-time label
    comparisons); construct a fresh kernel to reset it.
    """

    __slots__ = (
        "query",
        "cost",
        "backend",
        "calls",
        "calls_numpy",
        "rows_computed",
        "rows_computed_numpy",
        "_plan_rows",
        "_n1",
        "_lmls1",
        "_keyroots1",
        "_ids1",
        "_qlabels",
        "_dc1",
        "_plans",
        "_doc_ids",
        "_icost",
        "_ic_uniform",
        "_ic_value",
        "_ren",
        "_td",
        "_rows",
        "_cols",
        "_row0_scalar_cols",
        "_vec_min_cols",
        "_numpy_min_doc",
        "_last_np",
        "_plans_np",
        "_td_np",
        "_rows_np",
        "_arange_np",
        "_np_cols",
        "_icost_np",
        "_ren_np",
        "_synced_labels",
    )

    def __init__(
        self,
        query: Tree,
        cost: Optional[CostModel] = None,
        backend: str = "auto",
        *,
        vector_min_cols: Optional[int] = None,
        numpy_min_doc: Optional[int] = None,
    ):
        if cost is None:
            cost = UnitCostModel()
        validate_cost_model(cost)
        self.backend = resolve_backend(backend)
        self.query = query
        self.cost = cost
        n1 = len(query)
        self._n1 = n1
        self._lmls1 = query.lmls
        self._keyroots1 = query.keyroots()
        # Intern the query labels into a private dense id space.
        qids: Dict = {}
        qlabels: List = []
        ids1 = [0] * (n1 + 1)
        for u in range(1, n1 + 1):
            label = query.labels[u]
            i1 = qids.get(label)
            if i1 is None:
                i1 = len(qlabels)
                qids[label] = i1
                qlabels.append(label)
            ids1[u] = i1
        self._ids1 = ids1
        self._qlabels = qlabels
        per_label_delete = [cost.delete(label) for label in qlabels]
        dc1 = [0.0] * (n1 + 1)
        for u in range(1, n1 + 1):
            dc1[u] = per_label_delete[ids1[u]]
        self._dc1 = dc1
        # Per query keyroot: the delete-cost prefix sums of its relevant
        # subtree (the DP's column 0, fixed for the kernel's lifetime)
        # and a row plan (node, row of fd to read the match case from,
        # label id or -1 for off-left-path nodes, delete cost) so the
        # inner loops unpack one tuple instead of re-deriving per row.
        lmls1 = query.lmls
        plans = []
        for i in self._keyroots1:
            li = lmls1[i]
            c0 = [0.0] * (i - li + 2)
            plan = []
            acc = 0.0
            for di, u in enumerate(range(li, i + 1), 1):
                acc += dc1[u]
                c0[di] = acc
                lu = lmls1[u]
                plan.append(
                    (u, lu - li, ids1[u] if lu == li else -1, dc1[u])
                )
            plans.append((c0, plan))
        self._plans = plans
        # Lifetime counters (read by PostorderStats as before/after
        # deltas): distance computations and DP rows filled, per row
        # engine.  One document keyroot costs one row per query plan
        # row, so rows per call = |doc keyroots| * _plan_rows.
        self.calls = 0
        self.calls_numpy = 0
        self.rows_computed = 0
        self.rows_computed_numpy = 0
        self._plan_rows = sum(len(plan) for _, plan in plans)
        # Document-side dictionary; grows across calls so repeated
        # labels (the common case in XML) never re-enter the cost model.
        self._doc_ids: Dict = {}
        self._icost: List[float] = []  # insert cost per document label id
        # While every insert cost seen so far is the same scalar (true
        # for the unit and weighted models), the inner loops use it
        # directly and skip the per-cell cost stream entirely.
        self._ic_uniform = True
        self._ic_value: Optional[float] = None
        self._ren: List[List[float]] = [[] for _ in qlabels]  # [qid][did]
        # Reusable flat buffers: n1+1 tree-distance rows and n1+1 forest
        # scratch rows, widened on demand to the largest document seen.
        self._td: List[List[float]] = [[] for _ in range(n1 + 1)]
        self._rows: List[List[float]] = [[] for _ in range(n1 + 1)]
        self._cols = 0
        # Columns of rows[0] already holding x * insert_cost (the row-0
        # prefix sums are position-proportional while inserts are
        # uniform, so they are filled once, not once per keyroot).
        self._row0_scalar_cols = 0
        self._last_np = False
        if self.backend == "numpy":
            self._init_numpy(vector_min_cols, numpy_min_doc)

    def _init_numpy(
        self,
        vector_min_cols: Optional[int],
        numpy_min_doc: Optional[int],
    ) -> None:
        """Array mirrors of the query-side state for the numpy engine.

        The scalar lists above stay authoritative (the fallback paths
        and :meth:`_encode_doc` keep using them); the mirrors are what
        the vectorised sweeps gather from.
        """
        np = _load_numpy()
        self._vec_min_cols = (
            VECTOR_MIN_COLS if vector_min_cols is None else vector_min_cols
        )
        self._numpy_min_doc = (
            NUMPY_MIN_DOC if numpy_min_doc is None else numpy_min_doc
        )
        plans_np = []
        for c0, plan in self._plans:
            c0_np = np.asarray(c0)
            u_arr = np.asarray([row[0] for row in plan], dtype=np.intp)
            off1_arr = np.asarray([row[1] for row in plan], dtype=np.intp)
            i1_arr = np.asarray([row[2] for row in plan], dtype=np.intp)
            # Left-path rows (i1 >= 0) are where the rename diagonal
            # applies and tree distances get written back.
            path_idx = np.nonzero(i1_arr >= 0)[0]
            plans_np.append(
                (
                    c0_np,
                    u_arr,
                    off1_arr,
                    i1_arr,
                    path_idx,
                    i1_arr[path_idx],
                    u_arr[path_idx],
                )
            )
        self._plans_np = plans_np
        # Flat DP storage, (n1+1) x width, grown on demand; no values
        # survive a width change because every cell read during one
        # _compute was written earlier in that same _compute.
        self._np_cols = 0
        cap = 64
        self._icost_np = np.zeros(cap)
        self._ren_np = np.zeros((len(self._qlabels), cap))
        self._synced_labels = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def distances(self, doc: Tree) -> List[float]:
        """Prefix array: ``dist[j] = ted(query, T_j)`` for every subtree.

        ``dist[0]`` is padding.  The returned list is a fresh copy of
        plain Python floats (whichever engine ran); the kernel's
        internal buffers are reused by the next call.
        """
        self._compute(doc)
        if self._last_np:
            return self._td_np[self._n1, : len(doc) + 1].tolist()
        return self._td[self._n1][: len(doc) + 1]

    def matrix(self, doc: Tree) -> List[List[float]]:
        """All-pairs subtree distances ``td[i][j] = ted(Q_i, T_j)``."""
        self._compute(doc)
        width = len(doc) + 1
        if self._last_np:
            return self._td_np[:, :width].tolist()
        return [row[:width] for row in self._td]

    @property
    def interned_doc_labels(self) -> int:
        """Distinct document labels interned so far (warmth measure)."""
        return len(self._doc_ids)

    def clone(self) -> "PrefixDistanceKernel":
        """An independent kernel sharing no mutable state with this one.

        The clone starts from this kernel's *warm* document-side
        dictionary — interned label ids, per-label insert costs, and the
        rename lookup — but owns fresh DP row buffers, so two clones can
        run :meth:`distances` concurrently from different threads.  The
        row buffers are the only state a call mutates destructively;
        the label dictionary only ever grows, and each clone grows its
        own copy independently.
        """
        twin = PrefixDistanceKernel(
            self.query,
            self.cost,
            self.backend,
            vector_min_cols=(
                self._vec_min_cols if self.backend == "numpy" else None
            ),
            numpy_min_doc=(
                self._numpy_min_doc if self.backend == "numpy" else None
            ),
        )
        twin._doc_ids = dict(self._doc_ids)
        twin._icost = list(self._icost)
        twin._ic_uniform = self._ic_uniform
        twin._ic_value = self._ic_value
        twin._ren = [list(row) for row in self._ren]
        if self.backend == "numpy":
            twin._icost_np = self._icost_np.copy()
            twin._ren_np = self._ren_np.copy()
            twin._synced_labels = self._synced_labels
        return twin

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compute(self, doc: Tree) -> None:
        """Fill the tree-distance table for ``doc`` (all keyroot pairs).

        The numpy engine only takes over at ``numpy_min_doc`` nodes:
        below it the scalar engine is faster *and* the results are
        trivially bit-identical across backends, which is what keeps
        TASM's many small candidate evaluations at full scalar speed
        under ``backend="numpy"``.
        """
        self.calls += 1
        if self.backend == "numpy" and len(doc) >= self._numpy_min_doc:
            self._compute_numpy(doc)
            self._last_np = True
            self.calls_numpy += 1
            rows = len(doc.keyroots()) * self._plan_rows
            self.rows_computed += rows
            self.rows_computed_numpy += rows
        else:
            self._compute_python(doc)
            self._last_np = False
            self.rows_computed += len(doc.keyroots()) * self._plan_rows

    def _ensure_width(self, need: int) -> None:
        if need <= self._cols:
            return
        for row in self._td:
            row.extend([0.0] * (need - len(row)))
        for row in self._rows:
            row.extend([0.0] * (need - len(row)))
        self._cols = need

    def _encode_doc(self, labels2: List, n2: int) -> List[int]:
        """Intern the document labels, extending the cost lookups."""
        enc = self._doc_ids
        icost = self._icost
        ren = self._ren
        cost = self.cost
        qlabels = self._qlabels
        ids2 = [0] * (n2 + 1)
        for v in range(1, n2 + 1):
            label = labels2[v]
            i2 = enc.get(label)
            if i2 is None:
                i2 = len(icost)
                enc[label] = i2
                ic = cost.insert(label)
                icost.append(ic)
                if self._ic_value is None:
                    self._ic_value = ic
                elif ic != self._ic_value:
                    self._ic_uniform = False
                for qi, qlabel in enumerate(qlabels):
                    ren[qi].append(cost.rename(qlabel, label))
            ids2[v] = i2
        return ids2

    def _compute_python(self, doc: Tree) -> None:
        """Fill ``self._td`` for ``doc`` (all keyroot pairs)."""
        n2 = len(doc)
        if n2 + 1 > self._cols:
            self._ensure_width(n2 + 1)
        lmls2 = doc.lmls
        ids2 = self._encode_doc(doc.labels, n2)
        ren = self._ren
        td = self._td
        rows = self._rows
        keyroots1 = self._keyroots1
        plans = self._plans
        icost = self._icost
        icc = self._ic_value if self._ic_uniform else None
        if icc is None:
            ic2 = [0.0] * (n2 + 1)
            for v in range(1, n2 + 1):
                ic2[v] = icost[ids2[v]]
        elif self._row0_scalar_cols < n2 + 1:
            row0 = rows[0]
            for x in range(self._row0_scalar_cols, n2 + 1):
                row0[x] = x * icc
            self._row0_scalar_cols = n2 + 1

        # Document keyroots drive the outer loop so the per-column data
        # below is computed once per document keyroot, not once per
        # pair.  Validity of the order: the ``else`` branch reads
        # td[u][v] whose owning keyroot pair has a strictly smaller
        # document keyroot, or the same one with a smaller query
        # keyroot — both already processed.
        for j in doc.keyroots():
            lj = lmls2[j]
            nj = j - lj + 1
            if nj == 1:
                # Leaf document keyroot — half the keyroots of typical
                # documents.  The forest table degenerates to a single
                # column, whose inputs (column 0 and the leaf's insert
                # cost) are already known, so the pair runs without
                # touching the row buffers or allocating any slice.
                i2 = ids2[j]
                icv = icc if icc is not None else icost[i2]
                for (c0, plan) in plans:
                    prevc = icv  # fd[row above][leaf column]
                    di = 0
                    for u, off1, i1, dc in plan:
                        td_u = td[u]
                        if i1 >= 0:
                            # Both prefixes complete: match by rename.
                            best = c0[di] + ren[i1][i2]
                        else:
                            best = c0[off1] + td_u[j]
                        alt = prevc + dc
                        if alt < best:
                            best = alt
                        di += 1
                        alt = c0[di] + icv
                        if alt < best:
                            best = alt
                        if i1 >= 0:
                            td_u[j] = best
                        prevc = best
                continue
            njp1 = nj + 1
            off2_slice = [x - lj for x in lmls2[lj : j + 1]]
            id2_slice = ids2[lj : j + 1]
            row0 = rows[0]
            if icc is not None and nj <= 48:
                # Small non-leaf document keyroot, uniform inserts: an
                # indexed loop beats the zip pipelines because it does
                # not allocate the two per-row slice views.
                for (c0, plan) in plans:
                    for di in range(1, len(c0)):
                        rows[di][0] = c0[di]
                    prev_row = row0
                    di = 0
                    for u, off1, i1, dc in plan:
                        di += 1
                        row = rows[di]
                        bnd = rows[off1]
                        td_u = td[u]
                        acc = row[0]
                        if i1 >= 0:
                            ren_row = ren[i1]
                            diag = prev_row[0]
                            for dj in range(1, njp1):
                                pr = prev_row[dj]
                                off2 = off2_slice[dj - 1]
                                v = lj + dj - 1
                                if off2:
                                    best = bnd[off2] + td_u[v]
                                else:
                                    best = diag + ren_row[id2_slice[dj - 1]]
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                if not off2:
                                    td_u[v] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                        else:
                            for dj in range(1, njp1):
                                off2 = off2_slice[dj - 1]
                                best = bnd[off2] + td_u[lj + dj - 1]
                                alt = prev_row[dj] + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                        prev_row = row
                continue
            if icc is None:
                # Row 0: insert-cost prefix sums (independent of the
                # query keyroot, shared by every pair with this
                # document keyroot).  For uniform inserts row 0 is
                # already position-proportional; see _compute above.
                ic_slice = ic2[lj : j + 1]
                row0[0] = 0.0
                acc = 0.0
                dj = 0
                for ic in ic_slice:
                    dj += 1
                    acc += ic
                    row0[dj] = acc
            for (c0, plan) in plans:
                # Column 0: delete-cost prefix sums, precomputed.
                for di in range(1, len(c0)):
                    rows[di][0] = c0[di]
                prev_row = row0
                di = 0
                for u, off1, i1, dc in plan:
                    di += 1
                    row = rows[di]
                    bnd = rows[off1]  # fd over the forest left of T1_u
                    td_u = td[u]
                    # Snapshot td[u][lj..j]; every value read below was
                    # written by an earlier keyroot pair, never by this
                    # row (reads and writes target disjoint cells).
                    td_view = td_u[lj : j + 1]
                    prev_view = prev_row[1:njp1]
                    acc = row[0]
                    if i1 >= 0:
                        # Left-path node: the query prefix is a complete
                        # subtree, so whenever the document prefix is
                        # too (off2 == 0) the match case applies and the
                        # cell doubles as the tree distance td[u][v].
                        ren_row = ren[i1]
                        diag = prev_row[0]
                        base2 = lj - 1  # td_u write index is base2 + dj
                        dj = 0
                        if icc is None:
                            for pr, ic, off2, i2, tdv in zip(
                                prev_view,
                                ic_slice,
                                off2_slice,
                                id2_slice,
                                td_view,
                                strict=True,
                            ):
                                dj += 1
                                if off2:
                                    best = bnd[off2] + tdv
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + ic
                                    if alt < best:
                                        best = alt
                                else:
                                    best = diag + ren_row[i2]
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + ic
                                    if alt < best:
                                        best = alt
                                    td_u[base2 + dj] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                        else:
                            for pr, off2, i2, tdv in zip(
                                prev_view, off2_slice, id2_slice, td_view,
                                strict=True,
                            ):
                                dj += 1
                                if off2:
                                    best = bnd[off2] + tdv
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + icc
                                    if alt < best:
                                        best = alt
                                else:
                                    best = diag + ren_row[i2]
                                    alt = pr + dc
                                    if alt < best:
                                        best = alt
                                    alt = acc + icc
                                    if alt < best:
                                        best = alt
                                    td_u[base2 + dj] = best
                                row[dj] = best
                                acc = best
                                diag = pr
                    else:
                        # Off the left path: the query prefix is a
                        # forest, the match case always goes through the
                        # already-known tree distance td[u][v].
                        dj = 0
                        if icc is None:
                            for pr, ic, off2, tdv in zip(
                                prev_view, ic_slice, off2_slice, td_view,
                                strict=True,
                            ):
                                dj += 1
                                best = bnd[off2] + tdv
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + ic
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                        else:
                            for pr, off2, tdv in zip(
                                prev_view, off2_slice, td_view,
                                strict=True,
                            ):
                                dj += 1
                                best = bnd[off2] + tdv
                                alt = pr + dc
                                if alt < best:
                                    best = alt
                                alt = acc + icc
                                if alt < best:
                                    best = alt
                                row[dj] = best
                                acc = best
                    prev_row = row

    # ------------------------------------------------------------------
    # The numpy row engine
    # ------------------------------------------------------------------
    def _ensure_width_np(self, need: int) -> None:
        if need <= self._np_cols:
            return
        np = _load_numpy()
        width = max(need, 2 * self._np_cols, 64)
        # Fresh zeroed storage, no copy: within one _compute every cell
        # is written before it is read (the keyroot order argument in
        # _compute_python), so nothing from the previous document may
        # legitimately survive a growth.
        self._td_np = np.zeros((self._n1 + 1, width))
        self._rows_np = np.zeros((self._n1 + 1, width))
        self._arange_np = np.arange(width, dtype=float)
        self._np_cols = width

    def _sync_cost_tables(self) -> None:
        """Mirror newly interned document labels into the array tables."""
        n = len(self._icost)
        if n == self._synced_labels:
            return
        np = _load_numpy()
        cap = self._icost_np.shape[0]
        if n > cap:
            newcap = max(n, 2 * cap)
            icost_np = np.zeros(newcap)
            icost_np[:cap] = self._icost_np
            self._icost_np = icost_np
            ren_np = np.zeros((len(self._qlabels), newcap))
            ren_np[:, :cap] = self._ren_np
            self._ren_np = ren_np
        start = self._synced_labels
        self._icost_np[start:n] = self._icost[start:]
        for qi, ren_row in enumerate(self._ren):
            self._ren_np[qi, start:n] = ren_row[start:]
        self._synced_labels = n

    def _compute_numpy(self, doc: Tree) -> None:
        """Fill ``self._td_np`` for ``doc`` (all keyroot pairs).

        Pairs run in ascending order of row width ``nj``, equal widths
        batched together.  That schedule is dependency-correct: a pair
        only reads tree distances owned by keyroots *strictly inside*
        its document keyroot's subtree (the off-left-path match case;
        an owner outside would be an ancestor of the keyroot, whose
        leftmost leaf is too far left to own any in-range column) —
        and a strictly contained keyroot subtree is strictly smaller,
        i.e. already processed.  Equal-width keyroot subtrees can
        never nest (laminar intervals of equal length are identical or
        disjoint), so a width group's pairs touch pairwise disjoint
        column ranges and run as one 3-D sweep: width-1 pairs — the
        leaf document keyroots, typically half of all keyroots — in a
        dedicated 2-D sweep, the rest via :meth:`_pair_batch`, and
        pairs wide enough to amortise array dispatch alone as per-pair
        row sweeps.
        """
        np = _load_numpy()
        n2 = len(doc)
        self._ensure_width_np(n2 + 1)
        lmls2 = doc.lmls
        ids2 = self._encode_doc(doc.labels, n2)
        self._sync_cost_tables()
        icc = self._ic_value if self._ic_uniform else None
        ids2_np = np.asarray(ids2, dtype=np.intp)
        lml_np = np.asarray(lmls2, dtype=np.intp)
        groups: Dict[int, List[int]] = {}
        for j in doc.keyroots():
            groups.setdefault(j - lmls2[j] + 1, []).append(j)
        for nj in sorted(groups):
            js = groups[nj]
            if nj == 1:
                self._leaf_pairs_vector(np, js, ids2_np, icc)
            elif nj >= self._vec_min_cols:
                for j in js:
                    self._pair_vector(np, j, lmls2[j], nj, ids2_np, lml_np, icc)
            else:
                chunk = max(
                    1, _BATCH_MAX_ELEMENTS // ((nj + 1) * (self._n1 + 1))
                )
                for start in range(0, len(js), chunk):
                    self._pair_batch(
                        np, js[start : start + chunk], nj, ids2_np, lml_np, icc
                    )

    def _leaf_pairs_vector(self, np, leaves, ids2_np, icc) -> None:
        """All leaf document keyroots against all query keyroots at once.

        A leaf pair's forest table is a single column; running the
        column recurrence for every leaf simultaneously turns the whole
        leaf population into one ``(plan rows) x (leaves)`` sweep per
        query keyroot.  The delete chain ``best_r = min(base_r,
        best_{r-1} + dc_r)`` uses the same min-plus scan as the row
        engine, with the delete prefix sums ``c0`` as the drift.
        """
        td = self._td_np
        cols = np.asarray(leaves, dtype=np.intp)
        i2 = ids2_np[cols]
        if icc is None:
            icv = self._icost_np[i2]
        else:
            icv = np.full(len(leaves), icc)
        ren = self._ren_np
        for c0, u_arr, off1_arr, _, path_idx, path_qids, path_u in self._plans_np:
            # base_r: the match case (rename diagonal on left-path rows,
            # known tree distance off it) already min'd with the insert
            # candidate c0[r] + icv.
            base = td[np.ix_(u_arr, cols)]
            base += c0[off1_arr][:, None]
            if len(path_idx):
                base[path_idx] = ren[np.ix_(path_qids, i2)] + c0[path_idx][:, None]
            b = np.minimum(base, c0[1:, None] + icv)
            # Delete-chain scan with drift c0 (exact because c0 was
            # accumulated with the same additions the scalar chain
            # performs): g holds cummin(B_t - c0_t) with B_0 = icv.
            g = np.empty((len(u_arr) + 1, len(leaves)))
            g[0] = icv
            np.subtract(b, c0[1:, None], out=g[1:])
            np.minimum.accumulate(g, axis=0, out=g)
            best = np.minimum(b, g[:-1] + c0[1:, None])
            if len(path_idx):
                td[np.ix_(path_u, cols)] = best[path_idx]

    def _pair_batch(self, np, js, nj, ids2_np, lml_np, icc) -> None:
        """One layer's equal-width keyroot pairs as a 3-D sweep.

        Same recurrence as :meth:`_pair_vector`, with a leading *pair*
        axis: all pairs in ``js`` share the width ``nj``, their column
        ranges are disjoint (same layer), and the per-pair gathers
        become 2-D ``take_along_axis``/fancy lookups.
        """
        G = len(js)
        njp1 = nj + 1
        js_np = np.asarray(js, dtype=np.intp)
        ljs = js_np - nj + 1
        col_idx = ljs[:, None] + np.arange(nj)  # (G, nj) global columns
        off2 = lml_np[col_idx] - ljs[:, None]
        id2 = ids2_np[col_idx]
        zero_mask = off2 == 0
        td = self._td_np
        ren = self._ren_np
        S = np.empty((G, njp1))
        if icc is None:
            S[:, 0] = 0.0
            np.cumsum(self._icost_np[id2], axis=1, out=S[:, 1:])
        else:
            S[:] = self._arange_np[:njp1] * icc
        rows = np.empty((self._n1 + 1, G, njp1))
        rows[0] = S
        for (c0_np, *_), (_, plan) in zip(self._plans_np, self._plans, strict=True):
            rows[1 : len(plan) + 1, :, 0] = c0_np[1:, None]
            prev = rows[0]
            r = 0
            for u, off1, i1, dc in plan:
                r += 1
                row = rows[r]
                b = np.take_along_axis(rows[off1], off2, axis=1)
                b += td[u][col_idx]
                if i1 >= 0:
                    diag = prev[:, :nj] + ren[i1][id2]
                    b[zero_mask] = diag[zero_mask]
                np.minimum(b, prev[:, 1:njp1] + dc, out=b)
                np.subtract(b, S[:, 1:], out=row[:, 1:])
                np.minimum.accumulate(row, axis=1, out=row)
                np.minimum(b, row[:, :nj] + S[:, 1:], out=row[:, 1:])
                if i1 >= 0:
                    td[u, col_idx[zero_mask]] = row[:, 1:][zero_mask]
                prev = row

    def _pair_vector(self, np, j, lj, nj, ids2_np, lml_np, icc) -> None:
        """One wide keyroot pair group as whole-row sweeps."""
        td = self._td_np
        rows = self._rows_np
        njp1 = nj + 1
        off2 = lml_np[lj : j + 1] - lj
        zero = np.nonzero(off2 == 0)[0]  # dj-1 of complete-subtree prefixes
        zero_p1 = zero + 1
        zero_cols = zero + lj
        id2_zero = ids2_np[zero_cols]
        # Row 0 doubles as the insert prefix sums S (the scan's drift).
        S = rows[0, :njp1]
        if icc is None:
            S[0] = 0.0
            np.cumsum(self._icost_np[ids2_np[lj : j + 1]], out=S[1:])
        else:
            np.multiply(self._arange_np[:njp1], icc, out=S)
        ren = self._ren_np
        for (c0_np, *_), (_c0, plan) in zip(self._plans_np, self._plans, strict=True):
            rows[1 : len(plan) + 1, 0] = c0_np[1:]
            prev = rows[0]
            r = 0
            for u, off1, i1, dc in plan:
                r += 1
                row = rows[r]
                # Match case: forest boundary gather + known tree
                # distances.  Complete-subtree positions read garbage
                # here on left-path rows and are overridden by the
                # rename diagonal before any arithmetic uses them.
                b = rows[off1, off2]
                b += td[u, lj : j + 1]
                if i1 >= 0 and len(zero):
                    b[zero] = prev[zero] + ren[i1, id2_zero]
                np.minimum(b, prev[1:njp1] + dc, out=b)
                # Insert scan: row[dj] = min(b[dj], S[dj] +
                # cummin_{t<dj}(B_t - S_t)) with B_0 = c0[r] (already in
                # row[0]).  Computed in place: the cummin runs over
                # row[:njp1], then the final minimum reads the
                # *exclusive* prefix row[:nj] while writing row[1:].
                np.subtract(b, S[1:njp1], out=row[1:njp1])
                np.minimum.accumulate(row[:njp1], out=row[:njp1])
                np.minimum(b, row[:nj] + S[1:njp1], out=row[1:njp1])
                if i1 >= 0 and len(zero):
                    td[u, zero_cols] = row[zero_p1]
                prev = row

def ted_matrix(
    t1: Tree,
    t2: Tree,
    cost: Optional[CostModel] = None,
    backend: str = "auto",
) -> List[List[float]]:
    """All-pairs subtree distances ``td[i][j] = ted(T1_i, T2_j)``.

    ``td`` is ``(|T1|+1) x (|T2|+1)`` with the usual 1-based padding.
    Runs the Zhang–Shasha loop over all keyroot pairs; every node pair
    is covered because each node belongs to exactly one keyroot's
    relevant subtree with the same leftmost leaf.
    """
    return PrefixDistanceKernel(t1, cost, backend).matrix(t2)


def ted(
    t1: Tree,
    t2: Tree,
    cost: Optional[CostModel] = None,
    backend: str = "auto",
) -> float:
    """Tree edit distance between ``t1`` and ``t2``."""
    return PrefixDistanceKernel(t1, cost, backend).distances(t2)[len(t2)]


def prefix_distance(
    query: Tree,
    tree: Tree,
    cost: Optional[CostModel] = None,
    backend: str = "auto",
) -> List[float]:
    """Distances between ``query`` and **every** subtree of ``tree``.

    Returns ``dist`` with ``dist[j] = ted(query, T_j)`` for each
    postorder id ``j`` of ``tree`` (``dist[0]`` is padding).  This is
    the paper's prefix-array byproduct: one Zhang–Shasha run instead of
    ``|tree|`` independent distance computations.
    """
    return PrefixDistanceKernel(query, cost, backend).distances(tree)
