"""Zhang–Shasha tree edit distance over the keyroot decomposition.

The classic dynamic program [Zhang & Shasha, SIAM J. Comput. 1989] as
the paper uses it (Section III): for every pair of *keyroots* — roots of
relevant subtrees, :meth:`repro.trees.tree.Tree.keyroots` — a forest
distance table is filled left-to-right over the postorder prefixes of
the two relevant subtrees.  Whenever both prefixes happen to be complete
subtrees the cell is also the *tree* distance of that subtree pair, so a
single run fills ``td[i][j] = ted(T1_i, T2_j)`` for **all** node pairs.

:func:`prefix_distance` exploits exactly this: the row ``td[root(Q)][*]``
holds the edit distance between the whole query and every subtree of the
document, which is the quantity TASM ranks (Algorithm 1, *prefix array*).
"""

from __future__ import annotations

from typing import List, Optional

from ..trees.tree import Tree
from .cost import CostModel, UnitCostModel, validate_cost_model

__all__ = ["ted", "ted_matrix", "prefix_distance"]


def _forest_distances(
    t1: Tree,
    t2: Tree,
    i: int,
    j: int,
    td: List[List[float]],
    cost: CostModel,
) -> None:
    """Fill ``td`` for the keyroot pair ``(i, j)``.

    Implements the forest-distance recurrence over the postorder
    prefixes of the relevant subtrees rooted at ``i`` (in ``t1``) and
    ``j`` (in ``t2``).
    """
    lmls1, lmls2 = t1.lmls, t2.lmls
    labels1, labels2 = t1.labels, t2.labels
    li, lj = lmls1[i], lmls2[j]
    m, n = i - li + 1, j - lj + 1

    # fd[di][dj] = distance between the first di nodes of T1_i's
    # relevant subtree and the first dj nodes of T2_j's.
    fd: List[List[float]] = [[0.0] * (n + 1) for _ in range(m + 1)]
    for di in range(1, m + 1):
        fd[di][0] = fd[di - 1][0] + cost.delete(labels1[li + di - 1])
    row0 = fd[0]
    for dj in range(1, n + 1):
        row0[dj] = row0[dj - 1] + cost.insert(labels2[lj + dj - 1])

    for di in range(1, m + 1):
        n1 = li + di - 1
        lab1 = labels1[n1]
        tree1_complete = lmls1[n1] == li
        off1 = lmls1[n1] - li  # prefix length just before T1_n1 starts
        prev_row = fd[di - 1]
        row = fd[di]
        td_n1 = td[n1]
        for dj in range(1, n + 1):
            n2 = lj + dj - 1
            lab2 = labels2[n2]
            del_cost = prev_row[dj] + cost.delete(lab1)
            ins_cost = row[dj - 1] + cost.insert(lab2)
            if tree1_complete and lmls2[n2] == lj:
                # Both prefixes are complete subtrees: the match case is
                # a rename of the two roots, and the cell doubles as the
                # tree distance td[n1][n2].
                best = prev_row[dj - 1] + cost.rename(lab1, lab2)
                if del_cost < best:
                    best = del_cost
                if ins_cost < best:
                    best = ins_cost
                row[dj] = best
                td_n1[n2] = best
            else:
                off2 = lmls2[n2] - lj
                best = fd[off1][off2] + td_n1[n2]
                if del_cost < best:
                    best = del_cost
                if ins_cost < best:
                    best = ins_cost
                row[dj] = best


def ted_matrix(
    t1: Tree, t2: Tree, cost: Optional[CostModel] = None
) -> List[List[float]]:
    """All-pairs subtree distances ``td[i][j] = ted(T1_i, T2_j)``.

    ``td`` is ``(|T1|+1) x (|T2|+1)`` with the usual 1-based padding.
    Runs the Zhang–Shasha loop over all keyroot pairs; every node pair
    is covered because each node belongs to exactly one keyroot's
    relevant subtree with the same leftmost leaf.
    """
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    td: List[List[float]] = [
        [0.0] * (len(t2) + 1) for _ in range(len(t1) + 1)
    ]
    for i in t1.keyroots():
        for j in t2.keyroots():
            _forest_distances(t1, t2, i, j, td, cost)
    return td


def ted(t1: Tree, t2: Tree, cost: Optional[CostModel] = None) -> float:
    """Tree edit distance between ``t1`` and ``t2``."""
    return ted_matrix(t1, t2, cost)[len(t1)][len(t2)]


def prefix_distance(
    query: Tree, tree: Tree, cost: Optional[CostModel] = None
) -> List[float]:
    """Distances between ``query`` and **every** subtree of ``tree``.

    Returns ``dist`` with ``dist[j] = ted(query, T_j)`` for each
    postorder id ``j`` of ``tree`` (``dist[0]`` is padding).  This is
    the paper's prefix-array byproduct: one Zhang–Shasha run instead of
    ``|tree|`` independent distance computations.
    """
    td = ted_matrix(query, tree, cost)
    return td[len(query)]
