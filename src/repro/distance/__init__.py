"""Tree edit distance kernels (paper Section III).

* :mod:`~repro.distance.cost` — pluggable cost models (Definition 1
  context): the paper requires every delete/insert operation to cost at
  least 1 so that distances lower-bound structural difference.
* :mod:`~repro.distance.ted` — the Zhang–Shasha tree edit distance over
  the keyroot decomposition, plus :func:`prefix_distance`, the
  all-subtrees distance array TASM-dynamic is built on.
"""

from .cost import (
    CostModel,
    UnitCostModel,
    WeightedCostModel,
    validate_cost_model,
)
from .ted import (
    KERNEL_BACKENDS,
    PrefixDistanceKernel,
    numpy_backend_available,
    prefix_distance,
    resolve_backend,
    ted,
    ted_matrix,
)

__all__ = [
    "CostModel",
    "UnitCostModel",
    "WeightedCostModel",
    "validate_cost_model",
    "KERNEL_BACKENDS",
    "PrefixDistanceKernel",
    "numpy_backend_available",
    "resolve_backend",
    "ted",
    "ted_matrix",
    "prefix_distance",
]
