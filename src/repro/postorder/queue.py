"""Postorder queues (paper Definition 2).

A postorder queue is the *only* interface TASM-postorder has to the
document: a sequence of ``(label, size)`` pairs in postorder supporting
a single ``dequeue`` operation.  It abstracts from the storage model —
the same algorithm runs over in-memory trees, streamed XML files, and
the relational interval-encoding store (:mod:`repro.postorder.interval`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Protocol, Tuple, runtime_checkable

from ..errors import PostorderQueueError
from ..trees.tree import Tree

__all__ = ["Pair", "PostorderQueue", "PostorderSource"]

Pair = Tuple[object, int]


@runtime_checkable
class PostorderSource(Protocol):
    """Anything that yields ``(label, size)`` pairs in postorder.

    The structural interface of paper Definition 2: generators,
    database scans, and :class:`PostorderQueue` itself all satisfy it,
    so the streaming core can be typed against the contract instead of
    a concrete container.
    """

    def __iter__(self) -> Iterator[Pair]: ...


class PostorderQueue:
    """Single-pass queue of ``(label, size)`` pairs in postorder.

    Wraps any iterable of pairs.  Only ``dequeue`` (and iteration, which
    is repeated dequeueing) is exposed, mirroring Definition 2; there is
    deliberately no random access.
    """

    __slots__ = ("_iter", "_peeked", "_exhausted", "_dequeued")

    def __init__(self, pairs: "Iterable[Pair] | PostorderSource"):
        self._iter = iter(pairs)
        self._peeked: Optional[Pair] = None
        self._exhausted = False
        self._dequeued = 0

    # ------------------------------------------------------------------
    # Constructors for the common sources
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree: Tree) -> "PostorderQueue":
        """Postorder queue of an in-memory tree."""
        return cls(tree.postorder())

    @classmethod
    def from_xml_file(cls, source, **kwargs) -> "PostorderQueue":
        """Streaming postorder queue of an XML document (path or file)."""
        from ..xmlio.parse import iterparse_postorder

        return cls(iterparse_postorder(source, **kwargs))

    @classmethod
    def from_pairs(cls, pairs: "Iterable[Pair] | PostorderSource") -> "PostorderQueue":
        return cls(pairs)

    # ------------------------------------------------------------------
    # Queue protocol
    # ------------------------------------------------------------------
    @property
    def empty(self) -> bool:
        """True iff no pairs remain (may buffer one pair to find out)."""
        if self._peeked is not None:
            return False
        if self._exhausted:
            return True
        try:
            self._peeked = next(self._iter)
        except StopIteration:
            self._exhausted = True
            return True
        return False

    def dequeue(self) -> Pair:
        """Remove and return the next ``(label, size)`` pair."""
        if self._peeked is not None:
            pair = self._peeked
            self._peeked = None
        else:
            try:
                pair = next(self._iter)
            except StopIteration:
                self._exhausted = True
                raise PostorderQueueError(
                    "dequeue from empty postorder queue"
                ) from None
        self._dequeued += 1
        return pair

    @property
    def dequeued(self) -> int:
        """Number of pairs consumed so far (instrumentation)."""
        return self._dequeued

    def __iter__(self) -> Iterator[Pair]:
        # Semantically repeated dequeueing (Definition 2), but without
        # the per-pair empty/dequeue call overhead — this is the hot
        # loop of TASM-postorder.  Interleaving with direct dequeue()
        # calls stays safe: the peek slot is re-checked every step.
        while True:
            if self._peeked is not None:
                pair = self._peeked
                self._peeked = None
            else:
                try:
                    pair = next(self._iter)
                except StopIteration:
                    self._exhausted = True
                    return
            self._dequeued += 1
            yield pair

    # ------------------------------------------------------------------
    # Materialisation (consumes the queue)
    # ------------------------------------------------------------------
    def to_tree(self) -> Tree:
        """Drain the queue into a :class:`Tree`.

        Postorder queues uniquely define a tree (Section IV-B); this is
        the constructive proof.
        """
        return Tree.from_postorder(self)
