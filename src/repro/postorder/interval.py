"""Interval-encoded XML storage on SQLite.

The paper's conclusion claims the postorder-queue interface makes TASM
portable to "XML stores based on variants of the interval encoding
[Tatarinov et al., SIGMOD 2002], which is prevalent among persistent XML
stores".  This module makes that claim concrete: an ordered labeled
tree is stored as one relational row per node

    ``node(doc_id, start, end, label)``

where ``start``/``end`` are the positions of the node's opening and
closing "tags" in a single counter sequence (Dietz numbering).  Two
classic properties follow:

* ancestorship is interval containment, and
* ordering rows by ``end`` yields the **postorder**, with the subtree
  size recoverable as ``(end - start + 1) / 2``.

Hence a postorder queue is one SQL scan::

    SELECT label, (end_pos - start_pos + 1) / 2 FROM node
    WHERE doc_id = ? ORDER BY end_pos

which is exactly what :meth:`IntervalStore.postorder_queue` runs — the
store streams rows from the database cursor, so TASM-postorder works on
documents that never fit in Python memory.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator, List, Optional, Tuple

from ..errors import PostorderQueueError
from ..trees.tree import Tree
from .queue import PostorderQueue

__all__ = ["IntervalStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS document (
    doc_id   INTEGER PRIMARY KEY,
    name     TEXT NOT NULL UNIQUE,
    n_nodes  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS node (
    doc_id    INTEGER NOT NULL REFERENCES document(doc_id),
    start_pos INTEGER NOT NULL,
    end_pos   INTEGER NOT NULL,
    label     TEXT NOT NULL,
    PRIMARY KEY (doc_id, end_pos)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS node_start ON node(doc_id, start_pos);
"""


class IntervalStore:
    """A small relational XML store using the interval encoding."""

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @classmethod
    def open_readonly(cls, path: str) -> "IntervalStore":
        """Open an existing store file without write access.

        Skips schema creation, so any number of reader processes (the
        parallel TASM workers) can share one database file without
        ever contending for the write lock.
        """
        store = cls.__new__(cls)
        try:
            store._conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        except sqlite3.OperationalError as exc:
            raise PostorderQueueError(
                f"cannot open store {path!r} read-only: {exc}"
            ) from None
        return store

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "IntervalStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def store_tree(self, name: str, tree: Tree) -> int:
        """Store ``tree`` under ``name``; returns the ``doc_id``.

        Start/end positions are derived from the postorder arrays
        without an explicit traversal via the closed form
        ``end(i) = 2*i + depth(i)`` (see :meth:`_interval_rows`).

        The ``node.label`` column is TEXT: labels are stored as
        ``str(label)``, so non-string labels come back as strings and
        would no longer compare equal to the originals under a cost
        model.  XML-derived trees (the intended payload) always carry
        string labels.
        """
        rows = list(self._interval_rows(tree))
        cur = self._conn.cursor()
        cur.execute(
            "INSERT INTO document(name, n_nodes) VALUES (?, ?)",
            (name, len(tree)),
        )
        doc_id = cur.lastrowid
        cur.executemany(
            "INSERT INTO node(doc_id, start_pos, end_pos, label) "
            "VALUES (?, ?, ?, ?)",
            ((doc_id, s, e, str(l)) for s, e, l in rows),
        )
        self._conn.commit()
        return int(doc_id)

    @staticmethod
    def _interval_rows(tree: Tree) -> Iterator[Tuple[int, int, object]]:
        """Yield ``(start, end, label)`` per node in postorder.

        In Dietz numbering over the 2n tag events, the closing event of
        postorder node ``i`` is preceded by exactly ``i - 1`` closing
        events (closes happen in postorder) and ``i + depth(i)`` opening
        events (the ``i`` nodes at postorder positions ``<= i`` plus the
        ``depth(i)`` proper ancestors of ``i``, all of which are open).
        Hence ``end(i) = 2*i + depth(i)``, and since a subtree occupies
        ``2 * size(i)`` consecutive events,
        ``start(i) = end(i) - 2*size(i) + 1``.
        """
        n = len(tree)
        parents = tree.parents
        # Parents have larger postorder ids than their children, so a
        # single descending pass fills every depth.
        depths = [0] * (n + 1)
        for i in range(n - 1, 0, -1):
            depths[i] = depths[parents[i]] + 1
        for i in range(1, n + 1):
            end = 2 * i + depths[i]
            yield end - 2 * tree.size(i) + 1, end, tree.label(i)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def documents(self) -> List[Tuple[int, str, int]]:
        """All stored documents as ``(doc_id, name, n_nodes)`` rows."""
        cur = self._conn.execute(
            "SELECT doc_id, name, n_nodes FROM document ORDER BY doc_id"
        )
        return [(int(d), str(n), int(s)) for d, n, s in cur.fetchall()]

    def doc_id(self, name: str) -> int:
        row = self._conn.execute(
            "SELECT doc_id FROM document WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise PostorderQueueError(f"no document named {name!r}")
        return int(row[0])

    def n_nodes(self, doc_id: int) -> int:
        """Node count of a stored document (from its metadata row)."""
        row = self._conn.execute(
            "SELECT n_nodes FROM document WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if row is None:
            raise PostorderQueueError(f"no document with doc_id {doc_id}")
        return int(row[0])

    def postorder_pairs(self, doc_id: int) -> Iterator[Tuple[str, int]]:
        """Stream ``(label, size)`` pairs in postorder from SQL."""
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? ORDER BY end_pos",
            (doc_id,),
        )
        for label, size in cur:
            yield label, int(size)

    def postorder_range(
        self, doc_id: int, start: int, end: int
    ) -> Iterator[Tuple[str, int]]:
        """Stream ``(label, size)`` pairs for postorder positions
        ``start .. end`` (1-based, inclusive).

        Postorder position is the rank by closing tag position
        (``ORDER BY end_pos``), so the range scan is a single
        LIMIT/OFFSET walk of the ``(doc_id, end_pos)`` primary-key
        index.  This is what lets a parallel worker read exactly its
        shard without any process materialising the document.
        """
        if start < 1 or end < start:
            raise PostorderQueueError(
                f"invalid postorder range {start}..{end} (need 1 <= start <= end)"
            )
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? ORDER BY end_pos LIMIT ? OFFSET ?",
            (doc_id, end - start + 1, start - 1),
        )
        for label, size in cur:
            yield label, int(size)

    def postorder_queue(self, doc_id: int) -> PostorderQueue:
        """The document as a :class:`PostorderQueue` (Definition 2)."""
        return PostorderQueue(self.postorder_pairs(doc_id))

    def load_tree(self, doc_id: int) -> Tree:
        """Materialise the stored document as a :class:`Tree`."""
        return Tree.from_postorder(self.postorder_pairs(doc_id))

    def subtree_of(self, doc_id: int, end_pos: int) -> Optional[Tree]:
        """Fetch the subtree whose root closes at ``end_pos``.

        Demonstrates interval containment: the subtree's nodes are the
        rows with ``start_pos`` between the root's start and end.
        """
        row = self._conn.execute(
            "SELECT start_pos FROM node WHERE doc_id = ? AND end_pos = ?",
            (doc_id, end_pos),
        ).fetchone()
        if row is None:
            return None
        start = int(row[0])
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? AND start_pos >= ? AND end_pos <= ? "
            "ORDER BY end_pos",
            (doc_id, start, end_pos),
        )
        return Tree.from_postorder((label, int(size)) for label, size in cur)
