"""Interval-encoded XML storage on SQLite.

The paper's conclusion claims the postorder-queue interface makes TASM
portable to "XML stores based on variants of the interval encoding
[Tatarinov et al., SIGMOD 2002], which is prevalent among persistent XML
stores".  This module makes that claim concrete: an ordered labeled
tree is stored as one relational row per node

    ``node(doc_id, start, end, label)``

where ``start``/``end`` are the positions of the node's opening and
closing "tags" in a single counter sequence (Dietz numbering).  Two
classic properties follow:

* ancestorship is interval containment, and
* ordering rows by ``end`` yields the **postorder**, with the subtree
  size recoverable as ``(end - start + 1) / 2``.

Hence a postorder queue is one SQL scan::

    SELECT label, (end_pos - start_pos + 1) / 2 FROM node
    WHERE doc_id = ? ORDER BY end_pos

which is exactly what :meth:`IntervalStore.postorder_queue` runs — the
store streams rows from the database cursor, so TASM-postorder works on
documents that never fit in Python memory.

Schema version 2 adds a per-document **candidate table** — one row per
node carrying the subtree's postorder position, size, structure hash,
and label-histogram signature (see :mod:`repro.index`) — so serving a
query can enumerate candidates by SQL size range instead of streaming
every node.  Version-1 files upgrade in place on read-write open (the
new tables are created empty) and backfill lazily via
:meth:`IntervalStore.ensure_index`; files recording a *newer* version
than this code supports refuse to open with
:class:`~repro.errors.StoreSchemaError`.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import PostorderQueueError, StoreSchemaError
from ..trees.tree import Tree
from .queue import PostorderQueue

__all__ = ["SCHEMA_VERSION", "IntervalStore"]

#: Newest store-file schema this code reads and writes.
SCHEMA_VERSION = 2

_SCHEMA = """
CREATE TABLE IF NOT EXISTS document (
    doc_id   INTEGER PRIMARY KEY,
    name     TEXT NOT NULL UNIQUE,
    n_nodes  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS node (
    doc_id    INTEGER NOT NULL REFERENCES document(doc_id),
    start_pos INTEGER NOT NULL,
    end_pos   INTEGER NOT NULL,
    label     TEXT NOT NULL,
    PRIMARY KEY (doc_id, end_pos)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS node_start ON node(doc_id, start_pos);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT NOT NULL PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS candidate (
    doc_id      INTEGER NOT NULL REFERENCES document(doc_id),
    pos         INTEGER NOT NULL,
    end_pos     INTEGER NOT NULL,
    size        INTEGER NOT NULL,
    struct_hash BLOB NOT NULL,
    signature   BLOB NOT NULL,
    PRIMARY KEY (doc_id, pos)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS candidate_size ON candidate(doc_id, size);
"""


class IntervalStore:
    """A small relational XML store using the interval encoding."""

    def __init__(self, path: str = ":memory:"):
        self._conn = sqlite3.connect(path)
        self._check_version(self._conn, path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO meta(key, value) "
            "VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    @classmethod
    def open_readonly(cls, path: str) -> "IntervalStore":
        """Open an existing store file without write access.

        Skips schema creation, so any number of reader processes (the
        parallel TASM workers) can share one database file without
        ever contending for the write lock.  Version-1 files open fine
        (they simply report :meth:`has_index` false); files written by
        a newer library raise :class:`~repro.errors.StoreSchemaError`.
        """
        store = cls.__new__(cls)
        try:
            store._conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        except sqlite3.OperationalError as exc:
            raise PostorderQueueError(
                f"cannot open store {path!r} read-only: {exc}"
            ) from None
        cls._check_version(store._conn, path)
        return store

    @staticmethod
    def _stored_version(conn: sqlite3.Connection) -> int:
        """The schema version recorded in ``conn``'s meta table.

        Files predating the meta table (or empty files about to be
        initialised) count as version 1 — they upgrade in place.
        """
        try:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
        except sqlite3.DatabaseError:
            # No meta table (schema v1) — or not a database at all, in
            # which case the first real query reports the clean error.
            return 1
        if row is None:
            return 1
        try:
            return int(row[0])
        except ValueError:
            raise StoreSchemaError(
                f"store records non-numeric schema_version {row[0]!r}"
            ) from None

    @classmethod
    def _check_version(cls, conn: sqlite3.Connection, path: str) -> None:
        version = cls._stored_version(conn)
        if version > SCHEMA_VERSION:
            conn.close()
            raise StoreSchemaError(
                f"store {path!r} uses schema version {version}, newer "
                f"than the supported version {SCHEMA_VERSION}; upgrade "
                "the library to read it"
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "IntervalStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def store_tree(self, name: str, tree: Tree) -> int:
        """Store ``tree`` under ``name``; returns the ``doc_id``.

        Start/end positions are derived from the postorder arrays
        without an explicit traversal via the closed form
        ``end(i) = 2*i + depth(i)`` (see :meth:`_interval_rows`).

        The ``node.label`` column is TEXT: labels are stored as
        ``str(label)``, so non-string labels come back as strings and
        would no longer compare equal to the originals under a cost
        model.  XML-derived trees (the intended payload) always carry
        string labels.

        Ingest also materialises the document's candidate-index rows
        (:mod:`repro.index`) in the same transaction, so freshly stored
        documents always satisfy :meth:`has_index`.
        """
        rows = list(self._interval_rows(tree))
        cur = self._conn.cursor()
        cur.execute(
            "INSERT INTO document(name, n_nodes) VALUES (?, ?)",
            (name, len(tree)),
        )
        doc_id = cur.lastrowid
        cur.executemany(
            "INSERT INTO node(doc_id, start_pos, end_pos, label) "
            "VALUES (?, ?, ?, ?)",
            ((doc_id, s, e, str(l)) for s, e, l in rows),
        )
        self._insert_candidates(
            cur,
            int(doc_id) if doc_id is not None else 0,
            ((str(l), (e - s + 1) // 2, e) for s, e, l in rows),
        )
        self._conn.commit()
        return int(doc_id) if doc_id is not None else 0

    @staticmethod
    def _insert_candidates(
        cur: sqlite3.Cursor,
        doc_id: int,
        labelled: Iterable[Tuple[str, int, int]],
    ) -> int:
        """Insert candidate rows from ``(label, size, end_pos)`` triples.

        Shared by ingest (:meth:`store_tree`) and backfill
        (:meth:`ensure_index`); both hash labels in their stored TEXT
        form, so the two paths produce identical rows.  Returns the
        number of rows inserted.
        """
        from ..index.build import iter_candidate_entries

        pairs: List[Tuple[str, int]] = []
        ends: List[int] = []
        for label, size, end_pos in labelled:
            pairs.append((label, size))
            ends.append(end_pos)
        entries = iter_candidate_entries(pairs)
        cur.executemany(
            "INSERT INTO candidate"
            "(doc_id, pos, end_pos, size, struct_hash, signature) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (
                (doc_id, entry.pos, end, entry.size, entry.struct_hash,
                 entry.signature)
                for entry, end in zip(entries, ends)
            ),
        )
        return len(ends)

    @staticmethod
    def _interval_rows(tree: Tree) -> Iterator[Tuple[int, int, object]]:
        """Yield ``(start, end, label)`` per node in postorder.

        In Dietz numbering over the 2n tag events, the closing event of
        postorder node ``i`` is preceded by exactly ``i - 1`` closing
        events (closes happen in postorder) and ``i + depth(i)`` opening
        events (the ``i`` nodes at postorder positions ``<= i`` plus the
        ``depth(i)`` proper ancestors of ``i``, all of which are open).
        Hence ``end(i) = 2*i + depth(i)``, and since a subtree occupies
        ``2 * size(i)`` consecutive events,
        ``start(i) = end(i) - 2*size(i) + 1``.
        """
        n = len(tree)
        parents = tree.parents
        # Parents have larger postorder ids than their children, so a
        # single descending pass fills every depth.
        depths = [0] * (n + 1)
        for i in range(n - 1, 0, -1):
            depths[i] = depths[parents[i]] + 1
        for i in range(1, n + 1):
            end = 2 * i + depths[i]
            yield end - 2 * tree.size(i) + 1, end, tree.label(i)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def documents(self) -> List[Tuple[int, str, int]]:
        """All stored documents as ``(doc_id, name, n_nodes)`` rows."""
        cur = self._conn.execute(
            "SELECT doc_id, name, n_nodes FROM document ORDER BY doc_id"
        )
        return [(int(d), str(n), int(s)) for d, n, s in cur.fetchall()]

    def doc_id(self, name: str) -> int:
        row = self._conn.execute(
            "SELECT doc_id FROM document WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise PostorderQueueError(f"no document named {name!r}")
        return int(row[0])

    def n_nodes(self, doc_id: int) -> int:
        """Node count of a stored document (from its metadata row)."""
        row = self._conn.execute(
            "SELECT n_nodes FROM document WHERE doc_id = ?", (doc_id,)
        ).fetchone()
        if row is None:
            raise PostorderQueueError(f"no document with doc_id {doc_id}")
        return int(row[0])

    def postorder_pairs(self, doc_id: int) -> Iterator[Tuple[str, int]]:
        """Stream ``(label, size)`` pairs in postorder from SQL."""
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? ORDER BY end_pos",
            (doc_id,),
        )
        for label, size in cur:
            yield label, int(size)

    def postorder_range(
        self, doc_id: int, start: int, end: int
    ) -> Iterator[Tuple[str, int]]:
        """Stream ``(label, size)`` pairs for postorder positions
        ``start .. end`` (1-based, inclusive).

        Postorder position is the rank by closing tag position
        (``ORDER BY end_pos``), so the range scan is a single
        LIMIT/OFFSET walk of the ``(doc_id, end_pos)`` primary-key
        index.  This is what lets a parallel worker read exactly its
        shard without any process materialising the document.
        """
        if start < 1 or end < start:
            raise PostorderQueueError(
                f"invalid postorder range {start}..{end} (need 1 <= start <= end)"
            )
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? ORDER BY end_pos LIMIT ? OFFSET ?",
            (doc_id, end - start + 1, start - 1),
        )
        for label, size in cur:
            yield label, int(size)

    def postorder_queue(self, doc_id: int) -> PostorderQueue:
        """The document as a :class:`PostorderQueue` (Definition 2)."""
        return PostorderQueue(self.postorder_pairs(doc_id))

    def load_tree(self, doc_id: int) -> Tree:
        """Materialise the stored document as a :class:`Tree`."""
        return Tree.from_postorder(self.postorder_pairs(doc_id))

    def subtree_of(self, doc_id: int, end_pos: int) -> Optional[Tree]:
        """Fetch the subtree whose root closes at ``end_pos``.

        Demonstrates interval containment: the subtree's nodes are the
        rows with ``start_pos`` between the root's start and end.
        """
        pairs = self.subtree_pairs_of(doc_id, end_pos)
        if pairs is None:
            return None
        return Tree.from_postorder(pairs)

    def subtree_pairs_of(
        self, doc_id: int, end_pos: int, start_pos: Optional[int] = None
    ) -> Optional[List[Tuple[object, int]]]:
        """The subtree closing at ``end_pos`` as postorder (label, size).

        The raw-pairs form of :meth:`subtree_of`, for callers (the
        indexed engine's grafted batch scorer) that splice many
        subtrees into one tree and have no use for per-subtree
        :class:`Tree` objects.  A caller that already knows the subtree
        size can pass ``start_pos = end_pos - 2 * size + 1`` (the
        interval encoding inverted) to skip the root-row lookup; a
        wrong hint returns the empty list rather than None.
        """
        if start_pos is None:
            row = self._conn.execute(
                "SELECT start_pos FROM node "
                "WHERE doc_id = ? AND end_pos = ?",
                (doc_id, end_pos),
            ).fetchone()
            if row is None:
                return None
            start = int(row[0])
        else:
            start = start_pos
        # Tag sequences are balanced, so every position strictly inside
        # the root's interval belongs to a descendant: selecting on
        # end_pos alone keeps this an O(|subtree|) walk of the
        # (doc_id, end_pos) primary key instead of an O(|T|) scan.
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2 FROM node "
            "WHERE doc_id = ? AND end_pos > ? AND end_pos <= ? "
            "ORDER BY end_pos",
            (doc_id, start, end_pos),
        )
        return [(label, int(size)) for label, size in cur]

    # ------------------------------------------------------------------
    # Candidate index (schema v2, see repro.index)
    # ------------------------------------------------------------------
    def schema_version(self) -> int:
        """The schema version of the underlying file (1 for pre-index)."""
        return self._stored_version(self._conn)

    def has_index(self, doc_id: int) -> bool:
        """Whether ``doc_id`` has candidate-index rows.

        Version-1 files (no candidate table at all) simply report
        false — they are valid stores, just not indexed yet.
        """
        try:
            row = self._conn.execute(
                "SELECT EXISTS(SELECT 1 FROM candidate WHERE doc_id = ?)",
                (doc_id,),
            ).fetchone()
        except sqlite3.OperationalError:
            return False
        return bool(row[0])

    def ensure_index(self, doc_id: int) -> int:
        """Backfill the candidate index for ``doc_id`` if missing.

        Returns the number of rows written (0 when the index already
        exists).  Requires a read-write store; backfilling through
        :meth:`open_readonly` raises
        :class:`~repro.errors.PostorderQueueError`.
        """
        self.n_nodes(doc_id)  # validates the document exists
        if self.has_index(doc_id):
            return 0
        cur = self._conn.execute(
            "SELECT label, (end_pos - start_pos + 1) / 2, end_pos "
            "FROM node WHERE doc_id = ? ORDER BY end_pos",
            (doc_id,),
        )
        rows = [(str(label), int(size), int(end)) for label, size, end in cur]
        try:
            written = self._insert_candidates(self._conn.cursor(), doc_id, rows)
            self._conn.commit()
        except sqlite3.OperationalError as exc:
            raise PostorderQueueError(
                f"cannot backfill candidate index for doc {doc_id}: {exc} "
                "(is the store open read-only?)"
            ) from None
        return written

    def candidate_rows(
        self,
        doc_id: int,
        size_lo: int,
        size_hi: int,
        after_pos: int = 0,
        limit: Optional[int] = None,
        exclude: Optional[Sequence[bytes]] = None,
        exclude_hashes: Optional[Sequence[bytes]] = None,
    ) -> Iterator[Tuple[int, int, int, bytes, bytes]]:
        """Stream candidate rows with ``size_lo <= size <= size_hi``.

        Yields ``(pos, end_pos, size, struct_hash, signature)`` ordered
        by postorder position — the offer order the streaming engine
        uses, which the indexed engine must replay for byte-identical
        rankings.  ``after_pos``/``limit`` resume a banded scan:
        out-of-band rows are filtered inside SQLite's primary-key walk
        and never materialise as Python tuples.  ``exclude`` drops rows
        carrying the given signature blobs the same way — the indexed
        engine passes signatures it has already proven rejectable for
        every query (a signature blob determines the subtree size, so
        this is a single-column ``NOT IN``, which SQLite answers from
        an ephemeral index instead of scanning the value list per row).
        ``exclude_hashes`` does the same for structure hashes — shapes
        whose exact distance is already known to tie or exceed every
        query's worst distance.

        Returns the raw cursor (INTEGER/BLOB columns already arrive as
        ``int``/``bytes``): iteration stays at C speed instead of
        paying a generator frame switch per row on a 100k-row scan.
        """
        sql = (
            "SELECT pos, end_pos, size, struct_hash, signature "
            "FROM candidate WHERE doc_id = ? AND pos > ? "
            "AND size BETWEEN ? AND ?"
        )
        params: Tuple[Any, ...] = (doc_id, after_pos, size_lo, size_hi)
        if exclude:
            sql += " AND signature NOT IN ({})".format(
                ", ".join(["?"] * len(exclude))
            )
            params = params + tuple(exclude)
        if exclude_hashes:
            sql += " AND struct_hash NOT IN ({})".format(
                ", ".join(["?"] * len(exclude_hashes))
            )
            params = params + tuple(exclude_hashes)
        sql += " ORDER BY pos"
        if limit is not None:
            sql += " LIMIT ?"
            params = params + (limit,)
        try:
            return self._conn.execute(sql, params)
        except sqlite3.OperationalError as exc:
            raise PostorderQueueError(
                f"cannot read candidate index for doc {doc_id}: {exc} "
                "(run `repro index` to backfill pre-index stores)"
            ) from None
