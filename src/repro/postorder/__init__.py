"""Postorder queues and storage backends (paper Sections IV-B, VII).

* :class:`~repro.postorder.queue.PostorderQueue` — the single-pass
  ``(label, size)`` stream TASM-postorder consumes.
* :class:`~repro.postorder.interval.IntervalStore` — interval-encoded
  relational XML store whose postorder scan is one SQL query.
"""

from .interval import IntervalStore
from .queue import Pair, PostorderQueue, PostorderSource

__all__ = ["Pair", "PostorderQueue", "PostorderSource", "IntervalStore"]
