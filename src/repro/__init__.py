"""Reproduction of *TASM: Top-k Approximate Subtree Matching*
(Augsten, Barbosa, Böhlen, Palpanas — ICDE 2010).

Layer map:

* :mod:`repro.trees`     — ordered labeled trees (postorder arrays).
* :mod:`repro.postorder` — postorder queues + interval-encoded store.
* :mod:`repro.xmlio`     — XML <-> tree conversion, streaming parse.
* :mod:`repro.documents` — the :class:`Document` contract every
  workload satisfies, plus format autodetection.
* :mod:`repro.frontends` — JSON / HTML / Python-AST workloads
  (streaming parsers + per-workload cost models).
* :mod:`repro.distance`  — cost models + the Zhang–Shasha tree edit
  distance kernel (:class:`PrefixDistanceKernel`, :func:`ted`,
  :func:`prefix_distance`).
* :mod:`repro.tasm`      — the matching engine: :func:`tasm_dynamic`
  (Algorithm 1), :func:`tasm_postorder` (Algorithms 2/3), and
  :func:`tasm_batch` (many queries, one document pass).
* :mod:`repro.datasets`  — streaming XMark/DBLP/PSD-lookalike corpus
  generators for document-scale experiments.
* :mod:`repro.parallel`  — sharded parallel TASM: safe-cut planning,
  worker pool, exact-merge.
* :mod:`repro.serve`     — the asyncio HTTP serving layer: registered
  queries with warm kernels, document catalog, result cache, metrics
  (imported on demand; ``repro serve`` on the command line).
* :mod:`repro.analysis`  — the invariant linter: AST rules that
  mechanically enforce the documented contracts (streaming memory,
  picklability, lock discipline, wire determinism; ``repro lint``).

Quickstart::

    from repro import Tree, tasm_postorder
    query = Tree.from_bracket("{article{title}{year}}")
    doc = Tree.from_bracket("{dblp{article{title}{year}}{book{title}}}")
    for match in tasm_postorder(query, doc, k=2):
        print(match.distance, match.subtree.to_bracket())
"""

from .distance import (
    PrefixDistanceKernel,
    UnitCostModel,
    WeightedCostModel,
    prefix_distance,
    ted,
)
from .documents import (
    AstDocument,
    Document,
    HtmlDocument,
    JsonDocument,
    StoreDocument,
    XmlDocument,
    document_for,
)
from .errors import (
    BracketSyntaxError,
    CostModelError,
    DatasetError,
    DocumentFormatError,
    PostorderQueueError,
    RankingError,
    ReproError,
    ServeError,
    TreeStructureError,
    XmlFormatError,
)
from .postorder import IntervalStore, PostorderQueue
from .tasm import (
    Match,
    PostorderStats,
    TasmOptions,
    TopKHeap,
    prune_threshold,
    tasm_batch,
    tasm_dynamic,
    tasm_postorder,
)
from .trees import Node, Tree

__version__ = "0.10.0"

__all__ = [
    "__version__",
    "Node",
    "Tree",
    "PostorderQueue",
    "IntervalStore",
    "Document",
    "StoreDocument",
    "XmlDocument",
    "JsonDocument",
    "HtmlDocument",
    "AstDocument",
    "document_for",
    "UnitCostModel",
    "WeightedCostModel",
    "PrefixDistanceKernel",
    "ted",
    "prefix_distance",
    "Match",
    "TasmOptions",
    "TopKHeap",
    "PostorderStats",
    "prune_threshold",
    "tasm_batch",
    "tasm_dynamic",
    "tasm_postorder",
    "ReproError",
    "TreeStructureError",
    "BracketSyntaxError",
    "PostorderQueueError",
    "XmlFormatError",
    "DocumentFormatError",
    "CostModelError",
    "RankingError",
    "DatasetError",
    "ServeError",
]
