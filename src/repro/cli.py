"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Three subcommands mirror the library's entry points:

* ``repro ted A B`` — tree edit distance between two trees,
* ``repro tasm QUERY DOCUMENT -k K`` — top-k approximate subtree
  matching, streaming the document when it is an XML file; with
  ``--query-file`` a whole workload of queries is ranked in one
  document pass (:func:`repro.tasm.tasm_batch`),
* ``repro dataset NAME OUT`` — generate an XMark/DBLP/PSD-lookalike
  document (:mod:`repro.datasets`) for benchmarks and experiments.

Tree arguments are bracket notation (``{a{b}{c}}``) given inline, or a
path to a ``.xml`` / ``.bracket`` file; ``--format`` overrides the
autodetection.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .distance import UnitCostModel, WeightedCostModel, ted
from .errors import CostModelError, ReproError
from .postorder.queue import PostorderQueue
from .tasm import PostorderStats, tasm_batch, tasm_dynamic
from .trees.tree import Tree

__all__ = ["main"]


def _detect_format(arg: str, forced: str) -> str:
    if forced != "auto":
        return forced
    if arg.lstrip().startswith("{"):
        return "bracket"
    if arg.lower().endswith(".xml"):
        return "xml"
    return "bracket-file"


def _load_tree(arg: str, forced: str) -> Tree:
    fmt = _detect_format(arg, forced)
    if fmt == "bracket":
        return Tree.from_bracket(arg)
    if fmt == "xml":
        from .xmlio.parse import tree_from_xml_file

        return tree_from_xml_file(arg)
    with open(arg, "r", encoding="utf-8") as fh:
        return Tree.from_bracket(fh.read())


def _document_queue(arg: str, forced: str) -> PostorderQueue:
    """Document as a postorder queue, streaming XML files."""
    fmt = _detect_format(arg, forced)
    if fmt == "xml":
        return PostorderQueue.from_xml_file(arg)
    return PostorderQueue.from_tree(_load_tree(arg, forced))


def _cost_model(spec: str):
    if spec == "unit":
        return UnitCostModel()
    try:
        rename, delete, insert = (float(part) for part in spec.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cost must be 'unit' or 'REN,DEL,INS', got {spec!r}"
        )
    try:
        return WeightedCostModel(rename, delete, insert)
    except CostModelError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TASM: top-k approximate subtree matching (ICDE 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ted_p = sub.add_parser("ted", help="tree edit distance of two trees")
    ted_p.add_argument("tree1", help="bracket string or file path")
    ted_p.add_argument("tree2", help="bracket string or file path")

    tasm_p = sub.add_parser("tasm", help="top-k approximate subtree matching")
    tasm_p.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query tree (bracket string or file); omit with --query-file",
    )
    tasm_p.add_argument("document", help="document tree (bracket string or file)")
    tasm_p.add_argument(
        "--query-file",
        default=None,
        metavar="FILE",
        help="rank every query in FILE (one bracket tree per line, "
        "#-comments allowed) in a single document pass",
    )
    tasm_p.add_argument("-k", type=int, default=5, help="ranking size (default 5)")
    tasm_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="rank the document in N parallel shard processes, split at "
        "safe postorder cuts; the ranking is identical to the "
        "single-pass one (postorder algorithm only, default 1)",
    )
    tasm_p.add_argument(
        "--algorithm",
        choices=["postorder", "dynamic"],
        default="postorder",
        help="TASM variant (default: postorder, the streaming algorithm)",
    )
    tasm_p.add_argument(
        "--json", action="store_true", help="emit the ranking as JSON"
    )
    tasm_p.add_argument(
        "--stats", action="store_true", help="print run statistics to stderr"
    )

    for p in (ted_p, tasm_p):
        p.add_argument(
            "--format",
            choices=["auto", "bracket", "bracket-file", "xml"],
            default="auto",
            help="input format (default: autodetect)",
        )
        p.add_argument(
            "--cost",
            type=_cost_model,
            default=UnitCostModel(),
            metavar="unit|REN,DEL,INS",
            help="cost model (default: unit)",
        )

    dataset_p = sub.add_parser(
        "dataset", help="generate a synthetic XMark/DBLP/PSD-lookalike corpus"
    )
    dataset_p.add_argument(
        "name", choices=["xmark", "dblp", "psd"], help="corpus family"
    )
    dataset_p.add_argument("out", help="output XML path")
    dataset_p.add_argument(
        "--nodes", type=int, default=100_000, help="target node count (default 100000)"
    )
    dataset_p.add_argument("--seed", type=int, default=0, help="random seed")
    return parser


def _run_ted(args: argparse.Namespace) -> int:
    t1 = _load_tree(args.tree1, args.format)
    t2 = _load_tree(args.tree2, args.format)
    distance = ted(t1, t2, args.cost)
    print(int(distance) if distance == int(distance) else distance)
    return 0


def _load_query_file(path: str) -> List[Tree]:
    """Parse a query workload file: one bracket tree per line."""
    queries: List[Tree] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            queries.append(Tree.from_bracket(line))
    if not queries:
        raise ReproError(f"no queries found in {path}")
    return queries


def _ranking_payload(matches) -> List[dict]:
    return [
        {
            "rank": rank,
            "distance": m.distance,
            "root": m.root,
            "subtree": m.subtree.to_bracket(),
        }
        for rank, m in enumerate(matches, 1)
    ]


def _run_tasm(args: argparse.Namespace) -> int:
    if args.query_file is not None:
        if args.query is not None:
            raise ReproError("give either QUERY or --query-file, not both")
        queries = _load_query_file(args.query_file)
    elif args.query is not None:
        queries = [_load_tree(args.query, args.format)]
    else:
        raise ReproError("a QUERY argument or --query-file is required")
    batch = args.query_file is not None
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    if args.algorithm == "dynamic":
        if args.workers > 1:
            raise ReproError("--workers requires --algorithm postorder")
        document = _load_tree(args.document, args.format)
        rankings = [
            tasm_dynamic(query, document, args.k, args.cost) for query in queries
        ]
        stats = None
    else:
        stats = PostorderStats()
        if args.workers > 1 and _detect_format(args.document, args.format) == "xml":
            # Shard the file itself: planning and every worker stream
            # their own parse, so no process materialises the document
            # (the same reason the single-pass run streams it).
            from .parallel import XmlDocument

            source = XmlDocument(args.document)
        else:
            source = _document_queue(args.document, args.format)
        rankings = tasm_batch(
            queries, source, args.k, args.cost, stats=stats, workers=args.workers
        )
    if args.json:
        if batch:
            payload = [
                {"query": qi, "matches": _ranking_payload(matches)}
                for qi, matches in enumerate(rankings, 1)
            ]
        else:
            payload = _ranking_payload(rankings[0])
        print(json.dumps(payload, indent=2))
    else:
        for qi, matches in enumerate(rankings, 1):
            prefix = f"q{qi}\t" if batch else ""
            for rank, m in enumerate(matches, 1):
                print(
                    f"{prefix}{rank}\t{m.distance:g}\t@{m.root}\t"
                    f"{m.subtree.to_bracket()}"
                )
    if args.stats:
        if stats is None:
            print(
                "repro: note: --stats only applies to --algorithm postorder",
                file=sys.stderr,
            )
        else:
            print(
                f"dequeued={stats.dequeued} peak_buffered={stats.peak_buffered} "
                f"ring_capacity={stats.ring_capacity} "
                f"candidates={stats.candidates_evaluated} "
                f"scored={stats.subtrees_scored}",
                file=sys.stderr,
            )
    return 0


def _run_dataset(args: argparse.Namespace) -> int:
    from .datasets import generate

    nodes = generate(args.name, args.out, target_nodes=args.nodes, seed=args.seed)
    print(f"wrote {args.out}: {nodes} nodes ({args.name}, seed {args.seed})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "ted":
            return _run_ted(args)
        if args.command == "dataset":
            return _run_dataset(args)
        return _run_tasm(args)
    except (ReproError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
