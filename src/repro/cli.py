"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Five subcommands mirror the library's entry points:

* ``repro ted A B`` — tree edit distance between two trees,
* ``repro tasm QUERY DOCUMENT -k K`` — top-k approximate subtree
  matching, streaming the document when it is an XML file or an
  :class:`~repro.postorder.interval.IntervalStore` database; with
  ``--query-file`` a whole workload of queries is ranked in one
  document pass (:func:`repro.tasm.tasm_batch`),
* ``repro dataset NAME OUT`` — generate an XMark/DBLP/PSD-lookalike
  document (:mod:`repro.datasets`) for benchmarks and experiments,
* ``repro ingest SOURCE STORE`` — parse any workload source into an
  IntervalStore document (candidate index built at ingest),
* ``repro index STORE`` — backfill the candidate index
  (:mod:`repro.index`) for documents stored before schema v2,
* ``repro serve`` — run the long-lived TASM HTTP service
  (:mod:`repro.serve`) over a store file and/or file documents,
* ``repro lint`` — run the project's invariant linter
  (:mod:`repro.analysis`) over source trees (the installed package by
  default).

Tree arguments are bracket notation (``{a{b}{c}}``) given inline, or a
path to a ``.xml`` / ``.json`` / ``.html`` / ``.py`` / ``.bracket`` /
``.db`` file or a Python package directory (:mod:`repro.documents`
workload frontends); ``--format`` overrides the autodetection, and
unknown extensions are refused rather than guessed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

from .distance import UnitCostModel, WeightedCostModel, ted
from .errors import CostModelError, DocumentFormatError, ReproError
from .postorder.queue import PostorderQueue
from .tasm import PostorderStats, TasmOptions, tasm_batch, tasm_dynamic
from .trees.tree import Tree

__all__ = ["main"]

_STORE_SUFFIXES = (".db", ".sqlite", ".sqlite3")
_BRACKET_SUFFIXES = (".bracket", ".txt")
#: Extensions owned by the workload frontends (repro.documents).
_FRONTEND_EXTENSIONS = {
    ".xml": "xml",
    ".json": "json",
    ".html": "html",
    ".htm": "html",
    ".py": "ast",
}
_FRONTEND_FORMATS = ("xml", "json", "html", "ast")


def _detect_format(arg: str, forced: str) -> str:
    # Unambiguous args win even over --format: an inline '{...}' string
    # is never a file path and a .db/.sqlite file is never a frontend
    # document, so a tasm invocation mixing an inline bracket query (or
    # a store document) with a --format'ed file stays well-formed.
    if arg.lstrip().startswith("{"):
        return "bracket"
    lower = arg.lower()
    if lower.endswith(_STORE_SUFFIXES):
        return "store"
    if forced != "auto":
        return forced
    if os.path.isdir(arg):
        return "ast"
    ext = os.path.splitext(lower)[1]
    if ext in _FRONTEND_EXTENSIONS:
        return _FRONTEND_EXTENSIONS[ext]
    if lower.endswith(_BRACKET_SUFFIXES):
        return "bracket-file"
    # Four workloads are in play now — guessing the wrong parser would
    # die with that parser's confusing syntax error, so refuse with the
    # full menu instead.
    raise DocumentFormatError(
        f"cannot detect a format for {arg!r}: expected an inline "
        "'{...}' bracket tree, a .bracket/.txt bracket file, a .xml/"
        ".json/.html/.htm/.py document, a Python package directory, or "
        "a .db/.sqlite store; use --format to override"
    )


def _load_tree(arg: str, forced: str) -> Tree:
    fmt = _detect_format(arg, forced)
    if fmt == "bracket":
        return Tree.from_bracket(arg)
    if fmt in _FRONTEND_FORMATS:
        from .documents import document_for

        return Tree.from_postorder(document_for(arg, fmt).postorder())
    if fmt == "store":
        raise ReproError(
            f"{arg!r} is an IntervalStore file; store documents are "
            "supported as tasm DOCUMENT arguments, not as tree arguments"
        )
    with open(arg, "r", encoding="utf-8") as fh:
        return Tree.from_bracket(fh.read())


def _store_document(path: str, doc_name: Optional[str]):
    """Resolve a store file + optional name to a CatalogDocument.

    Delegates to :class:`repro.serve.catalog.DocumentCatalog`, which
    also wraps non-store/corrupt files in a clean
    :class:`~repro.errors.ServeError` instead of a sqlite traceback.
    """
    from .serve.catalog import DocumentCatalog

    catalog = DocumentCatalog(path)
    if doc_name is None:
        names = catalog.names()
        if len(names) > 1:
            raise ReproError(
                f"store {path!r} holds {len(names)} documents "
                f"({', '.join(names)}); pick one with --doc-name"
            )
        return catalog.get(names[0])
    return catalog.get(doc_name)


def _load_store_tree(path: str, doc_name: Optional[str]) -> Tree:
    """Materialise a store document (the --algorithm dynamic path)."""
    from .postorder.interval import IntervalStore

    doc = _store_document(path, doc_name)
    store = IntervalStore.open_readonly(path)
    try:
        return store.load_tree(doc.doc_id)
    finally:
        store.close()


def _document_source(arg: str, forced: str, doc_name: Optional[str] = None):
    """Document argument as a TASM source.

    Frontend formats (xml/json/html/ast) become streaming
    :class:`~repro.documents.Document` values, stores become
    :class:`~repro.documents.StoreDocument` references (so the engine
    router can find the candidate index), and bracket inputs become
    in-memory postorder queues.
    """
    fmt = _detect_format(arg, forced)
    if fmt in _FRONTEND_FORMATS:
        from .documents import document_for

        return document_for(arg, fmt)
    if fmt == "store":
        return _store_document(arg, doc_name).shard_source()
    return PostorderQueue.from_tree(_load_tree(arg, forced))


def _weighted_spec(spec: str, prefix: str, factory):
    """Parse ``NAME`` / ``NAME:WEIGHT`` cost specs (e.g. json-keys:3)."""
    _, sep, weight = spec.partition(":")
    try:
        return factory(float(weight)) if sep else factory()
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cost {spec!r}: expected {prefix} or {prefix}:WEIGHT "
            f"with a numeric WEIGHT"
        ) from None
    except CostModelError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _cost_model(spec: str):
    if spec == "unit":
        return UnitCostModel()
    if spec == "json-keys" or spec.startswith("json-keys:"):
        from .frontends.jsonio import KeyWeightedCostModel

        return _weighted_spec(spec, "json-keys", KeyWeightedCostModel)
    if spec == "html-tags" or spec.startswith("html-tags:"):
        from .frontends.htmlio import TagClassWeightedCostModel

        return _weighted_spec(spec, "html-tags", TagClassWeightedCostModel)
    try:
        rename, delete, insert = (float(part) for part in spec.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"cost must be 'unit', 'json-keys[:W]', 'html-tags[:W]', "
            f"or 'REN,DEL,INS', got {spec!r}"
        ) from None
    try:
        return WeightedCostModel(rename, delete, insert)
    except CostModelError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TASM: top-k approximate subtree matching (ICDE 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ted_p = sub.add_parser("ted", help="tree edit distance of two trees")
    ted_p.add_argument("tree1", help="bracket string or file path")
    ted_p.add_argument("tree2", help="bracket string or file path")

    tasm_p = sub.add_parser("tasm", help="top-k approximate subtree matching")
    tasm_p.add_argument(
        "query",
        nargs="?",
        default=None,
        help="query tree (bracket string or file); omit with --query-file",
    )
    tasm_p.add_argument("document", help="document tree (bracket string or file)")
    tasm_p.add_argument(
        "--query-file",
        default=None,
        metavar="FILE",
        help="rank every query in FILE (one bracket tree per line, "
        "#-comments allowed) in a single document pass",
    )
    tasm_p.add_argument("-k", type=int, default=5, help="ranking size (default 5)")
    tasm_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="rank the document in N parallel shard processes, split at "
        "safe postorder cuts; the ranking is identical to the "
        "single-pass one (postorder algorithm only, default 1)",
    )
    tasm_p.add_argument(
        "--algorithm",
        choices=["postorder", "dynamic"],
        default="postorder",
        help="TASM variant (default: postorder, the streaming algorithm)",
    )
    tasm_p.add_argument(
        "--json", action="store_true", help="emit the ranking as JSON"
    )
    tasm_p.add_argument(
        "--stats", action="store_true", help="print run statistics to stderr"
    )
    tasm_p.add_argument(
        "--profile",
        action="store_true",
        help="print a per-stage profile (scan / candidate-eval / kernel "
        "seconds, pruning breakdown, ring occupancy) and the span tree "
        "to stderr (postorder algorithm only)",
    )
    tasm_p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="print run statistics plus which execution path ran "
        "(stream vs sharded, shard count) to stderr",
    )
    tasm_p.add_argument(
        "--doc-name",
        default=None,
        metavar="NAME",
        help="document name inside an IntervalStore .db file (default: "
        "the store's only document)",
    )
    tasm_p.add_argument(
        "--engine",
        choices=["auto", "stream", "indexed"],
        default="auto",
        help="ranking engine for IntervalStore documents: 'indexed' "
        "serves from the candidate index (byte-identical ranking, no "
        "full scan; requires an indexed store — see `repro index`), "
        "'stream' forces the scanning pass, 'auto' uses the index "
        "when present (postorder algorithm only, default auto)",
    )

    for p in (ted_p, tasm_p):
        p.add_argument(
            "--format",
            choices=[
                "auto",
                "bracket",
                "bracket-file",
                "xml",
                "json",
                "html",
                "ast",
                "store",
            ],
            default="auto",
            help="input format (default: autodetect from the extension; "
            "'ast' parses a .py file or package directory; inline "
            "'{...}' trees and .db/.sqlite IntervalStore files are "
            "recognised as such even under --format)",
        )
        p.add_argument(
            "--cost",
            type=_cost_model,
            default=UnitCostModel(),
            metavar="unit|json-keys[:W]|html-tags[:W]|REN,DEL,INS",
            help="cost model (default: unit; json-keys weights JSON "
            "object keys, html-tags weights structural HTML tags)",
        )
        p.add_argument(
            "--backend",
            choices=["auto", "python", "numpy"],
            default="auto",
            help="distance-kernel row engine (default: auto — numpy when "
            "installed, pure Python otherwise)",
        )

    dataset_p = sub.add_parser(
        "dataset",
        help="generate a synthetic lookalike corpus (XML: xmark/dblp/psd; "
        "JSON: apilog; HTML: htmlcat; Python package: pypkg)",
    )
    dataset_p.add_argument(
        "name",
        choices=["xmark", "dblp", "psd", "apilog", "htmlcat", "pypkg"],
        help="corpus family",
    )
    dataset_p.add_argument(
        "out", help="output path (a directory for pypkg, a file otherwise)"
    )
    dataset_p.add_argument(
        "--nodes", type=int, default=100_000, help="target node count (default 100000)"
    )
    dataset_p.add_argument("--seed", type=int, default=0, help="random seed")

    ingest_p = sub.add_parser(
        "ingest",
        help="parse a document into an IntervalStore (indexed at ingest)",
    )
    ingest_p.add_argument(
        "source",
        help="document to ingest: .xml/.json/.html/.py file, Python "
        "package directory, or bracket file",
    )
    ingest_p.add_argument(
        "store", help="IntervalStore database path (created if missing)"
    )
    ingest_p.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="document name inside the store (default: source basename)",
    )
    ingest_p.add_argument(
        "--format",
        choices=["auto", "bracket", "bracket-file", "xml", "json", "html", "ast"],
        default="auto",
        help="source format (default: autodetect from the extension)",
    )

    index_p = sub.add_parser(
        "index",
        help="backfill the candidate index of an IntervalStore file",
    )
    index_p.add_argument("store", help="IntervalStore database path")
    index_p.add_argument(
        "--doc-name",
        default=None,
        metavar="NAME",
        help="only index this document (default: every document)",
    )

    serve_p = sub.add_parser(
        "serve", help="run the TASM HTTP service (repro.serve)"
    )
    serve_p.add_argument(
        "--store",
        default=None,
        metavar="FILE",
        help="IntervalStore database whose documents become servable",
    )
    serve_p.add_argument(
        "--xml",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="register an XML document under NAME (repeatable)",
    )
    serve_p.add_argument(
        "--query",
        action="append",
        default=[],
        metavar="NAME=BRACKET",
        help="pre-register a query (repeatable; more can be PUT later)",
    )
    serve_p.add_argument(
        "--default-queries",
        action="store_true",
        help="pre-register the repro.datasets default corpus queries",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=8077,
        help="listening port (default 8077; 0 picks a free one)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="persistent shard-pool processes for large documents "
        "(default 1: everything runs in-process)",
    )
    serve_p.add_argument(
        "--shard-threshold",
        type=int,
        default=50_000,
        metavar="NODES",
        help="document size at which requests route to the shard pool "
        "(default 50000)",
    )
    serve_p.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="LRU result-cache entries (default 256; 0 disables)",
    )
    serve_p.add_argument(
        "--request-threads",
        type=int,
        default=8,
        metavar="N",
        help="concurrent blocking rankings (default 8)",
    )
    serve_p.add_argument(
        "--max-k",
        type=int,
        default=10_000,
        metavar="N",
        help="per-request k ceiling (default 10000; the ring buffer is "
        "preallocated at k + 2|Q| - 1 slots)",
    )
    serve_p.add_argument(
        "--backend",
        choices=["auto", "python", "numpy"],
        default="auto",
        help="distance-kernel row engine for every served query "
        "(default: auto; 'numpy' fails at startup if numpy is missing; "
        "reported in /healthz and /metrics)",
    )
    serve_p.add_argument(
        "--engine",
        choices=["auto", "stream", "indexed"],
        default="auto",
        help="ranking engine for store documents (default: auto — use "
        "the candidate index when a document has one; 'indexed' "
        "rejects requests for unindexed documents; reported in "
        "/healthz)",
    )
    serve_p.add_argument(
        "--coalesce-window-ms",
        type=float,
        default=5.0,
        metavar="MS",
        help="how long the first cache-missing request for a document "
        "waits for more queries to share its scan (default 5.0; 0 "
        "still single-flights identical requests and merges whatever "
        "is already pending)",
    )
    serve_p.add_argument(
        "--max-batch-queries",
        type=int,
        default=32,
        metavar="N",
        help="queries per shared engine pass; larger coalesced batches "
        "run as multiple passes (default 32)",
    )
    serve_p.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log the full resolved server config (including the "
        "coalescing window and batch limit) at startup",
    )
    serve_p.add_argument(
        "--slow-request-seconds",
        type=float,
        default=1.0,
        metavar="S",
        help="requests slower than S seconds emit one structured JSON "
        "log line with the per-stage breakdown (default 1.0; a "
        "negative value disables slow-request logging)",
    )
    serve_p.add_argument(
        "--no-trace",
        action="store_true",
        help="disable per-request span collection (stage breakdowns "
        "vanish from slow-request logs; shaves the last slivers of "
        "per-request overhead)",
    )

    lint_p = sub.add_parser(
        "lint", help="run the project's invariant linter (repro.analysis)"
    )
    lint_p.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyse "
        "(default: the installed repro package)",
    )
    lint_p.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable JSON report instead of text",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule id (repeatable; default: every rule)",
    )
    lint_p.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rule ids with their rationale and exit",
    )
    return parser


def _run_ted(args: argparse.Namespace) -> int:
    t1 = _load_tree(args.tree1, args.format)
    t2 = _load_tree(args.tree2, args.format)
    distance = ted(t1, t2, args.cost, args.backend)
    print(int(distance) if distance == int(distance) else distance)
    return 0


def _load_query_file(path: str) -> List[Tree]:
    """Parse a query workload file: one bracket tree per line."""
    queries: List[Tree] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            queries.append(Tree.from_bracket(line))
    if not queries:
        raise ReproError(f"no queries found in {path}")
    return queries


def _ranking_payload(matches) -> List[dict]:
    from .serve.wire import ranking_payload

    return ranking_payload(matches)


def _run_tasm(args: argparse.Namespace) -> int:
    if args.query_file is not None:
        if args.query is not None:
            raise ReproError("give either QUERY or --query-file, not both")
        queries = _load_query_file(args.query_file)
    elif args.query is not None:
        queries = [_load_tree(args.query, args.format)]
    else:
        raise ReproError("a QUERY argument or --query-file is required")
    batch = args.query_file is not None
    show_stats = args.stats or args.verbose
    if args.workers < 1:
        raise ReproError(f"--workers must be >= 1, got {args.workers}")
    # Resolve up front: --backend numpy without numpy dies here with a
    # clean error instead of mid-stream, and --verbose reports the
    # engine that actually ran.
    from .distance import resolve_backend

    backend = resolve_backend(args.backend)
    doc_fmt = _detect_format(args.document, args.format)
    sharded_stats = None
    span = None
    if args.profile and args.algorithm == "postorder":
        from .obs.trace import Span

        span = Span("tasm", {"k": args.k, "workers": args.workers})
    if args.algorithm == "dynamic":
        if args.workers > 1:
            raise ReproError("--workers requires --algorithm postorder")
        if args.engine != "auto":
            raise ReproError("--engine requires --algorithm postorder")
        if doc_fmt == "store":
            document = _load_store_tree(args.document, args.doc_name)
        else:
            document = _load_tree(args.document, args.format)
        rankings = [
            tasm_dynamic(query, document, args.k, args.cost, backend)
            for query in queries
        ]
        stats = None
    elif args.engine == "indexed":
        # A single SQL-backed pass over the candidate table; there is
        # no scan to shard, so --workers is meaningless here.
        if args.workers > 1:
            raise ReproError("--engine indexed is a single pass; drop --workers")
        if doc_fmt != "store":
            raise ReproError(
                "--engine indexed requires an IntervalStore document "
                "(.db file); the candidate index lives in the store"
            )
        stats = PostorderStats()
        source = _store_document(args.document, args.doc_name).shard_source()
        rankings = tasm_batch(
            queries,
            source,
            args.k,
            args.cost,
            TasmOptions(stats=stats, backend=backend, span=span, engine="indexed"),
        )
    elif args.workers > 1:
        # Shard file-backed documents in place: planning and every
        # worker stream their own scan, so no process materialises the
        # document (the same reason the single-pass run streams it).
        from .parallel import ShardedStats, tasm_sharded_batch

        source = _document_source(args.document, args.format, args.doc_name)
        sharded_stats = ShardedStats()
        rankings = tasm_sharded_batch(
            queries,
            source,
            args.k,
            args.cost,
            TasmOptions(
                workers=args.workers,
                stats=sharded_stats,
                backend=backend,
                span=span,
            ),
        )
        stats = sharded_stats
        if sharded_stats.n_shards < args.workers:
            if sharded_stats.n_shards == 1:
                print(
                    f"repro: warning: the shard planner found no safe cut; "
                    f"the document ran as a single pass "
                    f"(--workers {args.workers} had no effect)",
                    file=sys.stderr,
                )
            else:
                print(
                    f"repro: warning: only {sharded_stats.n_shards} safe "
                    f"shards found for --workers {args.workers}; some "
                    f"workers stayed idle",
                    file=sys.stderr,
                )
    else:
        stats = PostorderStats()
        # Stores pass as references, not queues: the engine router
        # needs the file to find the candidate index ("auto" streams
        # when the document has none).
        source = _document_source(args.document, args.format, args.doc_name)
        rankings = tasm_batch(
            queries,
            source,
            args.k,
            args.cost,
            TasmOptions(
                stats=stats, backend=backend, span=span, engine=args.engine
            ),
        )
    if args.json:
        if batch:
            payload = [
                {"query": qi, "matches": _ranking_payload(matches)}
                for qi, matches in enumerate(rankings, 1)
            ]
        else:
            payload = _ranking_payload(rankings[0])
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for qi, matches in enumerate(rankings, 1):
            prefix = f"q{qi}\t" if batch else ""
            for rank, m in enumerate(matches, 1):
                print(
                    f"{prefix}{rank}\t{m.distance:g}\t@{m.root}\t"
                    f"{m.subtree.to_bracket()}"
                )
    if show_stats:
        if stats is None:
            if args.stats:
                print(
                    "repro: note: --stats only applies to --algorithm "
                    "postorder",
                    file=sys.stderr,
                )
        else:
            # ShardedStats mirrors the PostorderStats field names
            # (aggregated over shards), so one format covers both paths.
            print(
                f"dequeued={stats.dequeued} peak_buffered={stats.peak_buffered} "
                f"ring_capacity={stats.ring_capacity} "
                f"candidates={stats.candidates_evaluated} "
                f"scored={stats.subtrees_scored}",
                file=sys.stderr,
            )
    if args.verbose:
        if sharded_stats is not None:
            print(
                f"engine=sharded shards={sharded_stats.n_shards} "
                f"workers={sharded_stats.workers} backend={backend}",
                file=sys.stderr,
            )
        else:
            engine_label = args.algorithm
            if stats is not None and stats.index_candidates > 0:
                engine_label = "indexed"
            print(f"engine={engine_label} backend={backend}", file=sys.stderr)
    if args.profile:
        if stats is None:
            print(
                "repro: note: --profile only applies to --algorithm "
                "postorder",
                file=sys.stderr,
            )
        else:
            if span is not None:
                span.finish()
            _print_profile(stats, span)
    return 0


def _print_profile(stats, span) -> None:
    """The ``--profile`` report: per-stage seconds, engine counters,
    and the span tree — the CLI face of the same payload ``/metrics``
    serves (stderr, so ``--json`` output stays clean)."""
    from .obs.trace import render_span_tree

    payload = stats.payload()
    stages = payload["stage_seconds"]
    out = sys.stderr
    print("profile: stage seconds", file=out)
    for key in ("total", "scan", "candidate_eval", "kernel"):
        print(f"  {key:<15}{stages[key]:>12.6f}s", file=out)
    sharded = payload.get("sharded")
    if sharded:
        print(
            "profile: coordinator wall clock (stage seconds above are "
            "summed across shards)",
            file=out,
        )
        for key in ("plan_seconds", "execute_seconds", "merge_seconds"):
            print(f"  {key:<15}{sharded[key]:>12.6f}s", file=out)
    print(
        f"profile: candidates evaluated={payload['candidates_evaluated']} "
        f"subtrees scored={payload['subtrees_scored']} "
        f"pruned static={payload['pruned_static']} "
        f"dynamic={payload['pruned_dynamic']}",
        file=out,
    )
    print(
        f"profile: kernel backend={payload['kernel_backend']} "
        f"invocations={payload['kernel_invocations']} "
        f"(numpy {payload['kernel_invocations_numpy']}) "
        f"rows={payload['kernel_rows']} "
        f"(numpy {payload['kernel_rows_numpy']})",
        file=out,
    )
    if payload.get("index_candidates"):
        print(
            f"profile: index candidates={payload['index_candidates']} "
            f"lb skips={payload['index_lb_skips']} "
            f"dedup hits={payload['index_dedup_hits']}",
            file=out,
        )
    print(
        f"profile: ring peak={payload['peak_buffered']}"
        f"/{payload['ring_capacity']} "
        f"occupancy octiles={payload['ring_occupancy']}",
        file=out,
    )
    if span is not None:
        print("profile: span tree", file=out)
        for line in render_span_tree(span):
            print(f"  {line}", file=out)


def _run_dataset(args: argparse.Namespace) -> int:
    from .datasets import generate

    nodes = generate(args.name, args.out, target_nodes=args.nodes, seed=args.seed)
    print(f"wrote {args.out}: {nodes} nodes ({args.name}, seed {args.seed})")
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    """Parse any workload source into an IntervalStore document.

    The store path in ``repro tasm``/``repro serve`` then serves the
    document straight from SQL (range scans, candidate index) without
    re-parsing the source.
    """
    from .postorder.interval import IntervalStore

    fmt = _detect_format(args.source, args.format)
    if fmt == "store":
        raise ReproError(
            f"{args.source!r} is already an IntervalStore file; "
            "ingest takes a document source"
        )
    if fmt in _FRONTEND_FORMATS:
        from .documents import document_for

        document = document_for(args.source, fmt)
        tree = Tree.from_postorder(document.postorder())
        workload = document.workload
    else:
        tree = _load_tree(args.source, args.format)
        workload = "bracket"
    name = args.name
    if name is None:
        name = os.path.basename(os.path.normpath(args.source)) or "document"
    with IntervalStore(args.store) as store:
        if any(name == existing for _, existing, _ in store.documents()):
            raise ReproError(
                f"store {args.store!r} already holds a document named "
                f"{name!r}; pick another with --name"
            )
        doc_id = store.store_tree(name, tree)
        store.ensure_index(doc_id)
        n_nodes = store.n_nodes(doc_id)
    print(
        f"ingested {args.source} into {args.store} as {name!r} "
        f"({n_nodes} nodes, workload {workload}, candidate index built)"
    )
    return 0


def _run_index(args: argparse.Namespace) -> int:
    """Backfill candidate-index rows for a store's documents.

    Opening the store read-write upgrades a v1 file's schema in place;
    documents already carrying rows report 0 and are left untouched.
    """
    from .postorder.interval import IntervalStore

    with IntervalStore(args.store) as store:
        documents = store.documents()
        if not documents:
            raise ReproError(f"store {args.store!r} holds no documents")
        if args.doc_name is not None:
            documents = [d for d in documents if d[1] == args.doc_name]
            if not documents:
                raise ReproError(
                    f"no document named {args.doc_name!r} in {args.store!r}"
                )
        for doc_id, name, n_nodes in documents:
            written = store.ensure_index(doc_id)
            state = (
                f"indexed {written} subtrees"
                if written
                else "already indexed"
            )
            print(f"{name}: {state} ({n_nodes} nodes)")
        print(f"schema version {store.schema_version()}")
    return 0


def _parse_pairs(pairs: List[str], what: str) -> Dict[str, str]:
    """``NAME=VALUE`` argument lists as a dict (order-preserving)."""
    out = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep or not name or not value:
            raise ReproError(f"--{what} needs NAME=VALUE, got {pair!r}")
        out[name] = value
    return out


def _serve_config(args: argparse.Namespace):
    """An argparse namespace as a :class:`repro.serve.ServerConfig`."""
    from .serve import ServerConfig

    queries = _parse_pairs(args.query, "query")
    if args.default_queries:
        from .datasets import DEFAULT_QUERIES

        for name, bracket in DEFAULT_QUERIES.items():
            queries.setdefault(name, bracket)
    return ServerConfig(
        host=args.host,
        port=args.port,
        store=args.store,
        xml_documents=_parse_pairs(args.xml, "xml"),
        queries=queries,
        workers=args.workers,
        shard_threshold=args.shard_threshold,
        cache_size=args.cache_size,
        request_threads=args.request_threads,
        max_k=args.max_k,
        backend=args.backend,
        engine=args.engine,
        coalesce_window_ms=args.coalesce_window_ms,
        max_batch_queries=args.max_batch_queries,
        verbose=args.verbose,
        slow_request_seconds=(
            None
            if args.slow_request_seconds < 0
            else args.slow_request_seconds
        ),
        trace=not args.no_trace,
    )


def _run_serve(args: argparse.Namespace) -> int:
    from .serve import run_server

    return run_server(_serve_config(args))


def _run_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .analysis import analyze, get_rules

    if args.list_rules:
        for rule in get_rules():
            doc = (type(rule).__doc__ or "").strip().splitlines()
            summary = doc[0] if doc else rule.title
            print(f"{rule.id}: {summary}")
        return 0
    if args.paths:
        targets = [Path(p) for p in args.paths]
    else:
        # No explicit target: lint the installed package itself — the
        # CI invocation, and a self-check anyone can run anywhere.
        targets = [Path(__file__).resolve().parent]
    report = analyze(targets, rule_ids=args.rule or None)
    print(report.to_json() if args.json else report.render_text())
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "ted":
            return _run_ted(args)
        if args.command == "dataset":
            return _run_dataset(args)
        if args.command == "ingest":
            return _run_ingest(args)
        if args.command == "index":
            return _run_index(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "lint":
            return _run_lint(args)
        return _run_tasm(args)
    except (ReproError, OSError) as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
