"""The project-specific invariant rules.

Each rule encodes one contract the codebase documents in prose —
paper guarantees (the O(tau) streaming bound of TASM, Sections V-VI),
process-boundary constraints, and wire determinism.  A rule's
docstring is its rationale: it names the invariant and where it comes
from, so a finding is an explanation, not just a complaint.

All rules operate purely on the AST (no imports of the checked code),
so the linter can analyse a broken tree and runs identically on every
CI leg.
"""

from __future__ import annotations

import ast
from typing import (
    ClassVar,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .core import ModuleInfo, Rule, ancestors, register_rule

__all__ = [
    "ForwardParamsRule",
    "JsonSortKeysRule",
    "LockDisciplineRule",
    "NoAssertRule",
    "PicklableFieldsRule",
    "SpanGuardRule",
    "StreamMaterialiseRule",
]

FuncDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _names_in(node: ast.AST) -> Set[str]:
    """Every bare identifier referenced anywhere under ``node``."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for parent in ancestors(node):
        if isinstance(parent, FuncDef):
            return parent
    return None


def _function_chain(node: ast.AST) -> Iterator[ast.AST]:
    """All function definitions enclosing ``node``, innermost first."""
    for parent in ancestors(node):
        if isinstance(parent, FuncDef):
            yield parent


@register_rule
class StreamMaterialiseRule(Rule):
    """No unbounded materialisation inside streaming-marked hot paths.

    TASM's defining guarantee (paper Sections V-VI, enforced by the
    bench memory gate since PR 2) is that ranking memory is O(tau) —
    independent of document size.  One ``list(source)``, ``.read()``,
    or whole-tree build inside the scan loop silently turns the
    streaming algorithm into a materialising one; results stay correct,
    so only memory profiling (or this rule) would ever notice.

    ``streaming_functions`` maps a module path suffix to the functions
    that carry the guarantee, each with the names bound to the
    unbounded stream inside it.  Flagged: ``list``/``tuple``/``set``/
    ``sorted``/``dict`` calls whose arguments reference a stream name,
    ``.read()``/``.readlines()`` calls, ``.to_tree()`` on a stream
    name, and ``Tree.from_postorder(<stream>)``.
    """

    id = "stream-materialise"
    title = "unbounded materialisation in a streaming hot path"

    #: module path suffix -> {function name -> stream-bound names}
    streaming_functions: ClassVar[
        Mapping[str, Mapping[str, Tuple[str, ...]]]
    ] = {
        "tasm/postorder.py": {
            "_stream_topk": ("source", "q"),
            "tasm_postorder": ("queue",),
        },
        "parallel/worker.py": {
            "run_shard": ("task",),
            "_shard_pairs": ("task",),
            "_closing_scan": (),
            "_xml_range_scan": (),
        },
        "xmlio/parse.py": {
            "iterparse_postorder": ("source",),
            "_flush_pending": (),
        },
    }

    _MATERIALISERS = ("list", "tuple", "set", "sorted", "dict", "frozenset")
    _READERS = ("read", "readlines")

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.matches(*self.streaming_functions)

    def _marked(self, module: ModuleInfo) -> Mapping[str, Tuple[str, ...]]:
        for suffix, functions in self.streaming_functions.items():
            if module.matches(suffix):
                return functions
        return {}

    def _stream_names(self, node: ast.AST) -> Optional[Tuple[str, ...]]:
        """Stream names in scope if ``node`` sits in a marked function."""
        marked = self._marked(self.module)
        names: List[str] = []
        inside = False
        for func in _function_chain(node):
            if func.name in marked:  # type: ignore[attr-defined]
                inside = True
                names.extend(marked[func.name])  # type: ignore[attr-defined]
        return tuple(names) if inside else None

    def visit_Call(self, node: ast.Call) -> None:
        streams = self._stream_names(node)
        if streams is None:
            self.generic_visit(node)
            return
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._MATERIALISERS:
            touched = set()
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                touched |= _names_in(arg)
            hit = touched & set(streams)
            if hit:
                self.flag(
                    node,
                    f"{func.id}(...) materialises the unbounded stream "
                    f"{sorted(hit)!r}; the scan must stay O(tau) memory",
                )
        elif isinstance(func, ast.Attribute):
            if func.attr in self._READERS:
                self.flag(
                    node,
                    f".{func.attr}() slurps its source into memory inside "
                    "a streaming-marked function",
                )
            elif func.attr == "to_tree" and isinstance(func.value, ast.Name):
                if func.value.id in streams:
                    self.flag(
                        node,
                        f"{func.value.id}.to_tree() builds the whole "
                        "document; the streaming core must not",
                    )
            elif func.attr == "from_postorder":
                touched = set()
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    touched |= _names_in(arg)
                if touched & set(streams):
                    self.flag(
                        node,
                        "Tree.from_postorder(<stream>) materialises the "
                        "whole document inside a streaming-marked function",
                    )
        self.generic_visit(node)


@register_rule
class PicklableFieldsRule(Rule):
    """Cross-process dataclass fields must be picklable by construction.

    ``ShardTask`` / ``ShardResult`` cross the multiprocessing boundary
    (PR 4's parallel layer); a field holding a lock, a lambda, a live
    ``Span``, or an open handle raises ``TypeError: cannot pickle`` at
    dispatch time — on the *user's* machine, under a worker pool, long
    after the field was added.  This rule rejects the field at lint
    time instead: every name in the annotation must come from the
    allowlist of primitives, containers, and known-picklable project
    types.
    """

    id = "picklable-fields"
    title = "unpicklable field on a cross-process dataclass"

    #: module path suffix -> dataclass names to audit
    dataclasses: ClassVar[Mapping[str, Tuple[str, ...]]] = {
        "parallel/worker.py": ("ShardTask", "ShardResult"),
    }
    #: annotation identifiers considered picklable
    allowed_names: ClassVar[Tuple[str, ...]] = (
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "complex",
        "object",
        "None",
        "tuple",
        "Tuple",
        "list",
        "List",
        "dict",
        "Dict",
        "set",
        "Set",
        "frozenset",
        "FrozenSet",
        "Optional",
        "Union",
        # Project types that are plain data all the way down.
        "Tree",
        "PostorderStats",
        "ShardMatch",
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.matches(*self.dataclasses)

    def _audited_classes(self) -> Tuple[str, ...]:
        for suffix, names in self.dataclasses.items():
            if self.module.matches(suffix):
                return names
        return ()

    def _annotation_names(self, annotation: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name):
                names.add(node.id)
            elif isinstance(node, ast.Attribute):
                names.add(node.attr)
            elif isinstance(node, ast.Constant):
                if isinstance(node.value, str):
                    # Forward reference: parse the string annotation too.
                    try:
                        inner = ast.parse(node.value, mode="eval")
                    except SyntaxError:
                        names.add(node.value)
                    else:
                        names |= self._annotation_names(inner)
            elif isinstance(node, ast.Lambda):
                names.add("lambda")
        return names

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name not in self._audited_classes():
            self.generic_visit(node)
            return
        allowed = set(self.allowed_names)
        for statement in node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            field_name = (
                statement.target.id
                if isinstance(statement.target, ast.Name)
                else "<field>"
            )
            bad = self._annotation_names(statement.annotation) - allowed
            if bad:
                self.flag(
                    statement,
                    f"{node.name}.{field_name} is annotated with "
                    f"{sorted(bad)!r}, not on the picklable allowlist — "
                    "it crosses the multiprocessing boundary",
                )
            if statement.value is not None and any(
                isinstance(n, ast.Lambda) for n in ast.walk(statement.value)
            ):
                self.flag(
                    statement,
                    f"{node.name}.{field_name} defaults to a lambda, "
                    "which cannot be pickled",
                )
        self.generic_visit(node)


@register_rule
class LockDisciplineRule(Rule):
    """Attribute writes on lock-guarded serve classes stay inside the lock.

    ``ResultCache``, ``ServeMetrics``, and the scan coalescer are
    shared across every server thread (PR 5, PR 8); their counters and
    window/in-flight maps are documented as guarded by ``self._lock``
    (the coalescer's arrivals condition wraps the same lock).  A write
    that drifts outside a ``with self._lock`` block is a data race
    that no test reliably catches — lost-update windows are
    nanoseconds wide.  ``__init__`` is exempt (no other thread can
    hold the instance yet).
    """

    id = "lock-discipline"
    title = "attribute write outside the guarding lock"

    #: module path suffix -> class names whose writes must hold the lock
    guarded_classes: ClassVar[Mapping[str, Tuple[str, ...]]] = {
        "serve/cache.py": ("ResultCache",),
        "serve/coalesce.py": ("ScanCoalescer",),
        "serve/metrics.py": ("ServeMetrics",),
    }
    lock_attribute: ClassVar[str] = "_lock"
    exempt_methods: ClassVar[Tuple[str, ...]] = ("__init__",)

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.matches(*self.guarded_classes)

    def _audited_classes(self) -> Tuple[str, ...]:
        for suffix, names in self.guarded_classes.items():
            if self.module.matches(suffix):
                return names
        return ()

    def _is_self_write(self, target: ast.AST) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _holds_lock(self, node: ast.AST) -> bool:
        for parent in ancestors(node):
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Attribute)
                        and expr.attr == self.lock_attribute
                    ):
                        return True
                    # with self._lock: ... acquired via a helper, e.g.
                    # self._lock.acquire-style wrappers.
                    for sub in ast.walk(expr):
                        if (
                            isinstance(sub, ast.Attribute)
                            and sub.attr == self.lock_attribute
                        ):
                            return True
        return False

    def _check_write(self, node: ast.AST, targets: Sequence[ast.AST]) -> None:
        func = _enclosing_function(node)
        if func is None or func.name in self.exempt_methods:  # type: ignore[attr-defined]
            return
        class_def = None
        for parent in ancestors(func):
            if isinstance(parent, ast.ClassDef):
                class_def = parent
                break
        if class_def is None or class_def.name not in self._audited_classes():
            return
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            if self._is_self_write(target) and not self._holds_lock(node):
                self.flag(
                    node,
                    f"{class_def.name}.{func.name} writes "  # type: ignore[attr-defined]
                    f"self.{target.attr} outside `with self."
                    f"{self.lock_attribute}` — racy against other "
                    "server threads",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_write(node, node.targets)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write(node, [node.target])
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_write(node, [node.target])
        self.generic_visit(node)


@register_rule
class SpanGuardRule(Rule):
    """Span calls in engine hot paths stay behind the falsy guard.

    The observability layer's promise (PR 6, enforced by the bench's
    ``--fail-obs-overhead`` gate) is that disabled tracing costs one
    pointer check: every ``span.method(...)`` in engine code must sit
    under a conditional that tests the span name, and no ``Span(...)``
    may be constructed inside a per-node loop (that is an allocation
    per node even when tracing is off, and span trees are capped at
    ``MAX_CHILDREN`` anyway).
    """

    id = "span-guard"
    title = "unguarded span use in an engine hot path"

    #: modules whose span uses must be guarded
    hot_modules: ClassVar[Tuple[str, ...]] = (
        "tasm/postorder.py",
        "tasm/batch.py",
        "parallel/worker.py",
        "parallel/sharded.py",
        "serve/coalesce.py",
        "serve/executor.py",
        "index/engine.py",
    )
    #: methods that are themselves guard-free by design (NULL_SPAN
    #: recorders implement them as no-ops and callers rely on that).
    exempt_methods: ClassVar[Tuple[str, ...]] = ()

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.matches(*self.hot_modules)

    @staticmethod
    def _is_span_name(name: str) -> bool:
        return name == "span" or name.endswith("_span")

    def _guarded(self, node: ast.AST, name: str) -> bool:
        """Is ``node`` under a conditional whose test references ``name``?"""
        previous: ast.AST = node
        for parent in ancestors(node):
            if isinstance(parent, ast.If) and name in _names_in(parent.test):
                return True
            if (
                isinstance(parent, ast.IfExp)
                and previous is not parent.test
                and name in _names_in(parent.test)
            ):
                return True
            if isinstance(parent, ast.BoolOp) and isinstance(parent.op, ast.And):
                # `span and span.child(...)`: any earlier operand
                # referencing the name guards the later ones.
                index = (
                    parent.values.index(previous)
                    if previous in parent.values
                    else len(parent.values)
                )
                for operand in parent.values[:index]:
                    if name in _names_in(operand):
                        return True
            if isinstance(parent, FuncDef):
                break
            previous = parent
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and self._is_span_name(func.value.id)
            and func.attr not in self.exempt_methods
            and not self._guarded(node, func.value.id)
        ):
            self.flag(
                node,
                f"{func.value.id}.{func.attr}(...) is not behind an "
                f"`if {func.value.id}:` guard — disabled tracing "
                "must cost one pointer check",
            )
        if isinstance(func, ast.Name) and func.id == "Span":
            for parent in ancestors(node):
                if isinstance(parent, (ast.For, ast.AsyncFor, ast.While)):
                    self.flag(
                        node,
                        "Span(...) constructed inside a loop — spans are "
                        "per-stage, not per-node",
                    )
                    break
                if isinstance(parent, FuncDef):
                    break
        self.generic_visit(node)


@register_rule
class JsonSortKeysRule(Rule):
    """``json.dumps`` in wire/observability modules sorts its keys.

    The service contract (PR 5's ``service-smoke`` CI job) asserts that
    a ``/v1/tasm`` response body is byte-identical to the matching
    ``repro tasm --json`` CLI output.  ``json.dumps`` without
    ``sort_keys=True`` emits dict-insertion order — two code paths
    building the same payload in different order silently diverge.
    Every dumps call in the modules that produce wire or log output
    must therefore pin ``sort_keys=True``.
    """

    id = "json-sort-keys"
    title = "json.dumps without sort_keys=True in a wire module"

    #: module path suffixes whose JSON output crosses a wire
    wire_modules: ClassVar[Tuple[str, ...]] = (
        "repro/cli.py",
        "serve/wire.py",
        "serve/httpd.py",
        "serve/client.py",
        "obs/log.py",
        "obs/prom.py",
    )

    def applies_to(self, module: ModuleInfo) -> bool:
        return module.matches(*self.wire_modules)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_dumps = (
            isinstance(func, ast.Attribute)
            and func.attr == "dumps"
            and isinstance(func.value, ast.Name)
            and func.value.id == "json"
        ) or (isinstance(func, ast.Name) and func.id == "dumps")
        if is_dumps:
            pinned = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not pinned:
                self.flag(
                    node,
                    "json.dumps without sort_keys=True — wire output "
                    "must be byte-deterministic (CLI/HTTP identity "
                    "contract)",
                )
        self.generic_visit(node)


@register_rule
class NoAssertRule(Rule):
    """No runtime ``assert`` for control flow in shipped code.

    ``python -O`` strips assert statements, so an assert that guards a
    real runtime state ("server not started", "tree has no root")
    silently becomes a no-op and the failure resurfaces later as an
    ``AttributeError`` three frames away.  Shipped code raises explicit
    exceptions (:mod:`repro.errors`); ``assert`` belongs in tests,
    where pytest rewrites it.
    """

    id = "no-assert"
    title = "runtime assert in shipped code"

    #: directory names / file-name prefixes exempt from the rule
    #: (test trees use assert by design — pytest rewrites it there)
    exempt_dirs: ClassVar[Tuple[str, ...]] = ("tests",)
    exempt_file_prefixes: ClassVar[Tuple[str, ...]] = ("test_", "conftest")

    def applies_to(self, module: ModuleInfo) -> bool:
        name = module.path.name
        if any(name.startswith(prefix) for prefix in self.exempt_file_prefixes):
            return False
        return not any(part in self.exempt_dirs for part in module.path.parts[:-1])

    def visit_Assert(self, node: ast.Assert) -> None:
        self.flag(
            node,
            "assert is stripped under `python -O`; raise an explicit "
            "exception from repro.errors instead",
        )
        self.generic_visit(node)


@register_rule
class ForwardParamsRule(Rule):
    """Accepted ``backend=``/``span=``/``engine=``/``options=``
    parameters must be used.

    The layered API threads three cross-cutting parameters everywhere:
    the kernel row engine (``backend``), the tracing span, and the
    ranking engine selector (``engine``).  A public entrypoint that
    accepts one and drops it on the floor still works — it just
    silently ranks on the wrong engine or loses a span subtree, the
    exact bug class the PR 5 backend plumbing fixed.  Any function
    that declares one of these parameters must reference it in its
    body (forwarding it counts; stub bodies are exempt).
    """

    id = "forward-params"
    title = "accepted backend=/span=/engine=/options= parameter never used"

    watched_params: ClassVar[Tuple[str, ...]] = (
        "backend",
        "span",
        "engine",
        "options",
    )

    def _is_stub(self, node: ast.AST) -> bool:
        body = node.body  # type: ignore[attr-defined]
        statements = list(body)
        if (
            statements
            and isinstance(statements[0], ast.Expr)
            and isinstance(statements[0].value, ast.Constant)
            and isinstance(statements[0].value.value, str)
        ):
            statements = statements[1:]
        if not statements:
            return True
        if len(statements) == 1:
            only = statements[0]
            if isinstance(only, ast.Pass):
                return True
            if isinstance(only, ast.Expr) and isinstance(only.value, ast.Constant):
                return True  # `...` ellipsis body (Protocol / overload)
            if isinstance(only, ast.Raise):
                return True  # abstract `raise NotImplementedError`
        return False

    def _check_function(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        declared = [
            arg.arg
            for arg in (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            if arg.arg in self.watched_params
        ]
        if not declared or self._is_stub(node):
            self.generic_visit(node)
            return
        used = {
            n.id
            for stmt in node.body  # type: ignore[attr-defined]
            for n in ast.walk(stmt)
            if isinstance(n, ast.Name)
        }
        for param in declared:
            if param not in used:
                self.flag(
                    node,
                    f"{node.name}() accepts {param}= but never uses it — "  # type: ignore[attr-defined]
                    "the parameter must be forwarded to the callee",
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
