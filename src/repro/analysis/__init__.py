"""Static analysis for the project's documented invariants.

``repro.analysis`` is a zero-dependency, AST-based linter: a rule
framework (:mod:`repro.analysis.core`) plus the project-specific rules
(:mod:`repro.analysis.rules`) that mechanically enforce contracts the
codebase otherwise states only in prose — the O(tau) streaming-memory
guarantee, cross-process picklability, serve-layer lock discipline,
the falsy span guard, wire determinism, no runtime asserts, and
backend/span forwarding.

Run it as ``repro lint [PATHS] [--json] [--rule ID]``; suppress a
finding with ``# repro-lint: disable=<rule-id>`` on the offending line
or ``# repro-lint: disable-file=<rule-id>`` anywhere in the file.
"""

from __future__ import annotations

from .core import (
    AnalysisError,
    Finding,
    FindingPayload,
    ModuleInfo,
    Report,
    ReportPayload,
    Rule,
    all_rule_ids,
    analyze,
    get_rules,
    iter_python_files,
    load_module,
    register_rule,
)
from .rules import (
    ForwardParamsRule,
    JsonSortKeysRule,
    LockDisciplineRule,
    NoAssertRule,
    PicklableFieldsRule,
    SpanGuardRule,
    StreamMaterialiseRule,
)

__all__ = [
    "AnalysisError",
    "Finding",
    "FindingPayload",
    "ForwardParamsRule",
    "JsonSortKeysRule",
    "LockDisciplineRule",
    "ModuleInfo",
    "NoAssertRule",
    "PicklableFieldsRule",
    "Report",
    "ReportPayload",
    "Rule",
    "SpanGuardRule",
    "StreamMaterialiseRule",
    "all_rule_ids",
    "analyze",
    "get_rules",
    "iter_python_files",
    "load_module",
    "register_rule",
]
