"""Rule framework for the project's invariant linter.

The codebase's correctness rests on contracts that no type checker can
see: the O(tau) streaming-memory guarantee of the TASM scan (paper
Sections V-VI), picklability of the types that cross the
multiprocessing boundary, byte-identity between server and CLI JSON,
lock discipline in the serving layer.  This module is the machinery
that turns those prose contracts into checked rules: a
:class:`Rule` visitor base, a registry, per-rule configuration,
``# repro-lint: disable=...`` suppression comments, and deterministic
text / JSON reports.

Zero dependencies beyond the standard library — the linter must run in
every CI leg, including the no-numpy one.
"""

from __future__ import annotations

import ast
import json
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Type,
    TypedDict,
)

from ..errors import ReproError

__all__ = [
    "AnalysisError",
    "Finding",
    "FindingPayload",
    "ModuleInfo",
    "Report",
    "ReportPayload",
    "Rule",
    "all_rule_ids",
    "analyze",
    "get_rules",
    "iter_python_files",
    "load_module",
    "register_rule",
]

SUPPRESS_ALL = "all"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s-]+)"
)


class AnalysisError(ReproError):
    """A file could not be analysed (unreadable, syntax error)."""


class FindingPayload(TypedDict):
    """One finding as it appears in the machine-readable report."""

    rule: str
    path: str
    line: int
    col: int
    message: str


class ReportPayload(TypedDict):
    """Schema of ``repro lint --json`` output."""

    version: int
    files_scanned: int
    rules: List[str]
    findings: List[FindingPayload]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def payload(self) -> FindingPayload:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass
class ModuleInfo:
    """One parsed source file plus its suppression comments."""

    path: Path
    source: str
    tree: ast.Module
    line_suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_suppressions: FrozenSet[str] = frozenset()

    @property
    def display_path(self) -> str:
        """The path as reported in findings (relative when possible)."""
        try:
            return self.path.resolve().relative_to(Path.cwd()).as_posix()
        except ValueError:
            return self.path.as_posix()

    def matches(self, *suffixes: str) -> bool:
        """True when the module path ends with any of ``suffixes``."""
        posix = self.path.as_posix()
        return any(posix.endswith(suffix) for suffix in suffixes)

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` suppressed at ``line`` (or file-wide)?"""
        if rule_id in self.file_suppressions or SUPPRESS_ALL in self.file_suppressions:
            return True
        at_line = self.line_suppressions.get(line, frozenset())
        return rule_id in at_line or SUPPRESS_ALL in at_line


def _parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """Extract ``# repro-lint: disable[-file]=...`` comments.

    ``disable=`` suppresses matching findings on the comment's line;
    ``disable-file=`` suppresses them for the whole file.  Rule ids are
    comma-separated; the id ``all`` matches every rule.
    """
    line_map: Dict[int, FrozenSet[str]] = {}
    file_wide: Set[str] = set()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except tokenize.TokenError:
        return {}, frozenset()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        rule_ids = {
            part.strip() for part in match.group("rules").split(",") if part.strip()
        }
        if not rule_ids:
            continue
        if match.group("scope") == "disable-file":
            file_wide.update(rule_ids)
        else:
            line = token.start[0]
            line_map[line] = line_map.get(line, frozenset()) | frozenset(rule_ids)
    return line_map, frozenset(file_wide)


def _link_parents(tree: ast.Module) -> None:
    """Attach a ``_lint_parent`` attribute to every node (None at root)."""
    tree._lint_parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._lint_parent = node  # type: ignore[attr-defined]


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Walk from ``node``'s parent up to the module root."""
    current: Optional[ast.AST] = getattr(node, "_lint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_lint_parent", None)


def load_module(path: Path) -> ModuleInfo:
    """Read + parse one file; raises :class:`AnalysisError` on failure."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {path}: {exc}") from exc
    _link_parents(tree)
    line_map, file_wide = _parse_suppressions(source)
    return ModuleInfo(
        path=path,
        source=source,
        tree=tree,
        line_suppressions=line_map,
        file_suppressions=file_wide,
    )


#: directory names never worth linting: interpreter bytecode and tool
#: caches that ``rglob`` would otherwise happily descend into.
_SKIP_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hypothesis",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
    }
)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, deduplicated file list."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.suffix == ".py":
            collected.append(path)
        else:
            raise AnalysisError(f"not a Python file or directory: {path}")
    for path in collected:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            yield path


class Rule(ast.NodeVisitor):
    """Base class for one invariant check.

    Subclasses set the :attr:`id` / :attr:`title` class attributes,
    implement ``visit_*`` methods, and call :meth:`flag` on violations.
    Class attributes double as per-rule configuration: constructor
    ``options`` override them per run (``analyze(..., config={rule_id:
    {attr: value}})``), so tests and downstream users can retarget a
    rule without subclassing.

    The rule's docstring is its rationale and is surfaced by
    ``repro lint --list-rules`` — keep it pointed at the invariant's
    origin (paper section or PR) so a finding explains *why* it matters.
    """

    id: ClassVar[str] = ""
    title: ClassVar[str] = ""

    def __init__(self, options: Optional[Mapping[str, object]] = None):
        for name, value in (options or {}).items():
            if not hasattr(type(self), name):
                raise AnalysisError(
                    f"rule {self.id!r} has no option {name!r}"
                )
            setattr(self, name, value)
        self.findings: List[Finding] = []
        self._module: Optional[ModuleInfo] = None

    # -- hooks ----------------------------------------------------------
    def applies_to(self, module: ModuleInfo) -> bool:
        """Whether this rule inspects ``module`` at all (default: yes)."""
        return True

    @property
    def module(self) -> ModuleInfo:
        if self._module is None:
            raise AnalysisError(f"rule {self.id!r} used outside check()")
        return self._module

    def flag(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(
                path=self.module.display_path,
                line=line,
                col=col,
                rule=self.id,
                message=message,
            )
        )

    def check(self, module: ModuleInfo) -> List[Finding]:
        """Run the visitor over ``module``; returns unsuppressed findings."""
        self._module = module
        self.findings = []
        self.visit(module.tree)
        found = [
            finding
            for finding in self.findings
            if not module.suppressed(self.id, finding.line)
        ]
        self._module = None
        self.findings = []
        return found


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise AnalysisError(f"{rule_class.__name__} must set a rule id")
    if rule_class.id in _REGISTRY:
        raise AnalysisError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class
    return rule_class


def all_rule_ids() -> List[str]:
    return sorted(_REGISTRY)


def get_rules(
    rule_ids: Optional[Sequence[str]] = None,
    config: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> List[Rule]:
    """Instantiate the selected rules (all registered ones by default)."""
    selected = list(rule_ids) if rule_ids else all_rule_ids()
    rules: List[Rule] = []
    for rule_id in selected:
        rule_class = _REGISTRY.get(rule_id)
        if rule_class is None:
            known = ", ".join(all_rule_ids())
            raise AnalysisError(f"unknown rule {rule_id!r} (known: {known})")
        options = (config or {}).get(rule_id)
        rules.append(rule_class(options))
    return rules


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: List[Finding]
    files_scanned: int
    rule_ids: List[str]

    @property
    def clean(self) -> bool:
        return not self.findings

    def payload(self) -> ReportPayload:
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "rules": list(self.rule_ids),
            "findings": [finding.payload() for finding in self.findings],
        }

    def to_json(self) -> str:
        # sort_keys keeps the report byte-deterministic, the same
        # contract rule json-sort-keys enforces on the wire modules.
        return json.dumps(self.payload(), indent=2, sort_keys=True)

    def render_text(self) -> str:
        if self.clean:
            return (
                f"repro lint: {self.files_scanned} files clean "
                f"({len(self.rule_ids)} rules)"
            )
        lines = [finding.render() for finding in self.findings]
        lines.append(
            f"repro lint: {len(self.findings)} finding(s) in "
            f"{self.files_scanned} files"
        )
        return "\n".join(lines)


def analyze(
    paths: Sequence[Path],
    rule_ids: Optional[Sequence[str]] = None,
    config: Optional[Mapping[str, Mapping[str, object]]] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> Report:
    """Run rules over every Python file under ``paths``.

    ``rules`` takes pre-built rule instances (tests use this to inject
    configured rules); otherwise ``rule_ids``/``config`` select from the
    registry.  Findings come back sorted by (path, line, col, rule) so
    the report is deterministic regardless of filesystem order.
    """
    active = list(rules) if rules is not None else get_rules(rule_ids, config)
    findings: List[Finding] = []
    files = 0
    for file_path in iter_python_files(paths):
        module = load_module(file_path)
        files += 1
        for rule in active:
            if rule.applies_to(module):
                findings.extend(rule.check(module))
    findings.sort()
    return Report(
        findings=findings,
        files_scanned=files,
        rule_ids=sorted(rule.id for rule in active),
    )
