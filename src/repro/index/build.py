"""Candidate-row construction: structure hashes and label signatures.

One bottom-up pass over a postorder ``(label, size)`` stream computes,
per node,

* a **structure hash** — a 16-byte BLAKE2b Merkle digest over
  ``(label, child hashes)``, so two subtrees share a hash exactly when
  they are label-identical ordered trees (up to the negligible
  2^-128 collision probability of the digest; the index treats the
  hash as identity, the same trust model as content-addressed stores);
* a **label-histogram signature** — 64 bucketed label counts
  (``crc32(label) % 64``), summed bottom-up from the children.  Bucket
  collisions only ever *merge* counts, which makes the derived lower
  bound smaller, never larger — the filter stays conservative.

Signature counts are carried as one big integer with a 32-bit field
per bucket (child signatures combine with a single integer add — no
per-bucket Python loop; counts are bounded by the subtree size, so
fields can never carry into each other for any document below 2^32
nodes) and serialised per row at the smallest of three fixed widths
(1/2/4 bytes per bucket, chosen by subtree size and recovered from the
blob length alone).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from hashlib import blake2b
from typing import Iterable, Iterator, List, Tuple
from zlib import crc32

from ..errors import PostorderQueueError

__all__ = [
    "SIGNATURE_BUCKETS",
    "STRUCT_HASH_BYTES",
    "CandidateEntry",
    "decode_signature",
    "iter_candidate_entries",
    "label_bucket",
]

#: Buckets in a label-histogram signature.
SIGNATURE_BUCKETS = 64

#: Bytes of a structure hash (BLAKE2b digest size).
STRUCT_HASH_BYTES = 16

#: Bits per bucket in the packed big-integer representation.
_FIELD_BITS = 32

_FIELD_BYTES = _FIELD_BITS // 8
_RAW_BYTES = SIGNATURE_BUCKETS * _FIELD_BYTES


def label_bucket(label: str) -> int:
    """Histogram bucket of ``label`` (CRC-32 modulo the bucket count)."""
    return crc32(label.encode("utf-8")) % SIGNATURE_BUCKETS


@dataclass(frozen=True)
class CandidateEntry:
    """One candidate row: a document subtree ready for indexing.

    ``pos`` is the root's postorder position (1-based), ``size`` the
    subtree's node count; ``struct_hash`` and ``signature`` are the
    serialised forms stored in the ``candidate`` table.
    """

    pos: int
    size: int
    struct_hash: bytes
    signature: bytes


def _encode_signature(packed: int, size: int) -> bytes:
    """Serialise a packed signature at the narrowest safe bucket width.

    Every bucket count is bounded by the subtree size, so ``size``
    alone picks the width; the decoder recovers it from the blob
    length.  The 4-byte little-endian layout *is* the big integer's
    byte representation, and the narrower widths are strided slices of
    it — no per-bucket Python loop anywhere.
    """
    raw = packed.to_bytes(_RAW_BYTES, "little")
    if size < 1 << 8:
        return raw[0::4]
    if size < 1 << 16:
        narrow = bytearray(SIGNATURE_BUCKETS * 2)
        narrow[0::2] = raw[0::4]
        narrow[1::2] = raw[1::4]
        return bytes(narrow)
    return raw


def decode_signature(blob: bytes) -> Tuple[int, ...]:
    """The 64 bucket counts of a serialised signature."""
    n = len(blob)
    if n == SIGNATURE_BUCKETS:
        return tuple(blob)
    if n == SIGNATURE_BUCKETS * 2:
        return struct.unpack(f"<{SIGNATURE_BUCKETS}H", blob)
    if n == _RAW_BYTES:
        return struct.unpack(f"<{SIGNATURE_BUCKETS}I", blob)
    raise PostorderQueueError(
        f"malformed candidate signature: {n} bytes is not a "
        f"{SIGNATURE_BUCKETS}-bucket encoding"
    )


def iter_candidate_entries(
    pairs: Iterable[Tuple[object, int]],
) -> Iterator[CandidateEntry]:
    """Candidate entries for a postorder ``(label, size)`` stream.

    Labels are hashed as ``str(label)`` — the exact form
    :meth:`IntervalStore.store_tree` persists in the TEXT column — so
    ingest-time indexing and post-hoc backfill from stored rows
    produce identical hashes and signatures.

    Memory is O(depth): completed subtrees wait on a pending stack and
    are adopted by their parent exactly as in
    :meth:`~repro.trees.tree.Tree.from_postorder`.
    """
    # Stack of completed subtrees: (start position, digest, packed sig).
    pending: List[Tuple[int, bytes, int]] = []
    pos = 0
    for label, size in pairs:
        pos += 1
        if size < 1 or size > pos:
            raise PostorderQueueError(
                f"invalid postorder size {size} at position {pos}"
            )
        start = pos - size + 1
        digest = blake2b(digest_size=STRUCT_HASH_BYTES)
        text = str(label).encode("utf-8")
        digest.update(len(text).to_bytes(4, "big"))
        digest.update(text)
        packed = 1 << (_FIELD_BITS * label_bucket(str(label)))
        # Children are the pending subtrees inside [start, pos); they
        # sit on the stack in order, so find the first and feed the
        # digest left to right.
        first_child = len(pending)
        while first_child and pending[first_child - 1][0] >= start:
            first_child -= 1
        for child_start, child_digest, child_packed in pending[first_child:]:
            digest.update(child_digest)
            packed += child_packed
        del pending[first_child:]
        struct_hash = digest.digest()
        yield CandidateEntry(
            pos=pos,
            size=size,
            struct_hash=struct_hash,
            signature=_encode_signature(packed, size),
        )
        pending.append((start, struct_hash, packed))
