"""Ingest-time candidate index with a lower-bound pre-filter.

TASM-postorder streams every document node per request, but for a
static :class:`~repro.postorder.interval.IntervalStore` the candidate
set under ``tau = k + 2|Q| - 1`` depends only on subtree sizes — not
labels — so the scan is redundant work.  This package precomputes, per
document and at ``store_tree()`` time, one **candidate row** per node:

    ``(postorder position, root end_pos, subtree size,
       structure hash, label-histogram signature)``

Serving a query then

1. enumerates candidates by an SQL size range instead of streaming the
   whole document (:meth:`IntervalStore.candidate_rows`),
2. dedups by structure hash so each distinct subtree shape is scored
   by the exact TED kernel once and fanned back out to every position
   it occurs at, and
3. skips exact kernel runs on candidates whose label-histogram lower
   bound (:func:`~repro.index.lb.histogram_lower_bound`, provably
   ``LB <= TED``) already exceeds the ranking heap's worst distance.

The resulting :func:`~repro.index.engine.tasm_indexed_batch` produces
rankings byte-identical to the streaming pass — including tie order —
because candidates are offered to the heaps in postorder-position
order with exactly the streaming core's acceptance discipline, and an
offer is suppressed only when the lower bound proves the heap would
have rejected it anyway.
"""

from .build import (
    SIGNATURE_BUCKETS,
    STRUCT_HASH_BYTES,
    CandidateEntry,
    decode_signature,
    iter_candidate_entries,
    label_bucket,
)
from .engine import tasm_indexed_batch
from .lb import histogram_lower_bound, tree_signature

__all__ = [
    "SIGNATURE_BUCKETS",
    "STRUCT_HASH_BYTES",
    "CandidateEntry",
    "decode_signature",
    "histogram_lower_bound",
    "iter_candidate_entries",
    "label_bucket",
    "tasm_indexed_batch",
    "tree_signature",
]
