"""Label-histogram lower bound on the tree edit distance.

For trees ``Q`` and ``T`` with bucketed label histograms ``q`` and
``t``, let ``o = sum_b min(q_b, t_b)`` (the histogram overlap).  Any
edit script maps ``m <= min(|Q|, |T|)`` node pairs and pays

    ``f(m) = min_indel * (|Q| + |T| - 2m) + min_rename * max(0, m - o)``

at least: the unmapped nodes are deleted/inserted (each >= min_indel),
and at most ``o`` mapped pairs can carry equal labels — equal labels
share a bucket, so label-preserving pairs are bounded by the overlap
even under bucket collisions — leaving ``m - o`` pairs that each pay a
real rename (>= min_rename).  ``f`` is piecewise linear and decreasing
on ``[0, o]``, so its minimum over admissible ``m`` is attained at
``m = o`` or ``m = min(|Q|, |T|)``:

    ``LB = min( min_indel * abs(|T| - |Q|)
                  + min_rename * (min(|Q|, |T|) - o),
                min_indel * (|Q| + |T| - 2o) )``

hence ``LB <= ted(Q, T)`` for every cost model publishing
``min_indel`` (all of them) and a ``min_rename`` lower bound on
non-identity renames.  Models without ``min_rename`` degrade to
``min_rename = 0``, which collapses the first term to the paper's
plain size bound — still valid, just weaker.  The Hypothesis suite
checks ``LB <= ted`` directly against the exact kernel.
"""

from __future__ import annotations

from typing import Protocol, Tuple

from ..trees.tree import Tree
from .build import SIGNATURE_BUCKETS, label_bucket

__all__ = ["histogram_lower_bound", "tree_signature"]


class _CostBounds(Protocol):
    """The scalar bounds the lower bound reads off a cost model."""

    min_indel: float


def tree_signature(tree: Tree) -> Tuple[int, ...]:
    """The bucketed label histogram of a whole tree (64 counts).

    Labels hash as ``str(label)``, matching both the index build pass
    and the TEXT column of the store.
    """
    counts = [0] * SIGNATURE_BUCKETS
    for i in range(1, len(tree) + 1):
        counts[label_bucket(str(tree.label(i)))] += 1
    return tuple(counts)


def histogram_lower_bound(
    query_size: int,
    query_signature: Tuple[int, ...],
    candidate_size: int,
    candidate_signature: Tuple[int, ...],
    cost: _CostBounds,
) -> float:
    """A provable lower bound on ``ted(Q, T)`` from sizes + histograms.

    See the module docstring for the derivation.  ``min_rename`` is
    read with ``getattr`` so cost models predating the index keep
    working (they fall back to the size-only first term).
    """
    overlap = 0
    for a, b in zip(query_signature, candidate_signature):
        overlap += a if a < b else b
    min_indel = cost.min_indel
    min_rename = float(getattr(cost, "min_rename", 0.0))
    smaller = query_size if query_size < candidate_size else candidate_size
    diff = candidate_size - query_size
    if diff < 0:
        diff = -diff
    bound_at_max_mapping = min_indel * diff + min_rename * (smaller - overlap)
    bound_at_overlap = min_indel * (query_size + candidate_size - 2 * overlap)
    return min(bound_at_max_mapping, bound_at_overlap)
