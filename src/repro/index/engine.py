"""Indexed TASM: rank queries from the candidate table, not a scan.

:func:`tasm_indexed_batch` answers the same question as
:func:`~repro.tasm.batch.tasm_batch` — the top-``k`` ranking of every
query against one stored document — but enumerates the store's
precomputed candidate rows by SQL size range instead of streaming all
``|T|`` nodes, making a request O(candidates in range) instead of
O(|T|).

**Byte-identity argument** (the differential suite enforces this,
including tie order).  The streaming core offers subtrees to each
query's :class:`~repro.tasm.heap.TopKHeap` in postorder-position
order, fast-rejecting offers whose distance ties or exceeds the full
heap's worst distance.  This engine replays exactly that offer
sequence:

* candidates are enumerated ``ORDER BY`` postorder position — the
  stream's offer order;
* the SQL range ``[max(1, |Q|-tau), |Q|+tau]`` with
  ``tau = floor(max_cost * (k + |Q| - 1) / min_indel)`` (the
  :func:`~repro.tasm.postorder.prune_threshold` static bound, maxed
  over the batch) is a *superset* of everything the stream ever
  offers: the stream's dynamic threshold only ever tightens below the
  static one, and the lower end is provably 1 for every validated
  cost model (``max_cost >= min_indel`` makes ``|Q| - tau <= 1 - k``);
* an offer is *suppressed* only when the heap is full and the
  label-histogram lower bound (or the cheaper size-only bound it
  dominates) already reaches the heap's worst distance — the heap
  would have rejected the exact distance too, and rejected offers
  never consume a tie-order stamp, so the heap evolution is unchanged;
* conversely, every subtree the stream pruned but this engine offers
  is rejected by the same argument: a subtree can only outgrow a
  (static or dynamic) threshold once its size lower bound reaches the
  then-current worst distance, the worst distance never increases
  afterwards, and any node that large sits at a postorder position
  ``> k`` — by which point the heap is provably full (the first ``k``
  candidates are always within every threshold and always accepted);
* once every heap is full the scan itself narrows: remaining rows are
  fetched in position-ordered chunks whose SQL size band is the union
  of the per-query dynamic ranges ``|size - |Q|| <
  worst / min_indel`` (the streaming core's dynamic threshold, applied
  at both ends).  A row outside the band has size-only lower bound at
  or above some past worst distance, which never increases — the heap
  would have rejected its offer, and rejected offers consume no
  tie-order stamp, so dropping them in SQL leaves every heap's
  evolution untouched while out-of-band rows never even materialise
  as Python tuples.

Structure-hash dedup rides on top: the first occurrence of a shape is
scored exactly once, later occurrences replay the cached distance —
the same float the stream computes, since the kernel's per-subtree
values depend only on the subtree — or the cached skip verdict, which
stays valid because the worst distance is non-increasing.  In the
banded phase the first-occurrence runs are amortised the way the
streaming core amortises ring retirements: each chunk is walked twice,
a decide pass that settles skip verdicts against the chunk-start worst
distances (exact — they never increase) and batch-scores the surviving
shapes grafted under a virtual root with one kernel run per query per
batch, then a replay pass that re-offers every row in position order
against the live worst distances, so heap evolution — and with it tie
order — is byte-identical to the strictly sequential scan.
"""

from __future__ import annotations

from math import ceil
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..distance.ted import PrefixDistanceKernel
from ..errors import PostorderQueueError, RankingError
from ..postorder.interval import IntervalStore
from ..tasm.heap import Match, TopKHeap
from ..tasm.options import TasmOptions, merge_options
from ..tasm.postorder import PostorderStats, prune_threshold
from ..trees.tree import Tree
from .build import decode_signature
from .lb import histogram_lower_bound, tree_signature

__all__ = ["tasm_indexed_batch"]

#: Shape-cache verdicts: a scored shape keeps (distance, source tree,
#: root id in that tree) — the source is the standalone subtree in
#: phase 1 and the grafted batch tree in phase 2; a proven-rejected
#: shape keeps None — rejection is permanent because a full heap's
#: worst distance never increases.
_ShapeVerdict = Optional[Tuple[float, Tree, int]]

#: Banded-scan chunk size: between chunks the SQL size band is
#: re-derived from the (non-increasing) worst distances, so smaller
#: chunks tighten faster but pay more query round-trips.
_CHUNK_ROWS = 2048

#: Cap on the signature blobs pushed into the SQL exclusion list per
#: chunk — bounds statement size; overflow signatures just fall back
#: to the Python-side cached-skip path.
_MAX_EXCLUDE = 1500

#: Node budget per grafted scoring batch in phase 2.  Kept under the
#: kernel's numpy engagement size (``NUMPY_MIN_DOC``) so batches run on
#: the same scalar path the equivalent standalone runs would.
_BATCH_NODES = 400


def tasm_indexed_batch(
    queries: Iterable[Tree],
    store: IntervalStore,
    doc_id: int,
    k: int,
    cost: Optional[CostModel] = None,
    options: Optional[TasmOptions] = None,
    *,
    stats: Optional[PostorderStats] = None,
    kernels: Optional[Sequence[PrefixDistanceKernel]] = None,
    backend: Optional[str] = None,
    span: Optional[Any] = None,
) -> List[List[Match]]:
    """Top-``k`` rankings of every query from the candidate index.

    ``store`` may be read-only; the document must have been indexed
    (``store_tree`` indexes at ingest, :meth:`IntervalStore.ensure_index`
    or ``repro index`` backfill older files) — an unindexed document
    raises :class:`~repro.errors.PostorderQueueError` rather than
    silently falling back to a scan.

    ``options`` (a :class:`~repro.tasm.options.TasmOptions`) carries
    the execution surface; the trailing keywords are deprecated
    aliases kept for one release.  ``stats``, ``kernels``, ``backend``,
    and ``span`` mean exactly what they mean on
    :func:`~repro.tasm.batch.tasm_batch`; the index-specific counters
    land in ``stats.index_candidates`` / ``index_lb_skips`` /
    ``index_dedup_hits``.
    """
    opts = merge_options(
        options,
        "tasm_indexed_batch",
        stats=stats,
        kernels=kernels,
        backend=backend,
        span=span,
    )
    stats = opts.stats
    kernels = opts.kernels
    backend = opts.get("backend", "auto")
    span = opts.span
    query_list: List[Tree] = list(queries)
    if not query_list:
        raise RankingError("tasm_indexed_batch needs at least one query")
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    if not store.has_index(doc_id):
        raise PostorderQueueError(
            f"document {doc_id} has no candidate index; run "
            "`repro index` (or IntervalStore.ensure_index) to backfill"
        )
    if span is not None and not span:
        span = None  # NULL_SPAN: collapse to the no-op path up front
    t_start = perf_counter() if stats is not None else 0.0
    heaps = [TopKHeap(k) for _ in query_list]  # validates k
    kernel_list: Sequence[PrefixDistanceKernel]
    if kernels is None:
        kernel_list = [
            PrefixDistanceKernel(query, cost, backend) for query in query_list
        ]
    else:
        if len(kernels) != len(query_list):
            raise RankingError(
                f"got {len(kernels)} pre-built kernels for "
                f"{len(query_list)} queries"
            )
        kernel_list = kernels
    kernel_base = [
        (
            kern.calls,
            kern.calls_numpy,
            kern.rows_computed,
            kern.rows_computed_numpy,
        )
        for kern in kernel_list
    ]
    if stats is not None and kernel_list:
        stats.kernel_backend = kernel_list[0].backend

    q_sizes = [len(query) for query in query_list]
    q_signatures = [tree_signature(query) for query in query_list]
    statics = [prune_threshold(k, q_size, cost) for q_size in q_sizes]
    # Size range: the static thresholds bound the top, and the bottom
    # is max(1, |Q| - tau) — provably 1 for every validated cost model
    # (see the module docstring), kept in formula form for clarity.
    hi = max(statics)
    lo = min(
        max(1, q_size - (static - q_size))
        for q_size, static in zip(q_sizes, statics, strict=True)
    )
    min_indel = cost.min_indel
    n_queries = len(query_list)
    query_range = range(n_queries)
    # Per-query shape caches and cached worst distances (None until the
    # heap is full — matching the streaming core's fast-reject cache).
    caches: List[Dict[bytes, _ShapeVerdict]] = [{} for _ in query_list]
    worsts: List[Optional[float]] = [None] * n_queries
    # The histogram bound depends only on the signature per query (the
    # signature's bucket counts are exact and sum to the subtree size),
    # and bucketing collapses a corpus's thousands of distinct labels
    # onto a handful of signature values — so caching LB values on the
    # signature blob turns most first-sight bound checks into one dict
    # lookup.
    lb_caches: List[Dict[bytes, float]] = [{} for _ in query_list]

    candidates = 0
    lb_skips = 0
    dedup_hits = 0
    eval_seconds = 0.0
    kernel_seconds = 0.0
    timing = stats is not None
    # Queries whose heap is not yet full; phase 1 ends at zero.
    unfilled = n_queries

    scan_span = (
        span.child("index_scan", doc_id=doc_id, size_lo=lo, size_hi=hi)
        if span is not None
        else None
    )

    def process_rows(
        rows: Iterable[Tuple[int, int, int, bytes, bytes]],
        until_filled: bool = False,
    ) -> Tuple[int, int]:
        """Offer ``rows`` in position order; returns (last pos, count).

        One call per chunk — the per-row cost is just this loop body,
        with no function-call dispatch per candidate.  ``until_filled``
        stops the loop as soon as every heap is full (phase 1's exit
        into the banded scan).
        """
        nonlocal candidates, lb_skips, dedup_hits
        nonlocal eval_seconds, kernel_seconds, unfilled
        last_pos = 0
        got = 0
        for pos, end_pos, size, struct_hash, signature in rows:
            got += 1
            last_pos = pos
            candidates += 1
            decoded: Optional[Tuple[int, ...]] = None
            shape: Optional[Tree] = None
            for qi in query_range:
                cache = caches[qi]
                cached = cache.get(struct_hash, _MISSING)
                worst = worsts[qi]
                if cached is not _MISSING:
                    if cached is None:
                        # Shape proved rejectable while the heap was full;
                        # the worst distance only shrank since.
                        lb_skips += 1
                        continue
                    dedup_hits += 1
                    d, src, src_root = cached
                    if worst is not None and d >= worst:
                        continue
                    heap = heaps[qi]
                    heap.push(
                        Match(
                            distance=d,
                            root=pos,
                            source=src,
                            source_root=src_root,
                        )
                    )
                    if heap.full:
                        if worst is None:
                            unfilled -= 1
                        worsts[qi] = heap.max_distance
                    continue
                if worst is not None:
                    # Cheap size-only bound first (dominated by the full
                    # histogram bound, so skipping on it is also exact).
                    q_size = q_sizes[qi]
                    diff = size - q_size if size >= q_size else q_size - size
                    if min_indel * diff >= worst:
                        cache[struct_hash] = None
                        lb_skips += 1
                        continue
                    lb_cache = lb_caches[qi]
                    lb = lb_cache.get(signature)
                    if lb is None:
                        if decoded is None:
                            decoded = decode_signature(signature)
                        lb = histogram_lower_bound(
                            q_size, q_signatures[qi], size, decoded, cost
                        )
                        lb_cache[signature] = lb
                    if lb >= worst:
                        cache[struct_hash] = None
                        lb_skips += 1
                        continue
                # Exact kernel run on the first occurrence of this shape.
                t_eval = perf_counter() if timing else 0.0
                if shape is None:
                    shape = store.subtree_of(doc_id, end_pos)
                    if shape is None:
                        raise PostorderQueueError(
                            f"candidate index row (doc {doc_id}, end_pos "
                            f"{end_pos}) has no matching node row"
                        )
                kernel = kernel_list[qi]
                if timing:
                    t_kernel = perf_counter()
                    d = kernel.distances(shape)[len(shape)]
                    now = perf_counter()
                    kernel_seconds += now - t_kernel
                    eval_seconds += now - t_eval
                else:
                    d = kernel.distances(shape)[len(shape)]
                cache[struct_hash] = (d, shape, len(shape))
                if worst is not None and d >= worst:
                    continue
                heap = heaps[qi]
                heap.push(
                    Match(
                        distance=d,
                        root=pos,
                        source=shape,
                        source_root=len(shape),
                    )
                )
                if heap.full:
                    if worst is None:
                        unfilled -= 1
                    worsts[qi] = heap.max_distance
            if until_filled and not unfilled:
                break
        return last_pos, got

    def dynamic_band() -> Optional[Tuple[int, int]]:
        # Union of the per-query dynamic size ranges, clamped to the
        # static band.  ``spread`` mirrors the streaming core's
        # ``ceil(worst / min_indel) - 1`` dynamic threshold; a query
        # whose worst distance is 0 can accept nothing (offers are
        # rejected on ``d >= worst``) and contributes no range.
        band_lo: Optional[int] = None
        band_hi = 0
        for q_size, worst in zip(q_sizes, worsts, strict=True):
            if worst is None:  # pragma: no cover - phase 2 implies full
                continue
            spread = ceil(worst / min_indel) - 1
            if spread < 0:
                continue
            if band_lo is None or q_size - spread < band_lo:
                band_lo = q_size - spread
            if q_size + spread > band_hi:
                band_hi = q_size + spread
        if band_lo is None:
            return None
        return max(band_lo, lo), min(band_hi, hi)

    def process_chunk(rows: List[Tuple[int, int, int, bytes, bytes]]) -> None:
        """Phase-2 chunk processing: decide + batch-score, then replay.

        Pass A walks the chunk once and, for each first-seen shape,
        decides per query whether the size-only or histogram bound
        already rejects it — judged against the *chunk-start* worst
        distances, which is exact: worst distances never increase, so a
        bound that reaches the chunk-start worst also reaches the worst
        at the shape's own row.  Shapes some query still needs exactly
        are materialised and scored in grafted batches: their postorder
        pairs are spliced under a virtual root and one prefix-distance
        run per query per batch scores them all (the streaming core's
        own amortisation, see ``evaluate_groups``), at
        ``_BATCH_NODES``-bounded batch sizes that stay on the scalar
        kernel path.

        Pass B then replays every row through the ordinary offer
        sequence with the live worst distances.  All verdicts are
        cached by then, so replay is pure dict lookups; any shape pass
        A scored that a strictly sequential scan would have
        bound-skipped at its row is rejected by the heap there instead
        (its distance is at least the bound, hence at least that row's
        worst), and rejected offers consume no tie-order stamp — heap
        evolution is byte-identical to the sequential scan.  Only the
        lb-skip vs dedup-hit counter *attribution* can differ.
        """
        nonlocal candidates, lb_skips, dedup_hits
        nonlocal eval_seconds, kernel_seconds
        pending: List[Tuple[bytes, int, int, Tuple[bool, ...]]] = []
        pending_hashes: Set[bytes] = set()
        pending_nodes = 0

        def flush() -> None:
            # Score every pending shape with one kernel run per query.
            nonlocal pending_nodes, eval_seconds, kernel_seconds
            if not pending:
                return
            t_eval = perf_counter() if timing else 0.0
            pairs: List[Tuple[Any, int]] = []
            roots: List[int] = []  # local root id per pending shape
            for struct_hash, end_pos, size, _rejected in pending:
                shape_pairs = store.subtree_pairs_of(
                    doc_id, end_pos, end_pos - 2 * size + 1
                )
                if not shape_pairs:
                    raise PostorderQueueError(
                        f"candidate index row (doc {doc_id}, end_pos "
                        f"{end_pos}) has no matching node rows"
                    )
                pairs.extend(shape_pairs)
                roots.append(len(pairs))
            total = len(pairs)
            # Virtual root over the spliced subtrees: no real subtree
            # contains it, so per-subtree distances are untouched; its
            # label reuses one already in the batch (its own row and
            # column are discarded anyway).
            pairs.append((pairs[0][0], total + 1))
            grafted = Tree.from_postorder(pairs)
            for qi in query_range:
                kernel = kernel_list[qi]
                if timing:
                    t_kernel = perf_counter()
                    distances = kernel.distances(grafted)
                    kernel_seconds += perf_counter() - t_kernel
                else:
                    distances = kernel.distances(grafted)
                cache = caches[qi]
                for (struct_hash, _end, _size, rejected), root_local in zip(
                    pending, roots, strict=True
                ):
                    cache[struct_hash] = (
                        None
                        if rejected[qi]
                        else (distances[root_local], grafted, root_local)
                    )
            if timing:
                eval_seconds += perf_counter() - t_eval
            pending.clear()
            pending_hashes.clear()
            pending_nodes = 0

        # Pass A: decide and batch-score first-seen shapes.
        for pos, end_pos, size, struct_hash, signature in rows:
            if struct_hash in pending_hashes or struct_hash in caches[0]:
                continue
            decoded: Optional[Tuple[int, ...]] = None
            rejected_by: List[bool] = []
            needs_exact = False
            for qi in query_range:
                worst = worsts[qi]
                if worst is None:  # pragma: no cover - phase 2 is full
                    rejected_by.append(False)
                    needs_exact = True
                    continue
                q_size = q_sizes[qi]
                diff = size - q_size if size >= q_size else q_size - size
                if min_indel * diff >= worst:
                    rejected_by.append(True)
                    continue
                lb_cache = lb_caches[qi]
                lb = lb_cache.get(signature)
                if lb is None:
                    if decoded is None:
                        decoded = decode_signature(signature)
                    lb = histogram_lower_bound(
                        q_size, q_signatures[qi], size, decoded, cost
                    )
                    lb_cache[signature] = lb
                if lb >= worst:
                    rejected_by.append(True)
                    continue
                rejected_by.append(False)
                needs_exact = True
            if needs_exact:
                if pending and pending_nodes + size > _BATCH_NODES:
                    flush()
                pending.append(
                    (struct_hash, end_pos, size, tuple(rejected_by))
                )
                pending_hashes.add(struct_hash)
                pending_nodes += size
            else:
                for qi in query_range:
                    caches[qi][struct_hash] = None
        flush()

        # Pass B: replay the chunk's offers in position order.
        for pos, end_pos, size, struct_hash, signature in rows:
            candidates += 1
            for qi in query_range:
                cached = caches[qi][struct_hash]
                if cached is None:
                    lb_skips += 1
                    continue
                dedup_hits += 1
                d, src, src_root = cached
                worst = worsts[qi]
                if worst is not None and d >= worst:
                    continue
                heap = heaps[qi]
                heap.push(
                    Match(
                        distance=d,
                        root=pos,
                        source=src,
                        source_root=src_root,
                    )
                )
                if heap.full:
                    worsts[qi] = heap.max_distance

    # Phase 1: full static band in position order.  Every offer is
    # accepted while a heap is below k entries, so with realistic k
    # this phase ends within the first few rows.
    last_pos, _ = process_rows(
        store.candidate_rows(doc_id, lo, hi), until_filled=True
    )

    def rejectable_signatures() -> List[bytes]:
        # Signatures whose cached lower bound reaches every query's
        # worst distance.  Excluding them inside SQL is exact for the
        # same reason the cached-verdict skip is: the bound was
        # computed for this very signature, every exact distance of a
        # row carrying it is at least that bound (hence at or above
        # each heap's worst, which never increases), and rejected
        # offers consume no tie-order stamp.
        sigs: List[bytes] = []
        worst0 = worsts[0]
        if worst0 is None:  # pragma: no cover - phase 2 implies full
            return sigs
        for key, bound in lb_caches[0].items():
            if bound < worst0:
                continue
            for qi in range(1, n_queries):
                other = lb_caches[qi].get(key)
                wq = worsts[qi]
                if other is None or wq is None or other < wq:
                    break
            else:
                sigs.append(key)
                if len(sigs) >= _MAX_EXCLUDE:
                    break
        return sigs

    def rejectable_hashes() -> List[bytes]:
        # Structure hashes every query already holds a verdict for
        # that cannot change a heap: a cached None (proven-rejectable
        # shape) or an exact distance at or above that query's worst.
        # Same exactness argument as the signature exclusion — the
        # offers these rows would generate are all rejections, and
        # rejections consume no tie-order stamp.
        hashes: List[bytes] = []
        worst0 = worsts[0]
        if worst0 is None:  # pragma: no cover - phase 2 implies full
            return hashes
        for key, verdict in caches[0].items():
            if verdict is not None and verdict[0] < worst0:
                continue
            for qi in range(1, n_queries):
                other = caches[qi].get(key, _MISSING)
                wq = worsts[qi]
                if other is _MISSING or wq is None:
                    break
                if other is not None and other[0] < wq:
                    break
            else:
                hashes.append(key)
                if len(hashes) >= _MAX_EXCLUDE:
                    break
        return hashes

    # Phase 2: banded chunks.  Every heap is full, so the size band is
    # defined; it re-tightens between chunks as worst distances shrink,
    # and proven-rejectable (size, signature) pairs are dropped inside
    # SQLite instead of round-tripping through the cached-skip path.
    while not unfilled:
        band = dynamic_band()
        if band is None or band[0] > band[1]:
            break
        rows = list(
            store.candidate_rows(
                doc_id,
                band[0],
                band[1],
                after_pos=last_pos,
                limit=_CHUNK_ROWS,
                exclude=rejectable_signatures(),
                exclude_hashes=rejectable_hashes(),
            )
        )
        if rows:
            process_chunk(rows)
            last_pos = rows[-1][0]
        if len(rows) < _CHUNK_ROWS:
            break

    if stats is not None:
        stats.index_candidates += candidates
        stats.index_lb_skips += lb_skips
        stats.index_dedup_hits += dedup_hits
        stats.candidate_eval_seconds += eval_seconds
        stats.kernel_seconds += kernel_seconds
        for kern, (c, cn, r, rn) in zip(
            kernel_list, kernel_base, strict=True
        ):
            stats.kernel_invocations += kern.calls - c
            stats.kernel_invocations_numpy += kern.calls_numpy - cn
            stats.kernel_rows += kern.rows_computed - r
            stats.kernel_rows_numpy += kern.rows_computed_numpy - rn
        stats.total_seconds += perf_counter() - t_start
    if scan_span is not None:
        scan_span.attrs.update(
            candidates=candidates,
            lb_skips=lb_skips,
            dedup_hits=dedup_hits,
        )
        scan_span.finish()
    if span is not None:
        span.attrs.update(queries=n_queries, k=k, engine="indexed")
    return [heap.ranking() for heap in heaps]


#: Sentinel distinguishing "shape not seen" from a cached skip (None).
_MISSING: Any = object()
