"""Shard planning: safe postorder cuts for parallel TASM.

The paper's pruning theorem bounds every ranking candidate by
``tau = prune_threshold(k, |Q|, cost)`` nodes (``k + 2|Q| - 1`` under
unit costs).  A postorder stream can therefore be *cut* after position
``p`` whenever no subtree of size <= ``tau`` spans the cut — every
candidate subtree then lies entirely inside one segment, so the
segments can be ranked independently and the per-segment rankings
merged into a result identical to the single-pass one
(:mod:`repro.parallel.merge`).

The subtrees spanning the cut after position ``p`` are exactly the
proper ancestors of node ``p`` (their postorder intervals contain ``p``
and close later), so:

    cut after ``p`` is **safe**  iff  every proper ancestor of node
    ``p`` has subtree size > ``tau``.

Streaming detection needs only O(tau) memory: node ``i`` with size
``s <= tau`` spans (blocks) the cuts ``i - s + 1 .. i - 1``, so any
blocker of cut ``p`` arrives at a position ``<= p + tau - 1``.  A cut
still unblocked once the scan passes ``p + tau - 1`` is safe forever.
The planner does this size arithmetic in a single cheap pass over the
``(label, size)`` pairs — no distance computation, no tree
materialisation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

from ..errors import RankingError

__all__ = ["Shard", "ShardPlan", "iter_safe_cuts", "plan_shards"]

Pair = Tuple[object, int]


@dataclass(frozen=True)
class Shard:
    """One contiguous postorder range ``start .. end`` (1-based, inclusive)."""

    index: int
    start: int
    end: int

    def __len__(self) -> int:
        return self.end - self.start + 1


@dataclass(frozen=True)
class ShardPlan:
    """The outcome of one planning pass over a postorder stream."""

    tau: int
    total_nodes: int
    shards: Tuple[Shard, ...]

    @property
    def cuts(self) -> Tuple[int, ...]:
        """The selected safe cut positions (end of every shard but the last)."""
        return tuple(shard.end for shard in self.shards[:-1])

    def __len__(self) -> int:
        return len(self.shards)


def iter_safe_cuts(pairs: Iterable[Pair], tau: int) -> Iterator[int]:
    """Yield every safe cut position of a postorder stream, ascending.

    A yielded ``p`` means the stream may be split between postorder
    positions ``p`` and ``p + 1`` without separating any subtree of
    size <= ``tau`` (the end-of-stream position is never yielded — a
    cut there splits nothing).  Memory is O(tau): candidate cuts stay
    pending until the scan passes the last position that could still
    block them.
    """
    if tau < 1:
        raise RankingError(f"tau must be >= 1, got {tau}")
    pending: "deque[int]" = deque()
    position = 0
    for _, size in pairs:
        position += 1
        if size <= tau:
            # This node spans (and thereby blocks) the cuts
            # position - size + 1 .. position - 1, which form a suffix
            # of the pending deque.
            lo = position - size + 1
            while pending and pending[-1] >= lo:
                pending.pop()
        # Cuts with no possible blocker left are safe: any blocker of
        # cut p sits at a position <= p + tau - 1.
        horizon = position - tau + 1
        while pending and pending[0] <= horizon:
            yield pending.popleft()
        pending.append(position)
    # The stream is over; nothing can block the survivors.  The final
    # position is dropped — cutting after the last node is vacuous.
    while pending:
        p = pending.popleft()
        if p < position:
            yield p


def plan_shards(
    pairs: Iterable[Pair],
    total_nodes: int,
    tau: int,
    shards: int,
) -> ShardPlan:
    """Pick up to ``shards - 1`` safe cuts that balance the stream.

    Greedy selection: for each target boundary ``w * n / shards`` take
    the first safe cut at or past it.  When a region admits no safe cut
    (e.g. the whole document is one subtree of size <= ``tau``), fewer
    — possibly just one — shards come back; the result is always a
    partition of ``1 .. total_nodes`` into contiguous ranges.
    """
    if shards < 1:
        raise RankingError(f"shard count must be >= 1, got {shards}")
    if total_nodes < 1:
        raise RankingError(f"total_nodes must be >= 1, got {total_nodes}")
    cuts: List[int] = []
    if shards > 1:
        targets = [(w * total_nodes) // shards for w in range(1, shards)]
        targets = [t for t in targets if 1 <= t < total_nodes]
        ti = 0
        for cut in iter_safe_cuts(pairs, tau):
            # Targets at or before the last selected cut are already
            # covered by it; they get no cut of their own (one long
            # shard instead of degenerate slivers).
            while ti < len(targets) and targets[ti] <= (cuts[-1] if cuts else 0):
                ti += 1
            if ti >= len(targets):
                break
            if cut >= targets[ti]:
                cuts.append(cut)
                ti += 1
    bounds = [0] + cuts + [total_nodes]
    shard_list = tuple(
        Shard(index=i, start=lo + 1, end=hi)
        for i, (lo, hi) in enumerate(zip(bounds, bounds[1:], strict=False))
    )
    return ShardPlan(tau=tau, total_nodes=total_nodes, shards=shard_list)
