"""Sharded parallel TASM: plan safe cuts, fan out, merge.

``tasm_sharded`` / ``tasm_sharded_batch`` split a postorder stream at
safe cut positions (:mod:`repro.parallel.plan`), rank every shard
independently — inline or on a ``multiprocessing`` pool
(:mod:`repro.parallel.worker`) — and merge the per-shard rankings into
a result provably identical to the single-pass
:func:`~repro.tasm.postorder.tasm_postorder` /
:func:`~repro.tasm.batch.tasm_batch` ranking
(:mod:`repro.parallel.merge`).

Document sources:

* :class:`~repro.trees.tree.Tree`, :class:`~repro.postorder.queue.
  PostorderQueue`, or any iterable of ``(label, size)`` pairs — the
  coordinator materialises the pair list once (the planning pass needs
  one scan, the shards another) and ships each worker its slice;
* :class:`~repro.documents.StoreDocument` — a document inside an
  :class:`~repro.postorder.interval.IntervalStore` database *file*.
  Planning streams one cheap size-only scan, and each worker opens its
  own read-only connection and range-scans exactly its shard
  (:meth:`~repro.postorder.interval.IntervalStore.postorder_range`),
  so no process ever holds the document in memory;
* any other :class:`~repro.documents.Document` (XML/JSON/HTML/AST
  frontends) — planning makes two streaming passes and every worker
  replays the frontend's own postorder stream up to its range, keeping
  every process at the frontend's streaming memory bound.

Worker processes re-run the unmodified streaming core per shard, so
every per-worker guarantee of the paper still holds — in particular
each worker's ring peak stays within its ``k + 2|Q| - 1`` bound.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..distance.ted import resolve_backend
from ..documents import Document as _Document
from ..documents import StoreDocument as _StoreDocument
from ..documents import XmlDocument as _XmlDocument
from ..errors import RankingError
from ..postorder.queue import PostorderQueue
from ..tasm.heap import Match
from ..tasm.options import TasmOptions, merge_options
from ..tasm.postorder import (
    RING_OCCUPANCY_BUCKETS,
    PostorderStats,
    prune_threshold,
)
from ..trees.tree import Tree
from .merge import merge_rankings
from .plan import ShardPlan, plan_shards
from .worker import ShardResult, ShardTask, run_shard

__all__ = [
    "ShardedStats",
    "StoreDocument",
    "XmlDocument",
    "tasm_sharded",
    "tasm_sharded_batch",
]

#: Former homes of the document classes, kept as deprecated aliases —
#: ``StoreDocument``/``XmlDocument`` were never parallel-specific and
#: now live in :mod:`repro.documents` with the other frontends.
_MOVED_TO_DOCUMENTS = {
    "StoreDocument": _StoreDocument,
    "XmlDocument": _XmlDocument,
}


def __getattr__(name: str):
    if name in _MOVED_TO_DOCUMENTS:
        warnings.warn(
            f"repro.parallel.sharded.{name} moved to repro.documents."
            f"{name}; this alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MOVED_TO_DOCUMENTS[name]
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


@dataclass
class ShardedStats:
    """Instrumentation of one sharded run.

    ``shard_stats`` holds each worker's ordinary
    :class:`~repro.tasm.postorder.PostorderStats`; the aggregate
    properties mirror its field names (max for capacity/peak, sums for
    counters) so callers can report either kind interchangeably.
    """

    workers: int = 0
    plan: Optional[ShardPlan] = None
    #: The resolved kernel row engine every shard ran with.
    kernel_backend: str = ""
    shard_stats: List[PostorderStats] = field(default_factory=list)
    #: Per-shard worker-side CPU time, in shard order.  The maximum is
    #: the run's critical path (the wall-clock lower bound once the
    #: host has >= `workers` cores).
    shard_cpu_seconds: List[float] = field(default_factory=list)
    #: Coordinator-side stage wall times: safe-cut planning, shard
    #: execution (dispatch + the slowest worker), and ranking merge.
    plan_seconds: float = 0.0
    execute_seconds: float = 0.0
    merge_seconds: float = 0.0

    @property
    def dequeued(self) -> int:
        return sum(s.dequeued for s in self.shard_stats)

    @property
    def ring_capacity(self) -> int:
        return max((s.ring_capacity for s in self.shard_stats), default=0)

    @property
    def peak_buffered(self) -> int:
        return max((s.peak_buffered for s in self.shard_stats), default=0)

    @property
    def candidates_evaluated(self) -> int:
        return sum(s.candidates_evaluated for s in self.shard_stats)

    @property
    def subtrees_scored(self) -> int:
        return sum(s.subtrees_scored for s in self.shard_stats)

    @property
    def pruned_large(self) -> int:
        return sum(s.pruned_large for s in self.shard_stats)

    @property
    def pruned_buffered(self) -> int:
        return sum(s.pruned_buffered for s in self.shard_stats)

    @property
    def pruned_static(self) -> int:
        return sum(s.pruned_static for s in self.shard_stats)

    @property
    def pruned_dynamic(self) -> int:
        return sum(s.pruned_dynamic for s in self.shard_stats)

    @property
    def head_flushes(self) -> int:
        return sum(s.head_flushes for s in self.shard_stats)

    @property
    def wholesale_flushes(self) -> int:
        return sum(s.wholesale_flushes for s in self.shard_stats)

    @property
    def kernel_invocations(self) -> int:
        return sum(s.kernel_invocations for s in self.shard_stats)

    @property
    def kernel_invocations_numpy(self) -> int:
        return sum(s.kernel_invocations_numpy for s in self.shard_stats)

    @property
    def kernel_rows(self) -> int:
        return sum(s.kernel_rows for s in self.shard_stats)

    @property
    def kernel_rows_numpy(self) -> int:
        return sum(s.kernel_rows_numpy for s in self.shard_stats)

    @property
    def index_candidates(self) -> int:
        return sum(s.index_candidates for s in self.shard_stats)

    @property
    def index_lb_skips(self) -> int:
        return sum(s.index_lb_skips for s in self.shard_stats)

    @property
    def index_dedup_hits(self) -> int:
        return sum(s.index_dedup_hits for s in self.shard_stats)

    #: Engine stage times are *summed* across shards — with parallel
    #: workers they exceed wall clock, but the scan/eval/kernel split
    #: they describe is the same work-attribution callers want from a
    #: single pass.  Wall-clock stages live in plan/execute/merge.
    @property
    def total_seconds(self) -> float:
        return sum(s.total_seconds for s in self.shard_stats)

    @property
    def candidate_eval_seconds(self) -> float:
        return sum(s.candidate_eval_seconds for s in self.shard_stats)

    @property
    def kernel_seconds(self) -> float:
        return sum(s.kernel_seconds for s in self.shard_stats)

    @property
    def scan_seconds(self) -> float:
        return max(0.0, self.total_seconds - self.candidate_eval_seconds)

    @property
    def ring_occupancy(self) -> List[int]:
        agg = [0] * RING_OCCUPANCY_BUCKETS
        for s in self.shard_stats:
            for i, v in enumerate(s.ring_occupancy):
                agg[i] += v
        return agg

    def payload(self) -> Dict[str, object]:
        """JSON-ready form, key-compatible with
        :meth:`~repro.tasm.postorder.PostorderStats.payload` plus a
        ``sharded`` block of coordinator-side detail."""
        data = {
            "dequeued": self.dequeued,
            "ring_capacity": self.ring_capacity,
            "peak_buffered": self.peak_buffered,
            "candidates_evaluated": self.candidates_evaluated,
            "subtrees_scored": self.subtrees_scored,
            "pruned_large": self.pruned_large,
            "pruned_buffered": self.pruned_buffered,
            "pruned_static": self.pruned_static,
            "pruned_dynamic": self.pruned_dynamic,
            "head_flushes": self.head_flushes,
            "wholesale_flushes": self.wholesale_flushes,
            "kernel_backend": self.kernel_backend,
            "kernel_invocations": self.kernel_invocations,
            "kernel_invocations_numpy": self.kernel_invocations_numpy,
            "kernel_rows": self.kernel_rows,
            "kernel_rows_numpy": self.kernel_rows_numpy,
            "index_candidates": self.index_candidates,
            "index_lb_skips": self.index_lb_skips,
            "index_dedup_hits": self.index_dedup_hits,
            "ring_occupancy": self.ring_occupancy,
            "stage_seconds": {
                "total": round(self.total_seconds, 6),
                "scan": round(self.scan_seconds, 6),
                "candidate_eval": round(self.candidate_eval_seconds, 6),
                "kernel": round(self.kernel_seconds, 6),
            },
        }
        data["sharded"] = {
            "workers": self.workers,
            "n_shards": self.n_shards,
            "plan_seconds": round(self.plan_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "merge_seconds": round(self.merge_seconds, 6),
            "shard_cpu_seconds": [
                round(s, 6) for s in self.shard_cpu_seconds
            ],
        }
        return data

    @property
    def n_shards(self) -> int:
        """How many shards the planner produced (1 = no safe cut found,
        i.e. the run degenerated to a single pass)."""
        if self.plan is not None:
            return len(self.plan.shards)
        return len(self.shard_stats)


def _normalise_source(source) -> tuple:
    """Reduce ``source`` to (total_nodes, planning_pairs, payload_maker)."""
    if isinstance(source, _StoreDocument):
        from ..postorder.interval import IntervalStore

        store = IntervalStore.open_readonly(source.path)
        try:
            total = store.n_nodes(source.doc_id)
        finally:
            store.close()

        def payload(start: int, end: int) -> tuple:
            return ("store", source.path, source.doc_id)

        # Lazy size-only scan on a connection of its own: the planner
        # consumes it streaming, so the coordinator never materialises
        # the document either.
        return total, _store_planning_scan(source.path, source.doc_id), payload
    if isinstance(source, _Document) and not isinstance(source, Tree):
        # Any frontend document (XML/JSON/HTML/AST or third-party
        # picklable path-holder): planning makes two streaming passes
        # (count + safe cuts) and every worker replays the document's
        # own postorder stream up to its range — more parse CPU than
        # shipping pair slices, but memory stays at the frontend's
        # streaming bound in every process.
        total = source.n_nodes()
        if total == 0:
            raise RankingError(f"no nodes parsed from {source!r}")

        def payload(start: int, end: int) -> tuple:
            return ("doc", source)

        planning = ((None, size) for _, size in source.postorder())
        return total, planning, payload
    if isinstance(source, Tree):
        pairs = list(source.postorder())
    elif isinstance(source, PostorderQueue):
        pairs = list(source)
    else:
        pairs = list(source)
    if not pairs:
        raise RankingError("cannot shard an empty postorder stream")

    def payload(start: int, end: int) -> tuple:
        return ("pairs", tuple(pairs[start - 1 : end]))

    return len(pairs), pairs, payload


def _store_planning_scan(path: str, doc_id: int):
    from ..postorder.interval import IntervalStore

    store = IntervalStore.open_readonly(path)
    try:
        # Planning only reads sizes; dropping labels keeps the pass light.
        for _, size in store.postorder_pairs(doc_id):
            yield None, size
    finally:
        store.close()


def tasm_sharded_batch(
    queries: Iterable[Tree],
    source,
    k: int,
    cost: Optional[CostModel] = None,
    options: Optional[TasmOptions] = None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    stats: Optional[ShardedStats] = None,
    pool=None,
    backend: Optional[str] = None,
    span=None,
    engine: Optional[str] = None,
) -> List[List[Match]]:
    """Top-``k`` rankings of every query via sharded (parallel) passes.

    ``options`` (a :class:`~repro.tasm.options.TasmOptions`) carries
    the execution surface; the trailing keywords are deprecated
    aliases kept for one release.

    ``workers`` is the process count (1 = run every shard inline in
    this process, which is how tests exercise the plan/merge machinery
    without pool overhead); ``shards`` defaults to ``workers`` and may
    exceed it for load balancing.  Returns exactly what
    :func:`~repro.tasm.batch.tasm_batch` returns for the same inputs.

    ``pool`` — an already-running ``multiprocessing.Pool`` to fan the
    shard tasks out on, instead of creating (and tearing down) a pool
    per call.  A long-lived caller such as the serving layer's
    executor amortises worker start-up across requests this way;
    ``Pool.map`` is thread-safe, so several request threads may share
    one pool.

    ``backend`` is the kernel row engine; it is resolved *here* (so a
    missing numpy fails fast in the coordinator, not inside a worker)
    and shipped to every shard task.

    ``span``, if given (a :class:`repro.obs.Span`), receives
    ``shard_plan`` / ``shard_dispatch`` / ``merge`` children; each
    worker records its own shard span, serialised through the picklable
    :class:`~repro.parallel.worker.ShardResult` and grafted back under
    ``shard_dispatch``.

    ``engine`` defaults to ``"stream"`` — this function's contract *is*
    the sharded scan, so unlike :func:`~repro.tasm.batch.tasm_batch`
    (whose ``"auto"`` picks the index when present) nothing changes
    unless asked.  ``"indexed"`` (or ``"auto"`` on an indexed
    :class:`StoreDocument`) delegates to the candidate-index engine — a
    single SQL-backed pass, so no worker pool is used; the pass runs
    inline and ``stats`` records one "shard" with no plan.
    """
    opts = merge_options(
        options,
        "tasm_sharded_batch",
        workers=workers,
        shards=shards,
        stats=stats,
        pool=pool,
        backend=backend,
        span=span,
        engine=engine,
    )
    workers = opts.get("workers", 2)
    shards = opts.shards
    stats = opts.stats
    pool = opts.pool
    backend = opts.get("backend", "auto")
    span = opts.span
    engine = opts.get("engine", "stream")
    if opts.kernels is not None:
        raise RankingError(
            "kernels cannot be combined with the sharded path (worker "
            "processes build their own)"
        )
    query_list: Sequence[Tree] = list(queries)
    if not query_list:
        raise RankingError("tasm_sharded_batch needs at least one query")
    if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
        raise RankingError(f"workers must be a positive integer, got {workers!r}")
    if engine not in ("auto", "stream", "indexed"):
        raise RankingError(
            f"unknown engine {engine!r}; expected one of "
            "('auto', 'stream', 'indexed')"
        )
    if engine != "stream" and isinstance(source, _StoreDocument):
        from ..postorder.interval import IntervalStore

        store = IntervalStore.open_readonly(source.path)
        try:
            if engine == "indexed" or store.has_index(source.doc_id):
                from ..index.engine import tasm_indexed_batch

                if cost is None:
                    cost = UnitCostModel()
                resolved = resolve_backend(backend)
                pass_stats = PostorderStats() if stats is not None else None
                t0 = perf_counter() if stats is not None else 0.0
                rankings = tasm_indexed_batch(
                    query_list,
                    store,
                    source.doc_id,
                    k,
                    cost,
                    TasmOptions(
                        stats=pass_stats,
                        backend=resolved,
                        span=span,
                    ),
                )
                if stats is not None and pass_stats is not None:
                    stats.workers = 1
                    stats.kernel_backend = pass_stats.kernel_backend
                    stats.shard_stats = [pass_stats]
                    stats.shard_cpu_seconds = [pass_stats.total_seconds]
                    stats.execute_seconds = perf_counter() - t0
                return rankings
        finally:
            store.close()
    elif engine == "indexed":
        raise RankingError(
            "engine='indexed' needs a StoreDocument source (the candidate "
            "index lives in the store file)"
        )
    if shards is None:
        shards = workers
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
        raise RankingError(f"k must be a positive integer, got {k!r}")

    if span is not None and not span:
        span = None  # NULL_SPAN: collapse to the no-op path up front
    backend = resolve_backend(backend)
    tau = max(prune_threshold(k, len(query), cost) for query in query_list)
    timing = stats is not None
    t0 = perf_counter() if timing else 0.0
    plan_span = span.child("shard_plan") if span is not None else None
    total, planning_pairs, payload = _normalise_source(source)
    plan = plan_shards(planning_pairs, total, tau, shards)
    if plan_span is not None:
        plan_span.attrs["shards"] = len(plan.shards)
        plan_span.finish()
    if timing:
        stats.plan_seconds = perf_counter() - t0
    tasks = [
        ShardTask(
            index=shard.index,
            start=shard.start,
            end=shard.end,
            payload=payload(shard.start, shard.end),
            queries=tuple(query_list),
            k=k,
            cost=cost,
            backend=backend,
            trace=span is not None,
        )
        for shard in plan.shards
    ]
    t0 = perf_counter() if timing else 0.0
    dispatch_span = (
        span.child("shard_dispatch", tasks=len(tasks))
        if span is not None
        else None
    )
    results = _execute(tasks, min(workers, len(tasks)), pool)
    if dispatch_span is not None:
        for result in sorted(results, key=lambda r: r.index):
            if result.span is not None:
                dispatch_span.graft(result.span)
        dispatch_span.finish()
    if timing:
        stats.execute_seconds = perf_counter() - t0
        stats.workers = min(workers, len(tasks))
        stats.plan = plan
        stats.kernel_backend = backend
        ordered = sorted(results, key=lambda r: r.index)
        stats.shard_stats = [r.stats for r in ordered]
        stats.shard_cpu_seconds = [r.cpu_seconds for r in ordered]
    t0 = perf_counter() if timing else 0.0
    merge_span = span.child("merge") if span is not None else None
    merged = merge_rankings(results, len(query_list), k)
    if merge_span is not None:
        merge_span.finish()
    if timing:
        stats.merge_seconds = perf_counter() - t0
    return merged


def _execute(
    tasks: List[ShardTask], workers: int, pool=None
) -> List[ShardResult]:
    if len(tasks) <= 1 or (workers <= 1 and pool is None):
        return [run_shard(task) for task in tasks]
    if pool is not None:
        return pool.map(run_shard, tasks)
    import multiprocessing

    with multiprocessing.Pool(processes=workers) as local_pool:
        return local_pool.map(run_shard, tasks)


def tasm_sharded(
    query: Tree,
    source,
    k: int,
    cost: Optional[CostModel] = None,
    options: Optional[TasmOptions] = None,
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    stats: Optional[ShardedStats] = None,
    pool=None,
    backend: Optional[str] = None,
    span=None,
) -> List[Match]:
    """Single-query convenience wrapper around :func:`tasm_sharded_batch`."""
    opts = merge_options(
        options,
        "tasm_sharded",
        workers=workers,
        shards=shards,
        stats=stats,
        pool=pool,
        backend=backend,
        span=span,
    )
    return tasm_sharded_batch([query], source, k, cost, opts)[0]
