"""Deterministic merging of per-shard top-k rankings.

Safe-cut sharding puts every candidate subtree entirely inside one
shard, so the single-pass ranking is recoverable from the per-shard
rankings alone.  The single-pass streaming core offers matches to its
heap in document postorder position order and breaks distance ties in
favour of the incumbent, which makes its final ranking *exactly* the
first ``k`` elements of all candidate matches ordered by

    ``(distance, document postorder position of the matched root)``

— a total order, since roots are unique.  Each per-shard top-k is the
first ``k`` elements of that same order restricted to one shard, hence
a superset of the shard's contribution to the global ranking, and a
sort-then-truncate over the concatenated shard rankings reproduces the
single-pass result match-for-match (same distances, same roots, same
subtrees, same order) regardless of shard count or completion order.
"""

from __future__ import annotations

from typing import Iterable, List

from ..tasm.heap import Match
from ..trees.tree import Tree
from .worker import ShardResult

__all__ = ["merge_rankings"]


def merge_rankings(
    results: Iterable[ShardResult], n_queries: int, k: int
) -> List[List[Match]]:
    """Fold per-shard results into one global top-k ranking per query."""
    per_query: List[list] = [[] for _ in range(n_queries)]
    for result in results:
        for qi, ranking in enumerate(result.rankings):
            per_query[qi].extend(ranking)
    merged: List[List[Match]] = []
    for entries in per_query:
        entries.sort(key=lambda e: (e[0], e[1]))
        ranking: List[Match] = []
        for distance, root, pairs in entries[:k]:
            subtree = Tree.from_postorder(pairs)
            ranking.append(
                Match(
                    distance=distance,
                    root=root,
                    source=subtree,
                    source_root=len(subtree),
                )
            )
        merged.append(ranking)
    return merged
