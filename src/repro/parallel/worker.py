"""Per-shard TASM execution for the parallel worker pool.

A :class:`ShardTask` is a fully picklable description of one unit of
work: *which* postorder range to scan, *where* to scan it from, and the
query workload to rank.  :func:`run_shard` — a module-level function so
``multiprocessing`` can ship it to worker processes — replays the
shard through the ordinary streaming core
(:func:`repro.tasm.batch.tasm_batch`) and returns a compact,
picklable :class:`ShardResult`.

Shard streams are *forests*: a shard may contain nodes (e.g. the
document root in the last shard) whose subtrees reach outside its
range.  Safe-cut planning guarantees every such node has size >
``tau``, so the streaming core skips it via the very pruning rule that
defines ``tau`` — no special casing is needed, and every subtree the
core does evaluate lies entirely inside the shard.

Payload kinds:

* ``("pairs", (...))`` — the shard's ``(label, size)`` pairs shipped
  inline (in-memory documents);
* ``("store", path, doc_id)`` — an :class:`~repro.postorder.interval.
  IntervalStore` database file.  The worker opens its own read-only
  connection and scans exactly its range with
  :meth:`~repro.postorder.interval.IntervalStore.postorder_range`, so
  the document is never materialised in any process;
* ``("doc", document)`` — any picklable
  :class:`~repro.documents.Document` (the XML/JSON/HTML/AST frontends
  are frozen path-holders).  The worker replays the document's own
  postorder stream and slices out its range on the fly (memory stays
  at the frontend's parse state), trading repeated parse CPU for the
  streaming-memory guarantee on documents that do not fit in memory;
* ``("xml", path)`` — legacy spelling of ``("doc", XmlDocument(path))``,
  kept so pickled tasks from older coordinators still run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..errors import RankingError
from ..tasm.batch import tasm_batch
from ..tasm.options import TasmOptions
from ..tasm.postorder import PostorderStats
from ..trees.tree import Tree

__all__ = ["ShardTask", "ShardResult", "ShardMatch", "run_shard"]

#: One ranked match in wire format: (distance, global document postorder
#: position of the matched root, the matched subtree as postorder
#: ``(label, size)`` pairs).
ShardMatch = Tuple[float, int, Tuple[Tuple[object, int], ...]]


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to rank one shard."""

    index: int
    start: int  # first postorder position of the shard (1-based)
    end: int  # last postorder position, inclusive
    payload: tuple  # ("pairs", pairs) | ("store", path, doc_id)
    #                | ("doc", document) | ("xml", path)
    queries: Tuple[Tree, ...]
    k: int
    cost: object
    #: Kernel row engine, resolved by the coordinator so every worker
    #: runs the same engine the caller asked for (and reported).
    backend: str = "auto"
    #: When True the worker records a span tree for its shard and ships
    #: it back (serialised) in :attr:`ShardResult.span`.
    trace: bool = False


@dataclass(frozen=True)
class ShardResult:
    """Per-shard rankings (one list per query) plus instrumentation.

    ``cpu_seconds`` is the worker's own CPU time for its shard
    (``time.process_time``), which is independent of how many workers
    share a core; the maximum over all shards is the run's critical
    path — the wall-clock lower bound once the host has at least as
    many cores as workers.
    """

    index: int
    rankings: Tuple[Tuple[ShardMatch, ...], ...]
    stats: PostorderStats
    cpu_seconds: float = 0.0
    #: Serialised worker span tree (:meth:`repro.obs.Span.to_dict`) when
    #: the task asked for tracing — durations only, since worker clocks
    #: are not comparable to the coordinator's.
    span: Optional[dict] = None


def _shard_pairs(task: ShardTask) -> Iterable[Tuple[object, int]]:
    kind = task.payload[0]
    if kind == "pairs":
        return task.payload[1]
    if kind == "store":
        from ..postorder.interval import IntervalStore

        _, path, doc_id = task.payload
        store = IntervalStore.open_readonly(path)
        return _closing_scan(store, doc_id, task.start, task.end)
    if kind == "doc":
        return _document_range_scan(task.payload[1], task.start, task.end)
    if kind == "xml":
        from ..documents import XmlDocument

        return _document_range_scan(
            XmlDocument(task.payload[1]), task.start, task.end
        )
    raise RankingError(f"unknown shard payload kind {kind!r}")


def _closing_scan(store, doc_id: int, start: int, end: int):
    try:
        yield from store.postorder_range(doc_id, start, end)
    finally:
        store.close()


def _document_range_scan(document, start: int, end: int):
    position = 0
    for pair in document.postorder():
        position += 1
        if position < start:
            continue
        if position > end:
            break
        yield pair


def run_shard(task: ShardTask) -> ShardResult:
    """Rank ``task``'s queries over its shard; picklable in and out.

    Match roots are rebased from shard-local dequeue positions to
    global document postorder positions, so results from different
    shards merge without further context.
    """
    t0 = time.process_time()
    stats = PostorderStats()
    span = None
    if task.trace:
        from ..obs.trace import Span

        span = Span(
            "shard",
            {"index": task.index, "start": task.start, "end": task.end},
        )
    rankings = tasm_batch(
        task.queries,
        _shard_pairs(task),
        task.k,
        task.cost,
        TasmOptions(stats=stats, backend=task.backend, span=span),
    )
    if span is not None:
        span.finish()
    elapsed = time.process_time() - t0
    offset = task.start - 1
    wire: List[Tuple[ShardMatch, ...]] = []
    for ranking in rankings:
        wire.append(
            tuple(
                (m.distance, m.root + offset, tuple(m.subtree.postorder()))
                for m in ranking
            )
        )
    return ShardResult(
        index=task.index,
        rankings=tuple(wire),
        stats=stats,
        cpu_seconds=elapsed,
        span=span.to_dict() if span is not None else None,
    )
