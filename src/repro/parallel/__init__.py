"""Sharded parallel TASM (beyond the paper: the scaling layer).

The paper's candidate-size bound ``tau = k + 2|Q| - 1`` (unit costs)
does more than cap the ring buffer — it makes the postorder stream
*divisible*: wherever no subtree of size <= ``tau`` spans a position,
the stream can be cut and the segments ranked independently, then
merged into the exact single-pass ranking.

* :mod:`~repro.parallel.plan` — safe-cut detection and shard planning
  (one streaming size-only pass, O(tau) memory);
* :mod:`~repro.parallel.worker` — picklable per-shard tasks executed
  by the unmodified streaming core, over inline pair slices or
  read-only :class:`~repro.postorder.interval.IntervalStore` range
  scans;
* :mod:`~repro.parallel.merge` — deterministic
  ``(distance, postorder position)`` merge of per-shard rankings;
* :mod:`~repro.parallel.sharded` — the public
  :func:`tasm_sharded` / :func:`tasm_sharded_batch` entry points and
  the :class:`ShardedStats` instrumentation.
"""

import warnings

from .merge import merge_rankings
from .plan import Shard, ShardPlan, iter_safe_cuts, plan_shards
from .sharded import ShardedStats, tasm_sharded, tasm_sharded_batch
from .worker import ShardResult, ShardTask, run_shard


def __getattr__(name: str):
    # StoreDocument/XmlDocument moved to repro.documents; these aliases
    # warn once per import site and disappear next release.
    if name in ("StoreDocument", "XmlDocument"):
        from .. import documents

        warnings.warn(
            f"repro.parallel.{name} moved to repro.documents.{name}; "
            f"this alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(documents, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ShardTask",
    "ShardedStats",
    "StoreDocument",
    "XmlDocument",
    "iter_safe_cuts",
    "merge_rankings",
    "plan_shards",
    "run_shard",
    "tasm_sharded",
    "tasm_sharded_batch",
]
