"""TASM-dynamic (paper Algorithm 1).

The baseline algorithm: materialise the document, run one Zhang–Shasha
pass of the query against it, and read the edit distance between the
query and **every** document subtree off the prefix array
(:func:`repro.distance.ted.prefix_distance`).  A bounded max-heap keeps
the best ``k``.  Memory is O(|Q| * |T|) — the reference point that
TASM-postorder's document-independent memory is measured against.
"""

from __future__ import annotations

from typing import List, Optional

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..distance.ted import prefix_distance
from ..trees.tree import Tree
from .heap import Match, TopKHeap

__all__ = ["tasm_dynamic"]


def tasm_dynamic(
    query: Tree,
    document: Tree,
    k: int,
    cost: Optional[CostModel] = None,
    backend: str = "auto",
) -> List[Match]:
    """Top-``k`` approximate subtree matches of ``query`` in ``document``.

    Returns the ranking best-first.  Fewer than ``k`` matches are
    returned only when the document has fewer than ``k`` subtrees.
    ``backend`` selects the distance kernel's row engine.
    """
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    heap = TopKHeap(k)
    distances = prefix_distance(query, document, cost, backend)
    # Fast-reject scan: most subtrees lose against the current worst
    # ranked distance, so that comparison runs on a cached float and
    # the heap is only consulted for actual entries.
    worst = None  # None until the ranking is full
    for j in document.node_ids():
        d = distances[j]
        if worst is not None and d >= worst:
            continue
        heap.push(Match(distance=d, root=j, source=document, source_root=j))
        if heap.full:
            worst = heap.max_distance
    return heap.ranking()
