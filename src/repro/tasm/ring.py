"""The prefix ring buffer of TASM-postorder (paper Algorithm 3).

TASM-postorder never materialises the document.  It buffers just enough
of the postorder stream to decide the fate of every node: a fixed-size
ring of ``(position, label, size)`` entries whose capacity depends only
on the query size, ``k``, and the cost model — **not** on the document.
Entries enter at the tail as pairs are dequeued and leave at the head
when the maximal candidate subtree containing the head node is known
and can be evaluated (or pruned).

The buffer records its peak occupancy so experiments can verify the
paper's memory claim (Section VI-E: memory independent of document
size).
"""

from __future__ import annotations

from typing import List, Tuple

from ..errors import RankingError

__all__ = ["PrefixRingBuffer"]

Entry = Tuple[int, object, int]  # (postorder position, label, size)


class PrefixRingBuffer:
    """Fixed-capacity FIFO ring of postorder entries with random access.

    Random access (``buf[i]`` = i-th oldest entry) is what the flush
    step needs to locate the maximal buffered candidate subtree; a plain
    deque would make that O(n) per probe.
    """

    __slots__ = ("capacity", "_slots", "_head", "_count", "peak")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise RankingError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._slots: List = [None] * capacity
        self._head = 0
        self._count = 0
        #: Highest number of simultaneously buffered entries observed.
        self.peak = 0

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, i: int) -> Entry:
        if not 0 <= i < self._count:
            raise IndexError(f"ring index {i} out of range (len {self._count})")
        return self._slots[(self._head + i) % self.capacity]

    def append(self, entry: Entry) -> None:
        """Add ``entry`` at the tail; the ring must not be full."""
        if self._count >= self.capacity:
            raise RankingError("prefix ring buffer overflow")
        self._slots[(self._head + self._count) % self.capacity] = entry
        self._count += 1
        if self._count > self.peak:
            self.peak = self._count

    def popleft(self) -> Entry:
        """Remove and return the oldest entry."""
        if self._count == 0:
            raise RankingError("popleft from an empty prefix ring buffer")
        entry = self._slots[self._head]
        self._slots[self._head] = None  # drop the reference early
        self._head = (self._head + 1) % self.capacity
        self._count -= 1
        return entry
