"""TASM-postorder (paper Algorithms 2 and 3).

A single pass over a postorder queue that computes the same top-``k``
ranking as :func:`repro.tasm.dynamic.tasm_dynamic` while buffering only
O(k + |Q|) nodes — memory is independent of the document size, which is
the paper's headline result.

Two pruning rules bound the buffered prefix:

* **static** — no subtree larger than :func:`prune_threshold` can be in
  the final ranking: the first ``k`` postorder nodes of the document
  are roots of subtrees of size <= ``k`` each, so the worst ranked
  distance is at most ``max_cost * (k + |Q| - 1)``, while a subtree of
  size ``s`` costs at least ``min_indel * (s - |Q|)`` (every unmapped
  document node must be deleted).  For unit costs the threshold is the paper's
  ``k + 2|Q| - 1``.
* **dynamic** — once the heap holds ``k`` matches, the same size lower
  bound is compared against the *actual* worst ranked distance, which
  only shrinks the threshold further.

Nodes stream through a :class:`~repro.tasm.ring.PrefixRingBuffer` of
capacity ``threshold + 1``.  When the buffer is about to overflow, the
maximal candidate subtree containing the oldest entry is — provably —
already fully buffered, so it can be evaluated (one
:func:`~repro.distance.ted.prefix_distance` run scores all of its
subtrees at once) and retired.  A dequeued node larger than the
threshold can never be part of a candidate, and neither can any of its
ancestors, so its arrival retires the whole buffer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..distance.ted import prefix_distance
from ..postorder.queue import PostorderQueue
from ..trees.tree import Tree
from .heap import Match, TopKHeap
from .ring import PrefixRingBuffer

__all__ = ["PostorderStats", "prune_threshold", "tasm_postorder"]


def prune_threshold(k: int, query_size: int, cost: CostModel) -> int:
    """Largest subtree size that can appear in the top-``k`` ranking.

    ``query_size + floor(max_cost * (k + query_size - 1) / min_indel)``;
    for the unit cost model this is the paper's ``k + 2|Q| - 1``.
    """
    return query_size + int(
        cost.max_cost * (k + query_size - 1) // cost.min_indel
    )


@dataclass
class PostorderStats:
    """Instrumentation of one TASM-postorder run."""

    dequeued: int = 0
    ring_capacity: int = 0
    peak_buffered: int = 0
    candidates_evaluated: int = 0
    subtrees_scored: int = 0
    pruned_large: int = 0
    pruned_buffered: int = 0


QueueLike = Union[PostorderQueue, Tree, Iterable]


def _as_queue(source: QueueLike) -> PostorderQueue:
    if isinstance(source, PostorderQueue):
        return source
    if isinstance(source, Tree):
        return PostorderQueue.from_tree(source)
    return PostorderQueue.from_pairs(source)


def tasm_postorder(
    query: Tree,
    queue: QueueLike,
    k: int,
    cost: Optional[CostModel] = None,
    stats: Optional[PostorderStats] = None,
) -> List[Match]:
    """Top-``k`` approximate subtree matches from a postorder stream.

    ``queue`` may be a :class:`PostorderQueue` (in-memory, streamed XML,
    or an :meth:`IntervalStore.postorder_queue` scan), a :class:`Tree`,
    or a plain iterable of ``(label, size)`` pairs.  Returns the ranking
    best-first — the same distance multiset as :func:`tasm_dynamic`.
    """
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    q = _as_queue(queue)
    heap = TopKHeap(k)  # validates k
    q_size = len(query)
    static_threshold = prune_threshold(k, q_size, cost)
    buffer = PrefixRingBuffer(static_threshold + 1)
    if stats is not None:
        stats.ring_capacity = buffer.capacity

    def threshold() -> int:
        # The dynamic bound only ever tightens: the heap's max distance
        # is non-increasing once the ranking is full.
        if heap.full:
            dynamic = q_size + int(heap.max_distance // cost.min_indel)
            if dynamic < static_threshold:
                return dynamic
        return static_threshold

    def evaluate(entries: List) -> None:
        # `entries` is a complete subtree in postorder; one prefix-
        # distance run scores it and every subtree inside it.
        candidate = Tree.from_postorder(
            (label, size) for _, label, size in entries
        )
        base = entries[0][0]  # global position of the leftmost leaf
        distances = prefix_distance(query, candidate, cost)
        if stats is not None:
            stats.candidates_evaluated += 1
            stats.subtrees_scored += len(candidate)
        for local in candidate.node_ids():
            d = distances[local]
            if heap.accepts(d):
                heap.push(
                    Match(
                        distance=d,
                        root=base + local - 1,
                        source=candidate,
                        source_root=local,
                    )
                )

    def flush_head() -> None:
        # Retire the maximal candidate subtree containing the oldest
        # buffered node.  Laminarity of postorder intervals guarantees
        # it starts exactly at the head, and the capacity/arrival
        # arguments guarantee its root is already buffered.
        limit = threshold()
        head_pos = buffer[0][0]
        root_idx = -1
        for idx in range(len(buffer)):
            pos, _, size = buffer[idx]
            if pos - size + 1 <= head_pos and size <= limit:
                root_idx = idx
        if root_idx < 0:
            # The head node's subtree outgrew the (shrunken) dynamic
            # threshold after it was buffered: prune it unevaluated.
            buffer.popleft()
            if stats is not None:
                stats.pruned_buffered += 1
            return
        evaluate([buffer.popleft() for _ in range(root_idx + 1)])

    position = 0
    while not q.empty:
        label, size = q.dequeue()
        position += 1
        if size > threshold():
            # Not a candidate — and every node still buffered can never
            # be inside a *future* candidate (any subtree containing it
            # also contains this node and is therefore even larger), so
            # the whole buffer can be retired now.
            if stats is not None:
                stats.pruned_large += 1
            while len(buffer):
                flush_head()
            continue
        buffer.append((position, label, size))
        if len(buffer) == buffer.capacity:
            # Buffer spans threshold+1 positions: the maximal candidate
            # containing the head is fully determined.
            flush_head()
    while len(buffer):
        flush_head()

    if stats is not None:
        stats.dequeued = q.dequeued
        stats.peak_buffered = buffer.peak
    return heap.ranking()
