"""TASM-postorder (paper Algorithms 2 and 3).

A single pass over a postorder queue that computes the same top-``k``
ranking as :func:`repro.tasm.dynamic.tasm_dynamic` while buffering only
O(k + |Q|) nodes — memory is independent of the document size, which is
the paper's headline result.

Two pruning rules bound the buffered prefix:

* **static** — no subtree larger than :func:`prune_threshold` can be in
  the final ranking: the first ``k`` postorder nodes of the document
  are roots of subtrees of size <= ``k`` each, so the worst ranked
  distance is at most ``max_cost * (k + |Q| - 1)``, while a subtree of
  size ``s`` costs at least ``min_indel * (s - |Q|)`` (every unmapped
  document node must be deleted).  For unit costs the threshold is the paper's
  ``k + 2|Q| - 1``.
* **dynamic** — once the heap holds ``k`` matches, the same size lower
  bound is compared against the *actual* worst ranked distance, which
  only shrinks the threshold further.  The comparison is strict: a
  subtree whose lower bound *equals* the worst ranked distance can at
  best tie, and ties never evict the incumbent
  (:meth:`~repro.tasm.heap.TopKHeap.push`), so the largest admissible
  size is ``|Q| + ceil(max_distance / min_indel) - 1``.

Nodes stream through a :class:`~repro.tasm.ring.PrefixRingBuffer` of
capacity ``threshold``.  When the buffer fills, the maximal candidate
subtree containing the oldest entry is — provably — already fully
buffered (any later node covering the head would root a subtree larger
than the threshold), so it can be evaluated (one
:meth:`~repro.distance.ted.PrefixDistanceKernel.distances` run scores
all of its subtrees at once) and retired.  A dequeued node larger than
the threshold can never be part of a candidate, and neither can any of
its ancestors, so its arrival retires the whole buffer.

The same streaming core ranks several queries in one pass; see
:func:`repro.tasm.batch.tasm_batch`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from time import perf_counter
from typing import Iterable, List, Optional, Sequence, Tuple, TypedDict, Union

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..distance.ted import PrefixDistanceKernel
from ..errors import RankingError
from ..postorder.queue import PostorderQueue
from ..trees.tree import Tree
from .heap import Match, TopKHeap
from .ring import PrefixRingBuffer

__all__ = [
    "PostorderStats",
    "RING_OCCUPANCY_BUCKETS",
    "prune_threshold",
    "tasm_postorder",
]

#: Buckets of the ring-occupancy histogram: bucket ``b`` counts flush
#: events observed with ``occupancy/capacity`` in ``[b/8, (b+1)/8)``
#: (the last bucket includes a full ring).  Eight relative buckets keep
#: histograms comparable across runs with different capacities.
RING_OCCUPANCY_BUCKETS = 8


def prune_threshold(k: int, query_size: int, cost: CostModel) -> int:
    """Largest subtree size that can appear in the top-``k`` ranking.

    ``query_size + floor(max_cost * (k + query_size - 1) / min_indel)``;
    for the unit cost model this is the paper's ``k + 2|Q| - 1``.
    """
    return query_size + int(
        cost.max_cost * (k + query_size - 1) // cost.min_indel
    )


@dataclass
class PostorderStats:
    """Instrumentation of one TASM-postorder run.

    Counting invariants (asserted by the test suite): every document
    node is scored or pruned exactly once, so ``subtrees_scored +
    pruned_large + pruned_buffered == dequeued``; the static/dynamic
    split partitions the same prunes, so ``pruned_static +
    pruned_dynamic == pruned_large + pruned_buffered``.  A prune is
    *static* when the subtree exceeds the ring capacity — no heap state
    could ever admit it — and *dynamic* when only the heap-tightened
    threshold rejects it (including every buffered-entry prune: entries
    enter the ring within the then-current limit, so a later rejection
    means the limit shrank underneath them).
    """

    dequeued: int = 0
    ring_capacity: int = 0
    peak_buffered: int = 0
    candidates_evaluated: int = 0
    subtrees_scored: int = 0
    pruned_large: int = 0
    pruned_buffered: int = 0
    #: ``pruned_large + pruned_buffered`` split by pruning rule.
    pruned_static: int = 0
    pruned_dynamic: int = 0
    #: Flush events: single-head retirements (ring full) vs wholesale
    #: buffer retirements (oversized arrival or end of stream).
    head_flushes: int = 0
    wholesale_flushes: int = 0
    #: Which kernel row engine scored the candidates ("python"/"numpy").
    kernel_backend: str = ""
    #: Kernel work attributed to this run (deltas over the per-query
    #: kernels, which may be long-lived): distance computations and DP
    #: rows filled, with the numpy-engine share broken out.
    kernel_invocations: int = 0
    kernel_invocations_numpy: int = 0
    kernel_rows: int = 0
    kernel_rows_numpy: int = 0
    #: Candidate-index engine counters (zero for streaming passes):
    #: rows enumerated from the size-range scan, offers suppressed by
    #: the label-histogram lower bound (fresh or cached verdicts), and
    #: offers answered from the structure-hash dedup cache.
    index_candidates: int = 0
    index_lb_skips: int = 0
    index_dedup_hits: int = 0
    #: Stage timings.  ``total_seconds`` covers the whole pass;
    #: ``candidate_eval_seconds`` the batched candidate evaluations
    #: within it; ``kernel_seconds`` the distance computations within
    #: those.  The remainder is the scan itself (:attr:`scan_seconds`).
    total_seconds: float = 0.0
    candidate_eval_seconds: float = 0.0
    kernel_seconds: float = 0.0
    #: Ring occupancy at flush events, in :data:`RING_OCCUPANCY_BUCKETS`
    #: relative buckets — the paper's memory bound as a histogram.
    ring_occupancy: List[int] = field(
        default_factory=lambda: [0] * RING_OCCUPANCY_BUCKETS
    )

    @property
    def scan_seconds(self) -> float:
        """Time spent streaming/pruning outside candidate evaluation."""
        return max(0.0, self.total_seconds - self.candidate_eval_seconds)

    def payload(self) -> "StatsPayload":
        """JSON-ready form for ``/metrics``, ``--profile``, and bench."""
        return {
            "dequeued": self.dequeued,
            "ring_capacity": self.ring_capacity,
            "peak_buffered": self.peak_buffered,
            "candidates_evaluated": self.candidates_evaluated,
            "subtrees_scored": self.subtrees_scored,
            "pruned_large": self.pruned_large,
            "pruned_buffered": self.pruned_buffered,
            "pruned_static": self.pruned_static,
            "pruned_dynamic": self.pruned_dynamic,
            "head_flushes": self.head_flushes,
            "wholesale_flushes": self.wholesale_flushes,
            "kernel_backend": self.kernel_backend,
            "kernel_invocations": self.kernel_invocations,
            "kernel_invocations_numpy": self.kernel_invocations_numpy,
            "kernel_rows": self.kernel_rows,
            "kernel_rows_numpy": self.kernel_rows_numpy,
            "index_candidates": self.index_candidates,
            "index_lb_skips": self.index_lb_skips,
            "index_dedup_hits": self.index_dedup_hits,
            "ring_occupancy": list(self.ring_occupancy),
            "stage_seconds": {
                "total": round(self.total_seconds, 6),
                "scan": round(self.scan_seconds, 6),
                "candidate_eval": round(self.candidate_eval_seconds, 6),
                "kernel": round(self.kernel_seconds, 6),
            },
        }


class StageSecondsPayload(TypedDict):
    """Per-stage timing breakdown of one run (seconds, rounded)."""

    total: float
    scan: float
    candidate_eval: float
    kernel: float


class StatsPayload(TypedDict):
    """Wire shape of :meth:`PostorderStats.payload`."""

    dequeued: int
    ring_capacity: int
    peak_buffered: int
    candidates_evaluated: int
    subtrees_scored: int
    pruned_large: int
    pruned_buffered: int
    pruned_static: int
    pruned_dynamic: int
    head_flushes: int
    wholesale_flushes: int
    kernel_backend: str
    kernel_invocations: int
    kernel_invocations_numpy: int
    kernel_rows: int
    kernel_rows_numpy: int
    index_candidates: int
    index_lb_skips: int
    index_dedup_hits: int
    ring_occupancy: List[int]
    stage_seconds: StageSecondsPayload


QueueLike = Union[PostorderQueue, Tree, Iterable[Tuple[object, int]]]




def _as_queue(source: QueueLike) -> PostorderQueue:
    if isinstance(source, PostorderQueue):
        return source
    if isinstance(source, Tree):
        return PostorderQueue.from_tree(source)
    return PostorderQueue.from_pairs(source)


def _stream_topk(
    queries: Sequence[Tree],
    source: QueueLike,
    k: int,
    cost: CostModel,
    stats: Optional[PostorderStats],
    kernels: Optional[Sequence[PrefixDistanceKernel]] = None,
    backend: str = "auto",
    span=None,
) -> List[List[Match]]:
    """One postorder pass ranking every query; the core of Algorithms 2/3.

    The ring buffer is shared: its capacity is the *maximum* per-query
    threshold, and the pruning limit at any instant is the maximum of
    the per-query (statically or dynamically tightened) thresholds — a
    node prunable under the shared limit is prunable for every query.
    Evaluated candidates are scored once per query against that query's
    reusable :class:`PrefixDistanceKernel`; callers holding long-lived
    kernels (the serving layer's query registry) pass them in via
    ``kernels`` — one per query, built for the same query/cost pair —
    instead of paying the per-call construction.

    ``span``, if given (a :class:`repro.obs.Span`), receives one child
    per candidate evaluation batch (capped by the span's child limit)
    plus summary attributes.  Both ``stats`` and ``span`` default to
    off, and the per-node scan loop does no instrumentation work when
    they are — only flush and evaluation events pay for timing, which
    is what keeps the disabled overhead within the bench gate.
    """
    t_start = perf_counter() if stats is not None else 0.0
    if span is not None and not span:
        span = None  # NULL_SPAN: collapse to the no-op path up front
    q = _as_queue(source)
    heaps = [TopKHeap(k) for _ in queries]  # validates k
    if kernels is None:
        kernels = [
            PrefixDistanceKernel(query, cost, backend) for query in queries
        ]
    elif len(kernels) != len(queries):
        raise RankingError(
            f"got {len(kernels)} pre-built kernels for {len(queries)} queries"
        )
    if stats is not None and kernels:
        stats.kernel_backend = kernels[0].backend
    if stats is not None:
        # Kernels may be long-lived (the serving registry); attribute
        # only this run's work to the stats via before/after deltas.
        kernel_base = [
            (
                kern.calls,
                kern.calls_numpy,
                kern.rows_computed,
                kern.rows_computed_numpy,
            )
            for kern in kernels
        ]
    q_sizes = [len(query) for query in queries]
    statics = [prune_threshold(k, q_size, cost) for q_size in q_sizes]
    min_indel = cost.min_indel
    capacity = max(statics)
    buffer = PrefixRingBuffer(capacity)
    if stats is not None:
        stats.ring_capacity = capacity

    def threshold() -> int:
        # Per-query bounds only ever tighten: each heap's max distance
        # is non-increasing once its ranking is full.  The shared limit
        # is the loosest of them.
        limit = 0
        for heap, q_size, static in zip(heaps, q_sizes, statics, strict=True):
            bound = static
            if heap.full:
                # Strict: size s helps only if min_indel * (s - |Q|)
                # is strictly below the worst ranked distance.
                dynamic = q_size + ceil(heap.max_distance / min_indel) - 1
                if dynamic < bound:
                    bound = dynamic
            if bound > limit:
                limit = bound
        return limit

    # The heaps — and with them the dynamic bounds — change only inside
    # evaluate_groups(), so the shared limit is cached between
    # evaluations instead of being recomputed per dequeued node.
    limit = capacity

    def evaluate_groups(groups: List[List]) -> None:
        # Each group is a complete candidate subtree in postorder.  All
        # groups are scored in ONE prefix-distance run per query: they
        # are grafted under a virtual root, which leaves the distance
        # of every real subtree untouched (no real subtree contains the
        # virtual root) while amortising the kernel invocation across
        # the whole retirement batch.  The virtual root reuses a label
        # already present in the batch: its label only influences cells
        # that are discarded (its own row and column), and reusing a
        # real label keeps synthetic values away from user cost models
        # and label tables.
        nonlocal limit
        t0 = perf_counter() if stats is not None else 0.0
        batch_span = (
            span.child("candidate_eval", groups=len(groups))
            if span is not None
            else None
        )
        pairs: List = []
        positions: List[int] = [0]  # local id -> global postorder position
        for entries in groups:
            for entry in entries:
                positions.append(entry[0])
                pairs.append(entry[1:])
        total = len(pairs)
        pairs.append((pairs[0][0], total + 1))
        candidate = Tree.from_postorder(pairs)
        if stats is not None:
            stats.candidates_evaluated += len(groups)
            stats.subtrees_scored += total
        for kernel, heap in zip(kernels, heaps, strict=True):
            if stats is not None:
                tk = perf_counter()
                distances = kernel.distances(candidate)
                stats.kernel_seconds += perf_counter() - tk
            else:
                distances = kernel.distances(candidate)
            # Fast-reject against a cached worst ranked distance; the
            # heap is only consulted for actual entries.  The virtual
            # root (local id total + 1) is never offered.
            worst = heap.max_distance if heap.full else None
            for local in range(1, total + 1):
                d = distances[local]
                if worst is not None and d >= worst:
                    continue
                heap.push(
                    Match(
                        distance=d,
                        root=positions[local],
                        source=candidate,
                        source_root=local,
                    )
                )
                if heap.full:
                    worst = heap.max_distance
        limit = threshold()
        if stats is not None:
            stats.candidate_eval_seconds += perf_counter() - t0
        if batch_span is not None:
            batch_span.attrs["subtrees"] = total
            batch_span.finish()

    def pop_head_candidate() -> Optional[List]:
        # Pop the maximal candidate subtree containing the oldest
        # buffered node, or prune the head and return None if no
        # buffered candidate within the limit covers it (its subtree
        # outgrew the shrunken dynamic threshold after buffering).
        # Laminarity of postorder intervals guarantees the candidate
        # starts exactly at the head, and the capacity/arrival
        # arguments guarantee its root is already buffered.  The
        # buffered entries cover consecutive stream positions (appends
        # are consecutive, flushes pop a prefix, and oversized arrivals
        # empty the buffer before being skipped), so the root search
        # walks backwards from the tail jumping over whole subtrees:
        # an entry of size s that does not reach the head closes a
        # complete subtree occupying the s entries ending at it.  Each
        # probe therefore lands on a maximal candidate root or an
        # ancestor of the head, never on interior nodes; ancestors of
        # the head form a chain of strictly growing sizes, so the
        # topmost one within the limit roots the maximal candidate.
        head_pos = buffer[0][0]
        idx = len(buffer) - 1
        while idx >= 0:
            pos, _, size = buffer[idx]
            if pos - size + 1 <= head_pos:
                if size <= limit:
                    return [buffer.popleft() for _ in range(idx + 1)]
                idx -= 1
            else:
                idx -= size
        buffer.popleft()
        if stats is not None:
            stats.pruned_buffered += 1
            # Buffered entries arrived within the then-current limit;
            # only dynamic tightening can have outgrown them since.
            stats.pruned_dynamic += 1
        return None

    def sample_occupancy() -> None:
        # One histogram observation per flush event — the retirement
        # points are where occupancy is about to change, and sampling
        # there keeps the scan loop itself instrumentation-free.
        occ = len(buffer)
        stats.ring_occupancy[
            min(
                RING_OCCUPANCY_BUCKETS - 1,
                occ * RING_OCCUPANCY_BUCKETS // capacity,
            )
        ] += 1

    def flush_head() -> None:
        # Retire the head's maximal candidate to free one ring slot.
        if stats is not None:
            stats.head_flushes += 1
            sample_occupancy()
        group = pop_head_candidate()
        if group is not None:
            evaluate_groups([group])

    def flush_all() -> None:
        # Wholesale retirement: every buffered node's fate is decided
        # (an oversized node arrived, or the stream ended), so all the
        # maximal candidates in the buffer are collected first and
        # scored in a single batched evaluation per query.  Evaluating
        # with the pre-batch limit can only score *extra* subtrees
        # whose lower bound already ties the worst ranked distance —
        # the strict heap test rejects them, so the ranking is the
        # same as sequential flushing.
        if stats is not None and len(buffer):
            stats.wholesale_flushes += 1
            sample_occupancy()
        groups: List[List] = []
        while len(buffer):
            group = pop_head_candidate()
            if group is not None:
                groups.append(group)
        if groups:
            evaluate_groups(groups)

    position = 0
    for label, size in q:
        position += 1
        if size > limit:
            # Not a candidate — and every node still buffered can never
            # be inside a *future* candidate (any subtree containing it
            # also contains this node and is therefore even larger), so
            # the whole buffer can be retired now.
            if stats is not None:
                stats.pruned_large += 1
                if size > capacity:
                    stats.pruned_static += 1
                else:
                    # Within the static bound but over the current
                    # limit: only the heap-tightened threshold prunes.
                    stats.pruned_dynamic += 1
            flush_all()
            continue
        buffer.append((position, label, size))
        if len(buffer) == capacity:
            # The buffer spans `capacity` positions: any later node
            # covering the head roots a subtree larger than every
            # threshold, so the maximal candidate containing the head
            # is fully determined.
            flush_head()
    flush_all()

    if stats is not None:
        stats.dequeued = q.dequeued
        stats.peak_buffered = buffer.peak
        for kern, (c, cn, r, rn) in zip(kernels, kernel_base, strict=True):
            stats.kernel_invocations += kern.calls - c
            stats.kernel_invocations_numpy += kern.calls_numpy - cn
            stats.kernel_rows += kern.rows_computed - r
            stats.kernel_rows_numpy += kern.rows_computed_numpy - rn
        stats.total_seconds += perf_counter() - t_start
    if span is not None:
        span.attrs.update(
            queries=len(queries), k=k, ring_capacity=capacity
        )
    return [heap.ranking() for heap in heaps]


def tasm_postorder(
    query: Tree,
    queue: QueueLike,
    k: int,
    cost: Optional[CostModel] = None,
    stats: Optional[PostorderStats] = None,
    backend: str = "auto",
    span=None,
) -> List[Match]:
    """Top-``k`` approximate subtree matches from a postorder stream.

    ``queue`` may be a :class:`PostorderQueue` (in-memory, streamed XML,
    or an :meth:`IntervalStore.postorder_queue` scan), a :class:`Tree`,
    or a plain iterable of ``(label, size)`` pairs.  Returns the ranking
    best-first — the same distance multiset as :func:`tasm_dynamic`.
    ``backend`` selects the distance kernel's row engine
    (:func:`~repro.distance.ted.resolve_backend`); ``stats`` and
    ``span`` opt into counters and tracing (see :func:`_stream_topk`).
    """
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    return _stream_topk(
        [query], queue, k, cost, stats, backend=backend, span=span
    )[0]
