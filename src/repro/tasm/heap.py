"""Top-k ranking heap (paper Section II, Definition 3 context).

TASM maintains the *k best matches seen so far* in a max-heap keyed by
edit distance: the root is the worst match in the ranking, so a new
candidate either beats it (replace) or is discarded in O(log k).  The
heap's :attr:`~TopKHeap.max_distance` doubles as the pruning threshold
of TASM-postorder — once the ranking is full, any subtree whose distance
lower bound exceeds it can be skipped.

Misuse (``k <= 0``, reading the max of an empty ranking, negative
distances) raises :class:`~repro.errors.RankingError`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import RankingError
from ..trees.tree import Tree

__all__ = ["Match", "TopKHeap"]


@dataclass(frozen=True)
class Match:
    """One ranked subtree match.

    ``root`` is the postorder identifier of the subtree root within the
    *document* (for streamed documents: the global dequeue position,
    which equals the document postorder id).  The matched subtree itself
    is sliced lazily from ``source`` to keep heap entries cheap.
    """

    distance: float
    root: int
    source: Tree = field(repr=False, compare=False)
    source_root: int = field(repr=False, compare=False)

    @property
    def subtree(self) -> Tree:
        """The matched subtree as a standalone :class:`Tree`."""
        return self.source.subtree(self.source_root)

    @property
    def label(self):
        """Label of the matched subtree's root."""
        return self.source.label(self.source_root)


class TopKHeap:
    """Bounded max-heap of the ``k`` smallest-distance matches."""

    __slots__ = ("k", "_heap", "_pushed")

    def __init__(self, k: int):
        if not isinstance(k, int) or isinstance(k, bool) or k <= 0:
            raise RankingError(f"k must be a positive integer, got {k!r}")
        self.k = k
        # Entries are (-distance, -order, match): a max-heap by distance
        # via negation; the unique order stamp breaks distance ties
        # (preferring earlier pushes) without ever comparing matches.
        self._heap: List[Tuple[float, int, Match]] = []
        self._pushed = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True once the ranking holds ``k`` matches."""
        return len(self._heap) >= self.k

    @property
    def max_distance(self) -> float:
        """Distance of the worst match in the ranking (pruning bound)."""
        if not self._heap:
            raise RankingError("max_distance of an empty ranking")
        return -self._heap[0][0]

    def accepts(self, distance: float) -> bool:
        """Would a match at ``distance`` enter the ranking right now?"""
        if distance < 0:
            raise RankingError(f"distances must be >= 0, got {distance}")
        return not self.full or distance < self.max_distance

    def push(self, match: Match) -> bool:
        """Offer ``match`` to the ranking; returns True if it entered.

        When the ranking is full the worst match is evicted only for a
        strictly smaller distance (ties keep the incumbent, as the paper
        allows any consistent tie-breaking).
        """
        if not self.accepts(match.distance):
            return False
        self._pushed += 1
        entry = (-match.distance, -self._pushed, match)
        if self.full:
            heapq.heapreplace(self._heap, entry)
        else:
            heapq.heappush(self._heap, entry)
        return True

    def ranking(self) -> List[Match]:
        """The matches sorted best-first (distance, then push order)."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (-e[0], -e[1]))
        ]
