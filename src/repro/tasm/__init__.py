"""Top-k Approximate Subtree Matching (the paper's contribution).

* :mod:`~repro.tasm.heap` — :class:`TopKHeap` ranking and :class:`Match`.
* :mod:`~repro.tasm.ring` — the prefix ring buffer of Algorithm 3.
* :mod:`~repro.tasm.dynamic` — :func:`tasm_dynamic` (Algorithm 1),
  memory O(|Q| * |T|).
* :mod:`~repro.tasm.postorder` — :func:`tasm_postorder` (Algorithms
  2/3), one pass over a postorder queue with memory independent of the
  document size.
* :mod:`~repro.tasm.batch` — :func:`tasm_batch`, many queries ranked in
  a single shared document pass.
* :mod:`~repro.tasm.options` — :class:`TasmOptions`, the execution
  surface threaded through every entry point.
"""

from .batch import tasm_batch
from .dynamic import tasm_dynamic
from .heap import Match, TopKHeap
from .options import TasmOptions
from .postorder import PostorderStats, prune_threshold, tasm_postorder
from .ring import PrefixRingBuffer

__all__ = [
    "Match",
    "TasmOptions",
    "TopKHeap",
    "PrefixRingBuffer",
    "PostorderStats",
    "prune_threshold",
    "tasm_batch",
    "tasm_dynamic",
    "tasm_postorder",
]
