"""Execution options for the TASM entry points.

:func:`~repro.tasm.batch.tasm_batch` grew one keyword per PR —
``workers``, ``kernels``, ``backend``, ``engine``, ``span``, ``stats``
— and the sharded/indexed/serve layers each re-declared the sprawl.
:class:`TasmOptions` collapses the execution surface into one value
that threads through every layer unchanged; the ranking *semantics*
(queries, document, ``k``, cost model) stay positional parameters,
because changing them changes the answer while options only change how
it is computed.

Every field defaults to ``None`` = "unset", so one options object works
across entry points whose defaults differ (``tasm_batch`` defaults
``engine="auto"``, ``tasm_sharded_batch`` defaults ``"stream"``);
:meth:`TasmOptions.get` applies the callee's default.

The old per-function keywords still work for one release:
:func:`merge_options` folds them in with a :class:`DeprecationWarning`,
and raises if the same field is set both ways.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, Optional, Sequence

from ..errors import RankingError

__all__ = ["TasmOptions", "merge_options"]


@dataclass
class TasmOptions:
    """How to execute a TASM ranking (not *what* to rank).

    ``None`` means "use the entry point's default".  Fields:

    * ``stats``   — a :class:`~repro.tasm.postorder.PostorderStats` /
      :class:`~repro.parallel.sharded.ShardedStats` to fill in;
    * ``workers`` — process count for the sharded path (1 = inline);
    * ``shards``  — shard count (defaults to ``workers``);
    * ``kernels`` — pre-built per-query
      :class:`~repro.distance.ted.PrefixDistanceKernel` instances;
    * ``pool``    — a running ``multiprocessing.Pool`` to reuse;
    * ``backend`` — kernel row engine (``"auto"|"python"|"numpy"``);
    * ``span``    — a :class:`repro.obs.Span` to hang child spans off;
    * ``engine``  — ranking strategy (``"auto"|"stream"|"indexed"``).
    """

    stats: Optional[Any] = None
    workers: Optional[int] = None
    shards: Optional[int] = None
    kernels: Optional[Sequence[Any]] = None
    pool: Optional[Any] = None
    backend: Optional[str] = None
    span: Optional[Any] = None
    engine: Optional[str] = None

    def get(self, name: str, default: Any = None) -> Any:
        """The field's value, or ``default`` where unset."""
        value = getattr(self, name)
        return default if value is None else value


def merge_options(
    options: Optional[TasmOptions], where: str, **legacy: Any
) -> TasmOptions:
    """Combine ``options`` with an entry point's legacy keyword aliases.

    Any legacy keyword passed as non-``None`` triggers one
    :class:`DeprecationWarning` naming the replacements; a field set
    both ways raises :class:`~repro.errors.RankingError` instead of
    silently picking one.  Returns a fresh :class:`TasmOptions` — the
    caller's object is never mutated.
    """
    if options is not None and not isinstance(options, TasmOptions):
        raise RankingError(
            f"{where}: options must be a TasmOptions, got {options!r}"
        )
    known = {f.name for f in fields(TasmOptions)}
    unknown = set(legacy) - known
    if unknown:
        raise RankingError(
            f"{where}: unknown option field(s) {sorted(unknown)}"
        )
    used = {name: value for name, value in legacy.items() if value is not None}
    merged = replace(options) if options is not None else TasmOptions()
    if not used:
        return merged
    names = ", ".join(sorted(used))
    warnings.warn(
        f"{where}: the {names} keyword(s) are deprecated and will be "
        f"removed in the next release; pass options=TasmOptions(...) "
        f"instead",
        DeprecationWarning,
        stacklevel=3,
    )
    for name, value in used.items():
        if getattr(merged, name) is not None:
            raise RankingError(
                f"{where}: {name} was passed both via options= and as a "
                f"deprecated keyword; set it once"
            )
        setattr(merged, name, value)
    return merged
