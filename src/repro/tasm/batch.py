"""Batch TASM: rank many queries in one pass over the document.

Scanning a multi-gigabyte postorder queue dominates the cost of a TASM
run, so amortising the scan over a *workload* of queries is the natural
batching step (the paper evaluates one query per pass; the streaming
machinery of Algorithms 2/3 is oblivious to how many rankings hang off
it).  :func:`tasm_batch` shares one prefix ring buffer across all
queries — sized by the **largest** per-query threshold, with the pruning
limit at any instant the maximum of the per-query thresholds, so every
prune decision is provably safe for every query — and scores each
retired candidate against each query's reusable
:class:`~repro.distance.ted.PrefixDistanceKernel`.

Memory stays independent of the document size: O(sum_i (k + |Q_i|)) for
the heaps and kernels plus the shared ring of max_i (k + 2|Q_i| - 1)
entries (unit costs).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..distance.cost import CostModel, UnitCostModel, validate_cost_model
from ..documents import Document, StoreDocument
from ..errors import RankingError
from ..trees.tree import Tree
from .heap import Match
from .options import TasmOptions, merge_options
from .postorder import PostorderStats, QueueLike, _stream_topk

__all__ = ["ENGINES", "tasm_batch"]

#: Accepted values of ``tasm_batch``'s ``engine`` parameter.
ENGINES = ("auto", "stream", "indexed")


def _store_pairs(path: str, doc_id: int) -> Iterator[Tuple[str, int]]:
    """Stream a stored document's postorder pairs, closing on exhaustion."""
    from ..postorder.interval import IntervalStore

    store = IntervalStore.open_readonly(path)
    try:
        yield from store.postorder_pairs(doc_id)
    finally:
        store.close()


def tasm_batch(
    queries: Iterable[Tree],
    queue: QueueLike,
    k: int,
    cost: Optional[CostModel] = None,
    options: Optional[TasmOptions] = None,
    *,
    stats: Optional[PostorderStats] = None,
    workers: Optional[int] = None,
    kernels=None,
    backend: Optional[str] = None,
    span=None,
    engine: Optional[str] = None,
) -> List[List[Match]]:
    """Top-``k`` rankings of every query in one document pass.

    Returns one best-first ranking per query, in query order — each
    identical to what :func:`~repro.tasm.postorder.tasm_postorder`
    (and :func:`~repro.tasm.dynamic.tasm_dynamic`) would return for
    that query alone.

    ``queue`` is anything postorder-queue-shaped: a
    :class:`~repro.trees.tree.Tree`, a pair iterable, or any
    :class:`~repro.documents.Document` — the store/XML/JSON/HTML/AST
    frontends all route through here identically.

    ``options`` (a :class:`~repro.tasm.options.TasmOptions`) carries
    the execution surface; the trailing keywords are deprecated
    aliases kept for one release:

    * ``stats`` instruments the single shared pass (ring capacity is
      the largest per-query threshold); with ``workers > 1`` it
      receives the aggregate over all shards.
    * ``workers > 1`` splits the document at safe postorder cuts and
      ranks on a process pool (:mod:`repro.parallel`); the result —
      including tie order — is identical to the single-pass run.
    * ``kernels`` — one pre-built
      :class:`~repro.distance.ted.PrefixDistanceKernel` per query,
      built for the same query/cost pair — skips per-call kernel
      construction in the single-pass path (long-lived callers such as
      :class:`repro.serve.registry.QueryRegistry` hold them for the
      process lifetime).  Worker processes build their own kernels, so
      ``kernels`` cannot be combined with ``workers > 1``.
    * ``backend`` selects the kernel row engine for kernels built here
      (including by shard workers); pre-built ``kernels`` carry their
      own.
    * ``span``, if given (a :class:`repro.obs.Span`), collects child
      spans for the pass — candidate evaluation batches in the
      single-pass path, shard plan/dispatch/merge (with per-worker
      spans grafted back across the process boundary) in the sharded
      path.
    * ``engine`` selects the ranking strategy for store-backed
      documents (``queue`` a :class:`~repro.documents.StoreDocument`):
      ``"indexed"`` ranks from the candidate index
      (:func:`repro.index.engine.tasm_indexed_batch`, byte-identical
      rankings, O(candidates) instead of O(|T|)), ``"stream"`` forces
      the scanning pass, and ``"auto"`` (the default) uses the index
      exactly when the document has one.  The indexed path is a single
      SQL-backed pass, so ``workers`` is ignored there; requesting
      ``"indexed"`` for a non-store source, or for a store document
      without an index, raises.
    """
    opts = merge_options(
        options,
        "tasm_batch",
        stats=stats,
        workers=workers,
        kernels=kernels,
        backend=backend,
        span=span,
        engine=engine,
    )
    stats = opts.stats
    workers = opts.get("workers", 1)
    kernels = opts.kernels
    backend = opts.get("backend", "auto")
    span = opts.span
    engine = opts.get("engine", "auto")
    query_list = list(queries)
    if not query_list:
        raise RankingError("tasm_batch needs at least one query")
    if cost is None:
        cost = UnitCostModel()
    validate_cost_model(cost)
    if engine not in ENGINES:
        raise RankingError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    if isinstance(queue, StoreDocument):
        from ..postorder.interval import IntervalStore

        if engine != "stream":
            store = IntervalStore.open_readonly(queue.path)
            try:
                if engine == "indexed" or store.has_index(queue.doc_id):
                    from ..index.engine import tasm_indexed_batch

                    return tasm_indexed_batch(
                        query_list,
                        store,
                        queue.doc_id,
                        k,
                        cost,
                        TasmOptions(
                            stats=stats,
                            kernels=kernels,
                            backend=backend,
                            span=span,
                        ),
                    )
            finally:
                store.close()
        if workers <= 1:
            return _stream_topk(
                query_list,
                _store_pairs(queue.path, queue.doc_id),
                k,
                cost,
                stats,
                kernels=kernels,
                backend=backend,
                span=span,
            )
        # workers > 1 falls through to the sharded path below, which
        # consumes StoreDocument sources natively.
    elif isinstance(queue, Document) and not isinstance(queue, Tree):
        # Any frontend document (XML/JSON/HTML/AST or third-party): the
        # engine just streams its postorder queue.
        if engine == "indexed":
            raise RankingError(
                "engine='indexed' needs a StoreDocument source (the "
                "candidate index lives in the store file)"
            )
        if workers <= 1:
            return _stream_topk(
                query_list,
                queue.postorder(),
                k,
                cost,
                stats,
                kernels=kernels,
                backend=backend,
                span=span,
            )
        # workers > 1 falls through to the sharded path below, which
        # consumes Document sources natively.
    elif engine == "indexed":
        raise RankingError(
            "engine='indexed' needs a StoreDocument source (the candidate "
            "index lives in the store file)"
        )
    if workers > 1:
        if kernels is not None:
            raise RankingError("kernels cannot be combined with workers > 1")
        from ..parallel.sharded import ShardedStats, tasm_sharded_batch

        sharded_stats = ShardedStats() if stats is not None else None
        rankings = tasm_sharded_batch(
            query_list,
            queue,
            k,
            cost,
            TasmOptions(
                workers=workers,
                stats=sharded_stats,
                backend=backend,
                span=span,
            ),
        )
        if stats is not None:
            for name in (
                "dequeued",
                "ring_capacity",
                "peak_buffered",
                "candidates_evaluated",
                "subtrees_scored",
                "pruned_large",
                "pruned_buffered",
                "pruned_static",
                "pruned_dynamic",
                "head_flushes",
                "wholesale_flushes",
                "kernel_backend",
                "kernel_invocations",
                "kernel_invocations_numpy",
                "kernel_rows",
                "kernel_rows_numpy",
                "index_candidates",
                "index_lb_skips",
                "index_dedup_hits",
                "total_seconds",
                "candidate_eval_seconds",
                "kernel_seconds",
                "ring_occupancy",
            ):
                setattr(stats, name, getattr(sharded_stats, name))
        return rankings
    return _stream_topk(
        query_list,
        queue,
        k,
        cost,
        stats,
        kernels=kernels,
        backend=backend,
        span=span,
    )
