"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so callers can catch
one base class.  Parsing and validation problems get dedicated types so
tests can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TreeStructureError(ReproError):
    """An operation received a malformed or inconsistent tree."""


class BracketSyntaxError(ReproError, ValueError):
    """Bracket-notation input could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class PostorderQueueError(ReproError):
    """A postorder queue was malformed (bad sizes) or misused."""


class StoreSchemaError(PostorderQueueError):
    """An IntervalStore file uses a schema this library cannot handle.

    Raised when a store file's recorded ``schema_version`` is newer
    than the version this code supports — opening it (even read-only)
    could silently misread tables whose meaning changed.  Older files
    are upgraded in place on read-write open and lazily backfilled
    (:meth:`~repro.postorder.interval.IntervalStore.ensure_index`), so
    they never raise.
    """


class XmlFormatError(ReproError, ValueError):
    """XML input could not be converted to an ordered labeled tree."""


class DocumentFormatError(ReproError, ValueError):
    """A document's format was unknown or its content unparseable.

    The base class of every frontend parse failure
    (:class:`JsonFormatError`, :class:`HtmlFormatError`,
    :class:`PythonSourceError`) and of format autodetection failures —
    ``repro tasm somefile.unknown`` dies with this instead of a
    traceback from whichever parser happened to choke first.
    """


class JsonFormatError(DocumentFormatError):
    """JSON input could not be converted to an ordered labeled tree."""


class HtmlFormatError(DocumentFormatError):
    """HTML input could not be converted to an ordered labeled tree."""


class PythonSourceError(DocumentFormatError):
    """Python source/package input could not be converted to a tree."""


class CostModelError(ReproError, ValueError):
    """A cost model violates the paper's requirements (``cst(x) >= 1``)."""


class BackendError(ReproError, ValueError):
    """A kernel backend was unknown or its dependency is missing."""


class RankingError(ReproError):
    """A top-k ranking request was invalid (e.g. ``k <= 0``)."""


class DatasetError(ReproError, ValueError):
    """A synthetic-corpus request was invalid (unknown name, bad size)."""


class ServeError(ReproError):
    """A serving-layer request was invalid or referenced unknown state.

    ``status`` is the HTTP status the front end should answer with
    (400 for malformed requests, 404 for unknown queries/documents).
    """

    def __init__(self, message: str, status: int = 400):
        self.status = status
        super().__init__(message)
