"""Python-AST frontend: code-clone search over source trees.

Turns Python source into postorder queues via the stdlib ``ast``
module, at three granularities sharing one label alphabet:

* a **package directory** — root labeled the directory's basename;
  children, sorted by entry name, are sub-directories that contain
  Python code (recursively encoded the same way) and ``*.py`` modules;
* a **module file** — node labeled the file name (``"parse.py"``) with
  a single child, the module's AST;
* an **AST node** — label is the node type name (``"FunctionDef"``,
  ``"BinOp"``, ...); children follow ``ast.iter_fields`` order, nested
  nodes and list elements flattened in sequence, and atomic field
  values (identifiers, constants, operators' operands) becoming
  ``Text`` leaves via ``str(...)``.  ``ctx`` fields (Load/Store/Del),
  ``type_comment``, and ``type_ignores`` carry no clone-relevant
  information and are skipped.

A query is typically a snippet lifted through :func:`tree_from_source`
(root ``"Module"``) and ranked against an ingested package tree.

Memory: directory walks stream one module at a time, but each module's
AST is materialised by ``ast.parse`` — the guarantee is O(largest
module), not O(corpus).  That is the streaming contract every other
frontend keeps, weakened only at module granularity (CPython offers no
incremental parser), and it is what makes whole-package ingestion into
an :class:`~repro.postorder.interval.IntervalStore` practical.
"""

from __future__ import annotations

import ast
import os
from typing import Iterator, List, Sequence, Tuple, Union

from ..errors import PythonSourceError
from ..trees.tree import Tree
from ..xmlio.types import Text

__all__ = [
    "iterparse_postorder",
    "tree_from_source",
]

Source = Union[str, "os.PathLike[str]"]

#: AST fields that never matter for clone detection.
_SKIPPED_FIELDS = frozenset({"ctx", "type_comment", "type_ignores"})

# Lazy tree items: expansion is deferred so a directory walk holds one
# module AST at a time, never the corpus.
_Item = Tuple[str, object]


def _ast_children(node: ast.AST) -> List[_Item]:
    out: List[_Item] = []
    for name, value in ast.iter_fields(node):
        if name in _SKIPPED_FIELDS:
            continue
        if isinstance(value, ast.AST):
            out.append(("ast", value))
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.AST):
                    out.append(("ast", item))
                else:
                    # e.g. Global.names; None keeps dict-unpacking
                    # key slots aligned with their values.
                    out.append(("leaf", Text(str(item))))
        elif value is not None:
            out.append(("leaf", Text(str(value))))
    return out


def _has_python(path: str) -> bool:
    for _, dirnames, filenames in os.walk(path):
        dirnames[:] = [
            d for d in dirnames if not d.startswith(".") and d != "__pycache__"
        ]
        if any(f.endswith(".py") for f in filenames):
            return True
    return False


def _dir_children(path: str) -> List[_Item]:
    out: List[_Item] = []
    try:
        entries = sorted(os.listdir(path))
    except OSError as exc:
        raise PythonSourceError(f"cannot list {path!r}: {exc}") from exc
    for name in entries:
        if name.startswith(".") or name == "__pycache__":
            continue
        full = os.path.join(path, name)
        if os.path.isdir(full):
            if _has_python(full):
                out.append(("dir", full))
        elif name.endswith(".py"):
            out.append(("module", full))
    return out


def _parse_module(path: str) -> ast.Module:
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        return ast.parse(text, filename=path)
    except SyntaxError as exc:
        raise PythonSourceError(f"cannot parse {path!r}: {exc}") from exc
    except OSError as exc:
        raise PythonSourceError(f"cannot read {path!r}: {exc}") from exc


def _expand(item: _Item) -> Tuple[object, Sequence[_Item]]:
    kind, value = item
    if kind == "leaf":
        return value, ()
    if kind == "ast":
        if not isinstance(value, ast.AST):
            raise PythonSourceError(f"malformed walk item: {item!r}")
        return type(value).__name__, _ast_children(value)
    path = str(value)
    if kind == "module":
        return os.path.basename(path), [("ast", _parse_module(path))]
    # kind == "dir"
    return os.path.basename(os.path.normpath(path)), _dir_children(path)


class _WalkFrame:
    """One open node of the lazy walk: label, remaining children,
    descendant count so far."""

    __slots__ = ("label", "children", "next_child", "descendants")

    def __init__(self, label: object, children: Sequence[_Item]):
        self.label = label
        self.children = children
        self.next_child = 0
        self.descendants = 0


def _walk(root: _Item) -> Iterator[Tuple[object, int]]:
    # Iterative postorder with explicit descendant counters, so deeply
    # nested code cannot hit the interpreter recursion limit.
    stack = [_WalkFrame(*_expand(root))]
    while stack:
        top = stack[-1]
        if top.next_child < len(top.children):
            child = top.children[top.next_child]
            top.next_child += 1
            stack.append(_WalkFrame(*_expand(child)))
            continue
        stack.pop()
        size = top.descendants + 1
        yield top.label, size
        if stack:
            stack[-1].descendants += size


def iterparse_postorder(source: Source) -> Iterator[Tuple[object, int]]:
    """Stream a postorder queue (Definition 2) from Python source.

    ``source`` is a ``*.py`` file or a package directory; directories
    are walked module by module (memory O(largest module)).
    """
    path = os.fspath(source)
    if os.path.isdir(path):
        if not _has_python(path):
            raise PythonSourceError(f"no Python modules under {path!r}")
        yield from _walk(("dir", path))
    elif path.endswith(".py"):
        yield from _walk(("module", path))
    else:
        raise PythonSourceError(
            f"expected a .py file or a package directory, got {path!r}"
        )


def tree_from_source(text: str, filename: str = "<query>") -> Tree:
    """Parse a source snippet into a query :class:`Tree` (root
    ``"Module"``), encoded exactly like an ingested module's AST."""
    try:
        module = ast.parse(text, filename=filename)
    except SyntaxError as exc:
        raise PythonSourceError(f"cannot parse {filename}: {exc}") from exc
    return Tree.from_postorder(_walk(("ast", module)))
