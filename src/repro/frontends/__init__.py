"""Workload frontends: tree-shaped formats beyond XML.

TASM's engine only ever consumes a postorder queue (Definition 2) —
nothing in the streaming core, the sharded planner, or the candidate
index is XML-specific.  Each frontend here turns one more tree-shaped
format into that queue, mirroring :mod:`repro.xmlio`'s contract:

* :mod:`repro.frontends.jsonio` — JSON documents (API payload / config
  similarity search; key-weighted cost model);
* :mod:`repro.frontends.htmlio` — HTML DOMs via the stdlib
  ``html.parser`` (near-duplicate page / template detection;
  tag-class-weighted cost model);
* :mod:`repro.frontends.astio` — Python program ASTs via the stdlib
  ``ast`` module (code-clone search over a package tree).

Every frontend ships a streaming ``iterparse_postorder`` preserving the
O(tau) memory guarantee the way :func:`repro.xmlio.parse.
iterparse_postorder` does, and is differential-tested byte-identical to
ranking the bracket-notation encoding of the same tree.  The
:class:`~repro.documents.Document` wrappers in :mod:`repro.documents`
are the uniform entry point.
"""

from __future__ import annotations

__all__ = ["astio", "htmlio", "jsonio"]
