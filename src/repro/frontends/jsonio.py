"""JSON frontend: stream a JSON document as a postorder queue.

Encoding conventions (fixed — the differential tests and the
key-weighted cost model depend on them):

* object  — node labeled ``"object"`` with one child per key **in
  document order**, labeled ``"$" + key``, whose single child is the
  value's subtree;
* array   — node labeled ``"array"`` with one child per element, in
  order;
* string  — leaf labeled ``Text(value)``;
* number  — leaf labeled ``Text(canonical)`` (integers via ``int``,
  everything else via ``repr(float(...))``, so ``1e2`` and ``100.0``
  compare equal);
* ``true`` / ``false`` / ``null`` — leaves labeled by the literal.

Object keys keep document order: sorting them (the way XML attributes
are sorted) would force buffering a whole object before emitting its
first pair, and the point of this parser is the streaming guarantee —
memory stays O(nesting depth + one token), never the document.  That is
also why the tokenizer is hand-rolled over chunked reads: the stdlib
``json`` module materialises the entire value before returning.

Keys are prefixed with ``"$"`` the same way XML attributes are prefixed
with ``"@"``: the prefix is part of the label, so the cost model (and
the bracket round-trip) classify by *content* alone.  A string scalar
whose text happens to start with ``"$"`` is therefore weighted like a
key — the flat label alphabet of the paper accepts this ambiguity, as
it does for ``"@"`` in XML.
"""

from __future__ import annotations

import os
from json.decoder import scanstring
from typing import IO, Iterator, List, Tuple, Union

from ..distance.cost import CostModel
from ..errors import CostModelError, JsonFormatError
from ..xmlio.types import Text

__all__ = [
    "ARRAY_LABEL",
    "KEY_PREFIX",
    "OBJECT_LABEL",
    "KeyWeightedCostModel",
    "is_key_label",
    "iterparse_postorder",
    "json_value_nodes",
]

Source = Union[str, "os.PathLike[str]", IO[str]]

KEY_PREFIX = "$"
OBJECT_LABEL = "object"
ARRAY_LABEL = "array"

_WS = " \t\n\r"
_NUMBER_CHARS = frozenset("+-0123456789.eE")
_CHUNK = 1 << 16


def is_key_label(label: object) -> bool:
    """True iff ``label`` denotes a JSON object key node (``$name``)."""
    return isinstance(label, str) and label.startswith(KEY_PREFIX)


class _Scanner:
    """Chunked pull tokenizer over a text stream.

    Holds at most one read chunk plus the token spanning a chunk
    boundary; consumed text is dropped on every refill, so memory is
    O(chunk + longest token), independent of the document.
    """

    __slots__ = ("_fh", "_buf", "_pos", "_eof", "_base")

    def __init__(self, fh: IO[str]):
        self._fh = fh
        self._buf = ""
        self._pos = 0
        self._eof = False
        self._base = 0  # absolute offset of _buf[0], for error messages

    def offset(self) -> int:
        return self._base + self._pos

    def _refill(self) -> bool:
        if self._eof:
            return False
        if self._pos:
            self._base += self._pos
            self._buf = self._buf[self._pos :]
            self._pos = 0
        chunk = self._fh.read(_CHUNK)
        if not chunk:
            self._eof = True
            return False
        self._buf += chunk
        return True

    def peek(self) -> str:
        """Next non-whitespace character, not consumed; ``""`` at EOF."""
        while True:
            buf = self._buf
            n = len(buf)
            pos = self._pos
            while pos < n and buf[pos] in _WS:
                pos += 1
            self._pos = pos
            if pos < n:
                return buf[pos]
            if not self._refill():
                return ""

    def take(self) -> None:
        self._pos += 1

    def read_string(self) -> str:
        """Decode the string whose opening quote is at the cursor."""
        while True:
            try:
                value, end = scanstring(self._buf, self._pos + 1)
            except ValueError as exc:
                # Either truncated by the chunk boundary (refill and
                # retry) or genuinely malformed (refill exhausted).
                if self._refill():
                    continue
                raise JsonFormatError(
                    f"bad JSON string at offset {self.offset()}: {exc}"
                ) from None
            self._pos = end
            return value

    def read_number(self) -> str:
        parts: List[str] = []
        while True:
            buf = self._buf
            n = len(buf)
            pos = self._pos
            while pos < n and buf[pos] in _NUMBER_CHARS:
                pos += 1
            parts.append(buf[self._pos : pos])
            self._pos = pos
            if pos < n or not self._refill():
                return "".join(parts)

    def expect_literal(self, word: str) -> None:
        while len(self._buf) - self._pos < len(word) and self._refill():
            pass
        if self._buf[self._pos : self._pos + len(word)] != word:
            raise JsonFormatError(
                f"invalid JSON literal at offset {self.offset()}"
            )
        self._pos += len(word)


def _canonical_number(text: str, sc: _Scanner) -> str:
    try:
        return str(int(text))
    except ValueError:
        pass
    try:
        return repr(float(text))
    except ValueError:
        raise JsonFormatError(
            f"invalid JSON number {text!r} before offset {sc.offset()}"
        ) from None


def _expect_colon(sc: _Scanner) -> None:
    if sc.peek() != ":":
        raise JsonFormatError(
            f"expected ':' after object key at offset {sc.offset()}"
        )
    sc.take()


def iterparse_postorder(source: Source) -> Iterator[Tuple[object, int]]:
    """Stream a postorder queue (Definition 2) from a JSON document.

    ``source`` is a path or a text-mode file object.  Yields
    ``(label, size)`` pairs in postorder while keeping only the open
    container path in memory — the JSON analogue of
    :func:`repro.xmlio.parse.iterparse_postorder`.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8") as fh:
            yield from _parse(_Scanner(fh))
    else:
        yield from _parse(_Scanner(source))


class _Frame:
    """Per-open-container state: descendant count + the pending key."""

    __slots__ = ("is_object", "descendants", "key")

    def __init__(self, is_object: bool, key: str = ""):
        self.is_object = is_object
        self.descendants = 0
        self.key = key


def _parse(sc: _Scanner) -> Iterator[Tuple[object, int]]:
    # Iterative (no recursion) so arbitrarily deep arrays/objects stream
    # at O(depth) memory without hitting the interpreter recursion limit.
    stack: List[_Frame] = []
    completed = -1  # size of the value just finished; -1 = parse one next
    while True:
        if completed < 0:
            ch = sc.peek()
            if ch == "":
                raise JsonFormatError(
                    f"unexpected end of JSON input at offset {sc.offset()}"
                )
            if ch == "{":
                sc.take()
                nxt = sc.peek()
                if nxt == "}":
                    sc.take()
                    yield OBJECT_LABEL, 1
                    completed = 1
                elif nxt == '"':
                    key = sc.read_string()
                    _expect_colon(sc)
                    stack.append(_Frame(True, key))
                else:
                    raise JsonFormatError(
                        f"expected a key or '}}' in object at offset "
                        f"{sc.offset()}"
                    )
            elif ch == "[":
                sc.take()
                if sc.peek() == "]":
                    sc.take()
                    yield ARRAY_LABEL, 1
                    completed = 1
                else:
                    stack.append(_Frame(False))
            elif ch == '"':
                yield Text(sc.read_string()), 1
                completed = 1
            elif ch in "-0123456789":
                yield Text(_canonical_number(sc.read_number(), sc)), 1
                completed = 1
            elif ch == "t":
                sc.expect_literal("true")
                yield "true", 1
                completed = 1
            elif ch == "f":
                sc.expect_literal("false")
                yield "false", 1
                completed = 1
            elif ch == "n":
                sc.expect_literal("null")
                yield "null", 1
                completed = 1
            else:
                raise JsonFormatError(
                    f"unexpected character {ch!r} at offset {sc.offset()}"
                )
            continue
        if not stack:
            break
        frame = stack[-1]
        if frame.is_object:
            key_size = completed + 1
            yield KEY_PREFIX + frame.key, key_size
            frame.descendants += key_size
            nxt = sc.peek()
            if nxt == ",":
                sc.take()
                if sc.peek() != '"':
                    raise JsonFormatError(
                        f"expected a key after ',' at offset {sc.offset()}"
                    )
                frame.key = sc.read_string()
                _expect_colon(sc)
                completed = -1
            elif nxt == "}":
                sc.take()
                stack.pop()
                size = frame.descendants + 1
                yield OBJECT_LABEL, size
                completed = size
            else:
                raise JsonFormatError(
                    f"expected ',' or '}}' in object at offset {sc.offset()}"
                )
        else:
            frame.descendants += completed
            nxt = sc.peek()
            if nxt == ",":
                sc.take()
                completed = -1
            elif nxt == "]":
                sc.take()
                stack.pop()
                size = frame.descendants + 1
                yield ARRAY_LABEL, size
                completed = size
            else:
                raise JsonFormatError(
                    f"expected ',' or ']' in array at offset {sc.offset()}"
                )
    if sc.peek() != "":
        raise JsonFormatError(
            f"trailing data after JSON value at offset {sc.offset()}"
        )


def json_value_nodes(value: object) -> int:
    """Node count of ``value``'s tree under this module's conventions.

    The dataset generator uses this for parser-exact accounting: an
    object contributes itself plus one key node per entry; an array
    contributes itself; every scalar is one leaf.
    """
    if isinstance(value, dict):
        return 1 + sum(1 + json_value_nodes(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return 1 + sum(json_value_nodes(v) for v in value)
    return 1


class KeyWeightedCostModel:
    """JSON-aware costs: structural key nodes outweigh value nodes.

    Editing a key (``$name``) restructures the record schema, while
    editing a value is ordinary content drift — so key nodes cost
    ``key_weight`` (default 2, dyadic to keep the numpy and python
    kernels bit-identical) and everything else costs 1.  Renames charge
    the heavier of the two labels involved.  Satisfies the paper's
    ``cst(x) >= 1`` constraint for any ``key_weight >= 1``.
    """

    __slots__ = ("key_weight", "min_indel", "max_cost", "min_rename")

    def __init__(self, key_weight: float = 2.0):
        if key_weight < 1:
            raise CostModelError(
                f"key_weight must be >= 1 (paper: cst(x) >= 1), "
                f"got {key_weight}"
            )
        self.key_weight = float(key_weight)
        self.min_indel = 1.0
        self.max_cost = self.key_weight
        self.min_rename = 1.0

    def _weight(self, label: object) -> float:
        return self.key_weight if is_key_label(label) else 1.0

    def rename(self, a: object, b: object) -> float:
        return 0.0 if a == b else max(self._weight(a), self._weight(b))

    def delete(self, label: object) -> float:
        return self._weight(label)

    def insert(self, label: object) -> float:
        return self._weight(label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyWeightedCostModel(key_weight={self.key_weight})"


def _protocol_check(model: KeyWeightedCostModel) -> CostModel:
    # Static guarantee that the model satisfies the CostModel protocol.
    return model
