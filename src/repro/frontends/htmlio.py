"""HTML frontend: stream a DOM as a postorder queue.

Built on the stdlib ``html.parser`` (tolerant, non-validating — real
pages are messy), with the XML frontend's label conventions so the two
workloads share one alphabet:

* tags       — plain ``str`` labels, lowercased by the parser;
* attributes — ``@name`` nodes (sorted by name) whose single child is a
  ``Text`` leaf with the value (valueless attributes get ``Text("")``);
* text runs  — ``Text`` leaves, whitespace-only runs dropped (pass
  ``keep_whitespace=True`` to keep them).

HTML specifics the XML parser never sees:

* void elements (``<br>``, ``<img>``, ...) close at their start tag;
* unclosed elements close implicitly when an ancestor's end tag (or
  EOF) arrives; stray end tags with no open match are dropped;
* comments, doctypes, and processing instructions are skipped;
* the whole page is wrapped in a synthetic ``#document`` root, so
  fragments with several top-level elements (or top-level text) still
  form one tree.

``html.parser`` is push-based; :func:`iterparse_postorder` converts it
to a pull stream by feeding the file in chunks and draining the pairs
each chunk completes.  Memory stays O(open-element depth + one text run
+ one chunk) — the document is never materialised.
"""

from __future__ import annotations

import os
from html.parser import HTMLParser
from typing import IO, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import CostModelError, HtmlFormatError
from ..xmlio.types import ATTRIBUTE_PREFIX, Text

__all__ = [
    "DOCUMENT_LABEL",
    "STRUCTURE_TAGS",
    "VOID_TAGS",
    "TagClassWeightedCostModel",
    "iterparse_postorder",
]

Source = Union[str, "os.PathLike[str]", IO[str]]

#: Label of the synthetic root wrapping every parsed page.
DOCUMENT_LABEL = "#document"

#: Elements with no end tag (HTML standard "void elements").
VOID_TAGS = frozenset(
    {
        "area",
        "base",
        "br",
        "col",
        "embed",
        "hr",
        "img",
        "input",
        "link",
        "meta",
        "param",
        "source",
        "track",
        "wbr",
    }
)

#: Tags that carry page *structure* (layout skeleton, sectioning,
#: tables, lists, forms).  Template detection cares about these far
#: more than about inline markup or text drift, so the cost model
#: weights them up.
STRUCTURE_TAGS = frozenset(
    {
        DOCUMENT_LABEL,
        "html",
        "head",
        "body",
        "main",
        "nav",
        "header",
        "footer",
        "section",
        "article",
        "aside",
        "div",
        "table",
        "thead",
        "tbody",
        "tfoot",
        "tr",
        "td",
        "th",
        "ul",
        "ol",
        "li",
        "dl",
        "dt",
        "dd",
        "form",
        "fieldset",
        "select",
        "option",
    }
)

_CHUNK = 1 << 16


class _OpenElement:
    """Per-open-tag state for the streaming builder."""

    __slots__ = ("tag", "descendants")

    def __init__(self, tag: str):
        self.tag = tag
        self.descendants = 0


class _PostorderBuilder(HTMLParser):
    """Collects completed postorder pairs as the parser pushes events.

    ``drain()`` hands the pairs completed so far to the generator in
    :func:`iterparse_postorder`; only the open-element path and the
    current text run stay buffered.
    """

    def __init__(self, keep_whitespace: bool):
        super().__init__(convert_charrefs=True)
        self.keep_whitespace = keep_whitespace
        self.out: List[Tuple[object, int]] = []
        self.stack: List[_OpenElement] = []
        self.root_descendants = 0
        self._text: List[str] = []

    def drain(self) -> List[Tuple[object, int]]:
        pairs, self.out = self.out, []
        return pairs

    def _flush_text(self) -> None:
        if not self._text:
            return
        raw = "".join(self._text)
        self._text.clear()
        if not self.keep_whitespace:
            raw = raw.strip()
        if raw:
            self._attach(Text(raw), 1)

    def _attach(self, label: object, size: int) -> None:
        """Emit a completed subtree root and charge it to its parent."""
        self.out.append((label, size))
        if self.stack:
            self.stack[-1].descendants += size
        else:
            self.root_descendants += size

    def _close_top(self) -> None:
        frame = self.stack.pop()
        size = frame.descendants + 1
        self.out.append((frame.tag, size))
        if self.stack:
            self.stack[-1].descendants += size
        else:
            self.root_descendants += size

    # -- parser events -------------------------------------------------

    def handle_starttag(
        self, tag: str, attrs: Sequence[Tuple[str, Optional[str]]]
    ) -> None:
        self._flush_text()
        frame = _OpenElement(tag)
        self.stack.append(frame)
        # Attributes are fully known at the start tag; sorted by name
        # for determinism, exactly like the XML frontend.
        for name, value in sorted(attrs):
            self.out.append((Text(value if value is not None else ""), 1))
            self.out.append((ATTRIBUTE_PREFIX + name, 2))
            frame.descendants += 2
        if tag in VOID_TAGS:
            self._close_top()

    def handle_endtag(self, tag: str) -> None:
        self._flush_text()
        if tag in VOID_TAGS:
            return  # </br> and friends: the start tag already closed
        for i in range(len(self.stack) - 1, -1, -1):
            if self.stack[i].tag == tag:
                # Implicitly close unclosed children first.
                while len(self.stack) > i:
                    self._close_top()
                return
        # Stray end tag with no open match: dropped.

    def handle_data(self, data: str) -> None:
        self._text.append(data)

    # Comments, doctype, and processing instructions carry no tree
    # content under these conventions.
    def handle_comment(self, data: str) -> None:
        pass

    def handle_decl(self, decl: str) -> None:
        pass

    def handle_pi(self, data: str) -> None:
        pass

    def unknown_decl(self, data: str) -> None:
        pass

    # -- end of input --------------------------------------------------

    def finish(self, origin: str) -> None:
        self.close()
        self._flush_text()
        while self.stack:
            self._close_top()
        if self.root_descendants == 0:
            raise HtmlFormatError(f"no content parsed from {origin}")
        self.out.append((DOCUMENT_LABEL, self.root_descendants + 1))


def iterparse_postorder(
    source: Source, keep_whitespace: bool = False
) -> Iterator[Tuple[object, int]]:
    """Stream a postorder queue (Definition 2) from an HTML page.

    ``source`` is a path or a text-mode file object.  The final pair is
    always the synthetic ``#document`` root.
    """
    if isinstance(source, (str, os.PathLike)):
        with open(source, "r", encoding="utf-8", errors="replace") as fh:
            yield from _pull(fh, keep_whitespace, str(source))
    else:
        yield from _pull(source, keep_whitespace, "<stream>")


def _pull(
    fh: IO[str], keep_whitespace: bool, origin: str
) -> Iterator[Tuple[object, int]]:
    builder = _PostorderBuilder(keep_whitespace)
    while True:
        chunk = fh.read(_CHUNK)
        if not chunk:
            break
        builder.feed(chunk)
        if builder.out:
            yield from builder.drain()
    builder.finish(origin)
    yield from builder.drain()


class TagClassWeightedCostModel:
    """DOM-aware costs: structural tags outweigh inline markup and text.

    Near-duplicate/template detection asks "is the page *skeleton* the
    same?", so edits to sectioning/table/list/form tags (and the
    ``#document`` root) cost ``structure_weight`` (default 2, dyadic to
    keep the numpy and python kernels bit-identical) while inline tags,
    attributes, and text cost 1.  Classification is by label content
    (set membership), so it survives the bracket-notation round trip
    the differential tests rely on.  Satisfies ``cst(x) >= 1`` for any
    ``structure_weight >= 1``.
    """

    __slots__ = ("structure_weight", "min_indel", "max_cost", "min_rename")

    def __init__(self, structure_weight: float = 2.0):
        if structure_weight < 1:
            raise CostModelError(
                f"structure_weight must be >= 1 (paper: cst(x) >= 1), "
                f"got {structure_weight}"
            )
        self.structure_weight = float(structure_weight)
        self.min_indel = 1.0
        self.max_cost = self.structure_weight
        self.min_rename = 1.0

    def _weight(self, label: object) -> float:
        return self.structure_weight if label in STRUCTURE_TAGS else 1.0

    def rename(self, a: object, b: object) -> float:
        return 0.0 if a == b else max(self._weight(a), self._weight(b))

    def delete(self, label: object) -> float:
        return self._weight(label)

    def insert(self, label: object) -> float:
        return self._weight(label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "TagClassWeightedCostModel("
            f"structure_weight={self.structure_weight})"
        )
